#!/usr/bin/env python
"""CI smoke test for the runtime resilience layer.

The deploy-side sibling of ``tools/fault_smoke.py``, all through the
CLI entry point:

1. two identical seeded stochastic-fault monitor runs must produce
   byte-identical event logs and runtime stats (determinism);
2. a WAMI deployment with one tile forced into quarantine must still
   exit 0 (the scheduler re-planned the work), with the quarantine
   and failovers attributed in the runtime stats;
3. the same scenario through ``repro monitor`` must exit 1 with a
   DEGRADED verdict and the re-planning visible in the event payload.

Run:  PYTHONPATH=src python tools/runtime_fault_smoke.py
"""

from __future__ import annotations

import contextlib
import io
import json
import sys

from repro.cli import main

QUARANTINE_FLAGS = ["--inject-runtime-fault", "rt1:change_detection"]
STOCHASTIC_FLAGS = [
    "--runtime-fault-rate", "crc=0.15",
    "--runtime-fault-seed", "3",
]


def run_cli(argv: list) -> tuple:
    """cli.main with captured stdout."""
    buffer = io.StringIO()
    with contextlib.redirect_stdout(buffer):
        code = main(argv)
    return code, buffer.getvalue()


def check(condition: bool, message: str) -> None:
    if not condition:
        print(f"FAIL: {message}", file=sys.stderr)
        sys.exit(1)
    print(f"ok: {message}")


def main_smoke() -> None:
    # 1. Determinism: same seed, same fault timeline, twice.
    monitor_args = [
        "monitor", "soc_y", "--frames", "2", "--json",
        "--events", "500", *STOCHASTIC_FLAGS,
    ]
    code_a, out_a = run_cli(monitor_args)
    code_b, out_b = run_cli(monitor_args)
    check(code_a == code_b, "same-seed runs agree on the exit code")
    first, second = json.loads(out_a), json.loads(out_b)
    check(
        first["events"] == second["events"],
        "same-seed runs replay an identical event log",
    )
    check(
        first["runtime_faults"] == second["runtime_faults"],
        "same-seed runs agree on the resilience counters",
    )
    check(
        sum(1 for e in first["events"] if e["kind"] == "reconfig.failed") > 0,
        "the seeded 15% CRC rate actually produced failures",
    )

    # 2. Forced quarantine: the deployment completes degraded, exit 0.
    code, out = run_cli(
        ["deploy", "soc_y", "--frames", "2", "--json", *QUARANTINE_FLAGS]
    )
    check(code == 0, "deploy with a quarantined tile still exits 0")
    runtime = json.loads(out)["runtime"]
    check(
        runtime["quarantined"] == {"rt1": "crc"},
        "rt1 reported quarantined in the runtime stats",
    )
    check(runtime["failovers"] > 0, "the scheduler re-planned off rt1")

    # 3. The health monitor calls the same run DEGRADED (exit 1).
    code, out = run_cli(
        [
            "monitor", "soc_y", "--frames", "2", "--json",
            "--events", "500", *QUARANTINE_FLAGS,
        ]
    )
    check(code == 1, "monitor exits 1 on the degraded verdict")
    payload = json.loads(out)
    check(payload["verdict"] == "degraded", "verdict is degraded, not critical")
    check(
        payload["runtime_faults"]["quarantined_tiles"] == ["rt1"],
        "health report lists the quarantined tile",
    )
    check(
        any(e["kind"] == "sched.failover" for e in payload["events"]),
        "the failover decision is visible on the event bus",
    )


if __name__ == "__main__":
    main_smoke()
