#!/usr/bin/env python
"""CI smoke test for the request-telemetry and SLO dashboard layer.

Exercises the full chain end to end on a seeded deployment:

1. a healthy ``repro dashboard`` run reports every default SLO with
   budget intact and exits 0;
2. the same run under injected runtime faults burns the
   deploy-failure-rate error budget and the verdict-driven exit code
   flips 0 -> 1 (DEGRADED, not CRITICAL: some attempts still land);
3. two identical seeded runs emit byte-identical ``--json`` payloads;
4. the Prometheus scrape file re-parses with the repo's text-format
   parser and the OTLP JSONL lines are valid JSON envelopes.

Scrape and JSONL artifacts land in ``--out`` (default
``telemetry_artifacts/``) so CI can upload them.

Run:  PYTHONPATH=src python tools/telemetry_smoke.py
"""

from __future__ import annotations

import argparse
import contextlib
import io
import json
import sys
from pathlib import Path

from repro.cli import main
from repro.obs.export import parse_prometheus_text

#: Fault injection that burns the deploy-failure-rate budget on SoC_Y
#: without sinking every attempt (DEGRADED, never CRITICAL).
BURN_INJECTION = "rt1:change_detection:2"


def run_cli(argv: list) -> tuple:
    buffer = io.StringIO()
    with contextlib.redirect_stdout(buffer):
        code = main(argv)
    return code, buffer.getvalue()


def check(condition: bool, message: str) -> None:
    if not condition:
        print(f"FAIL: {message}", file=sys.stderr)
        sys.exit(1)
    print(f"ok: {message}")


def main_smoke() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--out",
        default="telemetry_artifacts",
        help="directory for scrape/JSONL artifacts (uploaded by CI)",
    )
    args = parser.parse_args()
    out_dir = Path(args.out)
    out_dir.mkdir(parents=True, exist_ok=True)
    prom = out_dir / "dashboard.prom"
    otlp = out_dir / "dashboard.otlp.jsonl"

    # 1. Healthy seeded run: all SLOs within budget, exit 0.
    base = ["dashboard", "soc_y", "--frames", "2", "--seed", "7"]
    code, text = run_cli(
        base + ["--json", "--prom", str(prom), "--otlp", str(otlp)]
    )
    check(code == 0, "healthy dashboard run exits 0")
    healthy = json.loads(text)
    check(healthy["verdict"] == "ok", "healthy run verdict is ok")
    names = {s["name"] for s in healthy["slo"]["objectives"]}
    check(
        names
        == {"reconfig-latency-p95", "deploy-failure-rate", "cad-retry-rate"},
        "all three default SLOs evaluated",
    )
    check(
        all(
            s["budget_remaining"] is None or s["budget_remaining"] > 0
            for s in healthy["slo"]["objectives"]
        ),
        "healthy run keeps every error budget positive",
    )
    check(healthy["requests"]["minted"] >= 1, "request IDs were minted")

    # 2. Injected faults burn the budget and flip the exit code.
    code, text = run_cli(
        base + ["--json", "--inject-failure", BURN_INJECTION]
    )
    check(code == 1, "budget burn flips dashboard exit code 0 -> 1")
    burned = json.loads(text)
    check(burned["verdict"] == "degraded", "burned run verdict is degraded")
    failure = next(
        s
        for s in burned["slo"]["objectives"]
        if s["name"] == "deploy-failure-rate"
    )
    check(
        failure["budget_remaining"] is not None
        and failure["budget_remaining"] <= 0,
        f"deploy-failure-rate budget exhausted "
        f"(burn {failure['burn']:.1%})",
    )
    check(failure["burn"] < 1.0, "burn stays partial (DEGRADED, not CRITICAL)")
    (out_dir / "dashboard_burned.json").write_text(text)

    # 3. Seeded determinism: identical runs, identical payloads.
    replay, text_again = run_cli(base + ["--json"])
    check(replay == 0, "replayed healthy run exits 0")
    _, text_first = run_cli(base + ["--json"])
    check(
        text_first == text_again,
        "two identical seeded runs emit byte-identical JSON",
    )
    (out_dir / "dashboard.json").write_text(text_again)

    # 4. Exported artifacts parse.
    families = parse_prometheus_text(prom.read_text())
    check(bool(families), f"Prometheus scrape parses ({len(families)} families)")
    check(
        any(name.startswith("flow_") for name in families)
        and any(name.startswith("runtime_") for name in families),
        "scrape carries both flow and runtime series",
    )
    lines = otlp.read_text().splitlines()
    check(bool(lines), f"OTLP JSONL non-empty ({len(lines)} envelopes)")
    for line in lines:
        document = json.loads(line)
        check(
            "resourceMetrics" in document,
            "every OTLP line is a resourceMetrics envelope",
        )
        break  # shape spot-check; full validation lives in the test suite

    print("telemetry smoke: all checks passed")


if __name__ == "__main__":
    main_smoke()
