#!/usr/bin/env python
"""Crash-consistency fuzzer for the build/deploy service daemon.

Repeatedly SIGKILLs the real ``python -m repro serve`` daemon at
seeded kill points and asserts the crash-safety invariants hold across
every restart:

1. **no job lost** — every job a client ever saw accepted is present
   in the restarted daemon's table;
2. **none double-completed** — a job observed in a terminal state
   keeps that state and its exact result bytes on every later
   observation (a crash can re-run work, never re-decide it);
3. **resumed results are byte-identical** — every succeeded job's
   result equals a never-interrupted control run of the same config;
4. **healthz converges** — after each restart the daemon works its
   recovery backlog down and answers 200 again.

The kill schedule is a pure function of ``--seed``: each round picks a
seeded victim job, waits for it to reach the worker, sleeps a seeded
extra delay, and SIGKILLs. A summary (schedule + a stable fingerprint
of the final job table) is written to ``--out``; two runs with the
same seed write identical summaries, which CI compares.

Run:  PYTHONPATH=src python tools/chaos_smoke.py --seed 0 --rounds 3
"""

from __future__ import annotations

import argparse
import hashlib
import json
import os
import re
import signal
import subprocess
import sys
import tempfile
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.service.client import ServiceClient  # noqa: E402

CONFIGS = ["soc_1", "soc_2", "soc_3", "soc_4"]
TENANTS = ["acme", "birch"]

#: Terminal states a crash must never un-decide.
TERMINAL = ("succeeded", "failed", "cancelled", "dead")


def check(condition: bool, message: str) -> None:
    if not condition:
        print(f"FAIL: {message}", file=sys.stderr)
        sys.exit(1)
    print(f"ok: {message}")


def draw(seed: int, *parts) -> float:
    """Order-independent uniform [0, 1) draw — the repo's SHA-256 idiom."""
    key = "|".join(str(p) for p in (seed, *parts)).encode("utf-8")
    digest = hashlib.sha256(key).digest()
    return int.from_bytes(digest[:8], "big") / float(1 << 64)


def start_daemon(state_dir: Path) -> tuple:
    env = dict(os.environ)
    src = str(REPO_ROOT / "src")
    env["PYTHONPATH"] = src + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    proc = subprocess.Popen(
        [
            sys.executable, "-m", "repro", "serve",
            "--state-dir", str(state_dir),
            "--port", "0", "--workers", "1", "--jobs", "1",
        ],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
        cwd=REPO_ROOT,
        env=env,
    )
    banner = []
    while True:
        line = proc.stdout.readline()
        if not line:
            print("daemon died before listening:", file=sys.stderr)
            sys.stderr.write("".join(banner))
            sys.exit(1)
        banner.append(line)
        match = re.search(r"service listening on http://[^:]+:(\d+)", line)
        if match:
            return proc, int(match.group(1))


def wait_health_ok(client: ServiceClient, timeout: float = 120.0) -> None:
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if client.healthz()["exit_code"] == 0:
            return
        time.sleep(0.05)
    check(False, "healthz converged to 200")


def table_by_id(client: ServiceClient) -> dict:
    return {record["job_id"]: record for record in client.jobs()["jobs"]}


def result_bytes(record: dict) -> str:
    return json.dumps(record.get("result"), sort_keys=True)


def verify_invariants(client: ServiceClient, submitted: dict, frozen: dict) -> None:
    """Invariants 1 and 2 against the live table; updates ``frozen``."""
    table = table_by_id(client)
    missing = [job_id for job_id in submitted if job_id not in table]
    check(not missing, f"no job lost across restarts (missing: {missing})")
    for job_id, record in table.items():
        if job_id in frozen:
            before = frozen[job_id]
            check(
                record["state"] == before["state"]
                and result_bytes(record) == before["result"],
                f"{job_id} terminal outcome is immutable across crashes",
            )
        elif record["state"] in TERMINAL:
            frozen[job_id] = {
                "state": record["state"],
                "result": result_bytes(record),
            }


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--seed", type=int, default=0, metavar="N")
    parser.add_argument("--rounds", type=int, default=3, metavar="K",
                        help="kill-and-restart rounds before the final drain")
    parser.add_argument("--jobs-per-round", type=int, default=3, metavar="M")
    parser.add_argument("--out", default="service_artifacts", metavar="DIR",
                        help="directory for the chaos summary artifact")
    parser.add_argument("--state-dir", default=None, metavar="DIR",
                        help="persistent scratch dir (CI uploads it on "
                             "failure); default is a temp dir")
    args = parser.parse_args()
    out = Path(args.out)
    out.mkdir(parents=True, exist_ok=True)

    submitted: dict = {}   # job_id -> config
    frozen: dict = {}      # job_id -> first observed terminal outcome
    schedule: list = []

    with tempfile.TemporaryDirectory(prefix="chaos-smoke-") as tmp:
        if args.state_dir is not None:
            tmp = args.state_dir
            Path(tmp).mkdir(parents=True, exist_ok=True)
        state = Path(tmp) / "state"

        for round_no in range(args.rounds):
            daemon, port = start_daemon(state)
            try:
                client = ServiceClient(port=port, timeout=15)
                wait_health_ok(client)
                print(f"ok: round {round_no}: daemon healthy after restart")
                verify_invariants(client, submitted, frozen)

                fresh = []
                for index in range(args.jobs_per_round):
                    config = CONFIGS[
                        int(draw(args.seed, "config", round_no, index) * len(CONFIGS))
                    ]
                    tenant = TENANTS[
                        int(draw(args.seed, "tenant", round_no, index) * len(TENANTS))
                    ]
                    job_id = client.submit(config, tenant=tenant)["job_id"]
                    submitted[job_id] = config
                    fresh.append(job_id)

                # Seeded kill point: wait for a seeded victim to reach
                # the worker, then a seeded extra delay, then SIGKILL.
                victim_index = int(
                    draw(args.seed, "victim", round_no) * len(fresh)
                )
                extra_delay = 0.2 * draw(args.seed, "delay", round_no)
                schedule.append(
                    {
                        "round": round_no,
                        "victim_index": victim_index,
                        "extra_delay_s": round(extra_delay, 6),
                    }
                )
                victim = fresh[victim_index]
                deadline = time.monotonic() + 60
                while time.monotonic() < deadline:
                    if client.status(victim)["state"] != "queued":
                        break
                    time.sleep(0.005)
                time.sleep(extra_delay)
                daemon.send_signal(signal.SIGKILL)
                daemon.wait(timeout=30)
                print(
                    f"ok: round {round_no}: SIGKILL at victim {victim_index} "
                    f"+{extra_delay:.3f}s"
                )
            finally:
                if daemon.poll() is None:
                    daemon.kill()
                    daemon.wait(timeout=30)

        # Final round: restart, drain everything, settle the table.
        daemon, port = start_daemon(state)
        try:
            client = ServiceClient(port=port, timeout=15)
            verify_invariants(client, submitted, frozen)
            for job_id in submitted:
                record = client.wait(job_id, timeout=240)
                check(
                    record["state"] == "succeeded",
                    f"{job_id} finishes after the storm",
                )
            wait_health_ok(client)
            print("ok: final daemon drained its backlog (healthz 200)")
            final = table_by_id(client)
        finally:
            daemon.kill()
            daemon.wait(timeout=30)

        # Invariant 3: control results on a pristine state directory.
        control_daemon, control_port = start_daemon(Path(tmp) / "control")
        try:
            control_client = ServiceClient(port=control_port, timeout=15)
            control = {
                config: result_bytes(
                    control_client.wait(
                        control_client.submit(config)["job_id"], timeout=240
                    )
                )
                for config in sorted(set(submitted.values()))
            }
        finally:
            control_daemon.kill()
            control_daemon.wait(timeout=30)
        for job_id, config in sorted(submitted.items()):
            check(
                result_bytes(final[job_id]) == control[config],
                f"{job_id} ({config}) result is byte-identical to control",
            )

    # The stable fingerprint: everything about the final table that is
    # a pure function of the seed (attempt counts depend on where the
    # wall-clock kill landed, so they stay out of the contract).
    fingerprint = [
        {
            "job_id": job_id,
            "config": record["spec"]["config"],
            "tenant": record["spec"]["tenant"],
            "state": record["state"],
            "result_sha256": hashlib.sha256(
                result_bytes(record).encode("utf-8")
            ).hexdigest(),
        }
        for job_id, record in sorted(final.items())
    ]
    summary = {
        "seed": args.seed,
        "rounds": args.rounds,
        "jobs_per_round": args.jobs_per_round,
        "kill_schedule": schedule,
        "jobs": fingerprint,
    }
    summary_path = out / "chaos_summary.json"
    summary_path.write_text(json.dumps(summary, indent=2, sort_keys=True) + "\n")
    print(f"ok: summary written to {summary_path}")
    print("chaos smoke: all invariants held")
    return 0


if __name__ == "__main__":
    sys.exit(main())
