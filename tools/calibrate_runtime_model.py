#!/usr/bin/env python
"""Fit the Vivado runtime-model curves to the paper's published timings.

Observations come from:

* Table III — characterization of SOC_1..SOC_4: serial runtimes,
  static pre-route times (t_static) and in-context group times (Ω) at
  every published τ;
* Table IV — t_static / Ω / serial T_P&R for the WAMI SoC_A..D;
* Table V — PR-ESP parallel synthesis, plus monolithic synthesis and
  P&R of the standard Xilinx DPR flow.

Effective design sizes (kLUT) are computed from the *library's own*
design models (``repro.core.designs``), so the fit stays consistent
with whatever the SoC size accounting says. Group sizes for τ-way
parallelism use the same LPT grouping the flow uses.

Output: the ``_CALIBRATED_CURVES`` block to paste into
``repro/vivado/runtime_model.py``, plus fit residuals.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.core.designs import (
    soc_1,
    soc_2,
    soc_3,
    soc_4,
    wami_parallelism_socs,
)
from repro.flow.grouping import balanced_groups
from repro.soc.config import SocConfig
from repro.vivado.runtime_model import JobKind, RuntimeCurve, fit_runtime_curve


def k_static(cfg: SocConfig) -> float:
    return cfg.static_luts() / 1000.0


def k_rps(cfg: SocConfig) -> List[float]:
    return [l / 1000.0 for l in cfg.reconfigurable_luts()]


def k_total(cfg: SocConfig) -> float:
    return k_static(cfg) + sum(k_rps(cfg))


def group_makespan_kluts(cfg: SocConfig, tau: int) -> float:
    """Largest LPT group size at parallelism τ (the size driving Ω)."""
    groups = balanced_groups(k_rps(cfg), tau, weight=lambda k: k)
    return max(sum(g) for g in groups)


def collect_observations() -> Dict[JobKind, List[Tuple[float, float]]]:
    s1, s2, s3, s4 = soc_1(), soc_2(), soc_3(), soc_4()
    wami = wami_parallelism_socs()
    sa, sb, sc, sd = (wami[n] for n in ("soc_a", "soc_b", "soc_c", "soc_d"))

    obs: Dict[JobKind, List[Tuple[float, float]]] = {k: [] for k in JobKind}

    # ---- Table III: serial full-design DPR P&R (τ = 1) ----------------
    obs[JobKind.SERIAL_DPR_PAR] += [
        (k_total(s1), 89.0),
        (k_total(s2), 181.0),
        (k_total(s3), 158.0),
        (k_total(s4), 163.0),
    ]
    # ---- Table IV: serial T_P&R of the WAMI SoCs ----------------------
    obs[JobKind.SERIAL_DPR_PAR] += [
        (k_total(sa), 192.0),
        (k_total(sb), 135.0),
        (k_total(sc), 167.0),
        (k_total(sd), 142.0),
    ]

    # ---- Table III: t_static at τ >= 2 --------------------------------
    obs[JobKind.STATIC_PAR] += [
        (k_static(s1), 75.0),
        (k_static(s2), 94.0),
        (k_static(s3), 86.0),
        (k_static(s4), 42.0),
    ]
    # ---- Table IV: t_static of the WAMI SoCs --------------------------
    obs[JobKind.STATIC_PAR] += [
        (k_static(sa), 98.0),
        (k_static(sb), 95.0),
        (k_static(sc), 88.0),
        (k_static(sd), 48.0),
    ]

    # ---- Table III: Ω = T_tot - t_static at each τ ---------------------
    # SOC_1: T_tot 110/105/97/94/93 at τ = 2/3/4/5/16, t_static = 75.
    for tau, total in [(2, 110.0), (3, 105.0), (4, 97.0), (5, 94.0), (16, 93.0)]:
        obs[JobKind.CONTEXT_PAR].append((group_makespan_kluts(s1, tau), total - 75.0))
    # SOC_2: Ω published directly: 79/72/58 at τ = 2/3/4.
    for tau, omega in [(2, 79.0), (3, 72.0), (4, 58.0)]:
        obs[JobKind.CONTEXT_PAR].append((group_makespan_kluts(s2, tau), omega))
    # SOC_3: 48/52 at τ = 2/3.
    for tau, omega in [(2, 48.0), (3, 52.0)]:
        obs[JobKind.CONTEXT_PAR].append((group_makespan_kluts(s3, tau), omega))
    # SOC_4: 88/63/58/52 at τ = 2/3/4/5.
    for tau, omega in [(2, 88.0), (3, 63.0), (4, 58.0), (5, 52.0)]:
        obs[JobKind.CONTEXT_PAR].append((group_makespan_kluts(s4, tau), omega))
    # ---- Table IV: Ω for fully-parallel and semi-parallel (τ = 2) -----
    for cfg, omega_full, omega_semi in [
        (sa, 52.0, 88.0),
        (sb, 48.0, 61.0),
        (sc, 71.0, 64.0),
        (sd, 71.0, 83.0),
    ]:
        obs[JobKind.CONTEXT_PAR].append((max(k_rps(cfg)), omega_full))
        obs[JobKind.CONTEXT_PAR].append((group_makespan_kluts(cfg, 2), omega_semi))

    # ---- Table V: monolithic (standard DPR, single instance) ----------
    obs[JobKind.MONO_DPR_PAR] += [
        (k_total(sa), 152.0),
        (k_total(sb), 124.0),
        (k_total(sc), 129.0),
        (k_total(sd), 141.0),
    ]
    obs[JobKind.GLOBAL_SYNTH] += [
        (k_total(sa), 91.0),
        (k_total(sb), 60.0),
        (k_total(sc), 74.0),
        (k_total(sd), 81.0),
    ]
    # ---- Table V: PR-ESP parallel OoC synthesis -----------------------
    # All OoC synths run in parallel; the published number is bounded by
    # the largest unit, which is the static part (A/B/C) or the CPU RP (D).
    obs[JobKind.OOC_SYNTH] += [
        (max([k_static(sa)] + k_rps(sa)), 47.0),
        (max([k_static(sb)] + k_rps(sb)), 54.0),
        (max([k_static(sc)] + k_rps(sc)), 42.0),
        (max([k_static(sd)] + k_rps(sd)), 49.0),
    ]
    return obs


def fit_serial_constrained(static_curve, context_curve):
    """Fit the serial curve (a, p) plus the reconfigurable-LUT weight w
    under *winner constraints*: for every published design, the strategy
    the paper reports as fastest must also be the model's argmin.

    The raw serial observations are mutually inconsistent as a function
    of total size (SOC_1's 89 min at 131 kLUT vs SoC_D's 142 min at 132
    kLUT), so the effective size weights reconfigurable LUTs by w > 1
    and the fit minimizes least squares subject to the paper's eight
    winner orderings (quadratic penalty).
    """
    import numpy as np
    from scipy.optimize import minimize

    s1, s2, s3, s4 = soc_1(), soc_2(), soc_3(), soc_4()
    wami = wami_parallelism_socs()
    sa, sb, sc, sd = (wami[n] for n in ("soc_a", "soc_b", "soc_c", "soc_d"))

    # (config, paper serial minutes, required winner among strategies)
    serial_points = [
        (s1, 89.0, "serial"),
        (s2, 181.0, "fully"),
        (s3, 158.0, "semi"),
        (s4, 163.0, "fully"),
        (sa, 192.0, "fully"),
        (sb, 135.0, "serial"),
        (sc, 167.0, "semi"),
        (sd, 142.0, "fully"),
    ]

    def parallel_costs(cfg):
        rp = k_rps(cfg)
        static = static_curve.minutes(k_static(cfg))
        fully = static + max(context_curve.minutes(k) for k in rp)
        semi = static + context_curve.minutes(group_makespan_kluts(cfg, 2))
        return fully, semi

    margin = 3.0  # minutes of separation required at the decision points

    def objective(params):
        a, p, w = params
        loss = 0.0
        for cfg, minutes, winner in serial_points:
            eff = k_static(cfg) + w * sum(k_rps(cfg))
            serial = a * eff**p
            loss += (serial - minutes) ** 2
            fully, semi = parallel_costs(cfg)
            if winner == "serial":
                violation = serial - (min(fully, semi) - margin)
            else:
                # The paper's winning strategy itself must beat serial.
                winning = fully if winner == "fully" else semi
                violation = (winning + margin) - serial
            if violation > 0:
                loss += 1e7 * violation**2
        return loss

    def count_violations(params) -> int:
        a, p, w = params
        bad = 0
        for cfg, _minutes, winner in serial_points:
            eff = k_static(cfg) + w * sum(k_rps(cfg))
            serial = a * eff**p
            fully, semi = parallel_costs(cfg)
            if winner == "serial":
                if serial >= min(fully, semi):
                    bad += 1
            else:
                winning = fully if winner == "fully" else semi
                if serial <= winning:
                    bad += 1
        return bad

    # Grid over the weight, local optimization of (a, p) per cell; prefer
    # fully feasible fits, then lowest loss.
    best = None
    for w_fixed in np.arange(1.0, 2.55, 0.05):
        for p0 in (0.8, 1.0, 1.3, 1.7):
            result = minimize(
                lambda ap: objective([ap[0], ap[1], w_fixed]),
                x0=[1.0, p0],
                bounds=[(1e-4, 50.0), (0.5, 2.2)],
                method="L-BFGS-B",
            )
            params = [result.x[0], result.x[1], w_fixed]
            key = (count_violations(params), result.fun)
            if best is None or key < best[0]:
                best = (key, params)
    (violations, _loss), (a, p, w) = best
    if violations:
        print(f"WARNING: {violations} winner constraints remain violated")
    return RuntimeCurve(c=0.0, a=float(a), p=float(p)), float(w), serial_points


def main() -> None:
    observations = collect_observations()
    fitted = {}
    for kind in JobKind:
        obs = observations[kind]
        if obs and kind is not JobKind.SERIAL_DPR_PAR:
            fitted[kind] = fit_runtime_curve(obs)

    serial_curve, weight, serial_points = fit_serial_constrained(
        fitted[JobKind.STATIC_PAR], fitted[JobKind.CONTEXT_PAR]
    )
    fitted[JobKind.SERIAL_DPR_PAR] = serial_curve

    print("fitted curves (paste into repro/vivado/runtime_model.py):\n")
    print(f"RECONF_LUT_WEIGHT = {weight:.4f}\n")
    print("_CALIBRATED_CURVES: Dict[JobKind, RuntimeCurve] = {")
    for kind in JobKind:
        if kind in fitted:
            curve = fitted[kind]
            print(
                f"    JobKind.{kind.name}: RuntimeCurve("
                f"c={curve.c:.4f}, a={curve.a:.6f}, p={curve.p:.4f}),"
            )
        else:
            print(f"    # JobKind.{kind.name}: no observations, kept by hand")
    print("}\n")

    print("winner verification (model minutes):")
    static_curve = fitted[JobKind.STATIC_PAR]
    context_curve = fitted[JobKind.CONTEXT_PAR]
    for cfg, minutes, winner in serial_points:
        eff = k_static(cfg) + weight * sum(k_rps(cfg))
        serial = serial_curve.minutes(eff)
        static = static_curve.minutes(k_static(cfg))
        fully = static + max(context_curve.minutes(k) for k in k_rps(cfg))
        semi = static + context_curve.minutes(group_makespan_kluts(cfg, 2))
        times = {"serial": serial, "fully": fully, "semi": semi}
        argmin = min(times, key=times.get)
        ok = (
            argmin == winner
            or (winner in ("fully", "semi") and argmin in ("fully", "semi"))
            and times[winner] < serial
        )
        print(
            f"  {cfg.name:6s} serial={serial:6.1f} semi={semi:6.1f} "
            f"fully={fully:6.1f}  paper_winner={winner:6s} model_argmin={argmin:6s} "
            f"{'OK' if ok else 'VIOLATED'}  (paper serial={minutes:.0f})"
        )

    print("\nresiduals (non-serial):")
    for kind in JobKind:
        obs = observations[kind]
        if not obs or kind is JobKind.SERIAL_DPR_PAR:
            continue
        curve = fitted[kind]
        for kluts, minutes in obs:
            predicted = curve.minutes(kluts)
            print(
                f"  {kind.value:16s} L={kluts:7.2f}k  paper={minutes:6.1f}  "
                f"model={predicted:6.1f}  err={predicted - minutes:+6.1f}"
            )


if __name__ == "__main__":
    main()
