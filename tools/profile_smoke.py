#!/usr/bin/env python
"""CI smoke test for the deterministic profiling layer.

All through the CLI entry point:

1. ``repro profile fig4_smoke`` produces a profile whose self-time
   sum reconciles with the root inclusive time within 1%, with the
   DES dispatch loop among the top hot paths;
2. profiling overhead stays bounded (min-of-5 timings of the same
   deployment with and without the profiler) — the bare run uses the
   kernel's uninstrumented monomorphic dispatch loop, so the profiled
   run pays both the frame bookkeeping and the instrumented loop;
3. ``repro profile-diff`` passes against the committed baseline and
   the canonical tree is identical across two runs;
4. the exporters agree: the collapsed stacks cover exactly the
   nonzero-self-time paths of the JSON document.

Run:  PYTHONPATH=src python tools/profile_smoke.py
"""

from __future__ import annotations

import contextlib
import io
import sys
import tempfile
import time
from pathlib import Path

from repro import api
from repro.cli import main
from repro.core.designs import wami_soc_y
from repro.obs.instrumentation import Instrumentation
from repro.obs.profdiff import self_time_shares
from repro.obs.profiler import (
    Profiler,
    canonical_tree,
    load_profile,
    self_host_total,
)

BASELINES_DIR = "benchmarks/baselines/profiles"


def run_cli(argv: list) -> tuple:
    buffer = io.StringIO()
    with contextlib.redirect_stdout(buffer):
        code = main(argv)
    return code, buffer.getvalue()


def check(condition: bool, message: str) -> None:
    if not condition:
        print(f"FAIL: {message}", file=sys.stderr)
        sys.exit(1)
    print(f"ok: {message}")


#: Relative overhead ceiling for the profiled deployment. The bare
#: run takes the kernel's uninstrumented fast path (monomorphic
#: dispatch loop, no frame bookkeeping), so the profiled run is
#: measured against a strictly faster baseline; steady state is ~30%
#: on the 16-frame workload and the ceiling absorbs CI host noise.
OVERHEAD_CEILING = 0.60

#: Frames for the overhead measurement. More frames than the smoke
#: profile itself so the DES steady state dominates interpreter
#: warm-up and the min-of-N is stable at the millisecond scale.
OVERHEAD_FRAMES = 16


def timed_workload(profiled: bool) -> float:
    """Min-of-5 wall time of the overhead workload (build + deploy)."""
    best = float("inf")
    for _ in range(5):
        instrumentation = (
            Instrumentation(profiler=Profiler()) if profiled else None
        )
        platform = api.platform(instrumentation=instrumentation)
        start = time.perf_counter()
        api.deploy(wami_soc_y(), frames=OVERHEAD_FRAMES, platform=platform)
        best = min(best, time.perf_counter() - start)
    return best


def main_smoke() -> None:
    out_dir = Path(tempfile.mkdtemp(prefix="profile_smoke_"))

    # 1. Reconciliation + hot-path attribution through the CLI.
    code, _ = run_cli(["profile", "fig4_smoke", "--out", str(out_dir)])
    check(code == 0, "repro profile fig4_smoke exits 0")
    document = load_profile(out_dir / "PROFILE_fig4_smoke.json")
    total = document["total_host_s"]
    drift = abs(self_host_total(document) - total) / total
    check(drift <= 0.01, f"self-time sum reconciles with root ({drift:.4%})")
    shares = self_time_shares(document)
    top = [p for p, _ in sorted(shares.items(), key=lambda kv: -kv[1])[:10]]
    check(
        any("dispatch:" in path for path in top),
        "DES dispatch is among the top 10 hot paths",
    )
    check(
        any("noc.transfer" in path for path in shares),
        "NoC transfer window is attributed",
    )

    # 2. Overhead: the profiled workload stays within the ceiling of
    # the bare one (which runs the uninstrumented fast path).
    bare = timed_workload(profiled=False)
    profiled = timed_workload(profiled=True)
    overhead = (profiled - bare) / bare
    check(
        overhead < OVERHEAD_CEILING,
        f"profiling overhead {overhead:+.1%} (bare {bare * 1000:.1f} ms, "
        f"profiled {profiled * 1000:.1f} ms) under {OVERHEAD_CEILING:.0%}",
    )

    # 3. Gate against the committed baseline + determinism. Only the
    # smoke workload is compared — the full fig4_wami_runtime profile
    # is produced (and gated) by the bench job, not here.
    smoke_baselines = Path(tempfile.mkdtemp(prefix="profile_smoke_base_"))
    committed = Path(BASELINES_DIR) / "fig4_smoke.json"
    check(committed.is_file(), f"committed baseline {committed} exists")
    (smoke_baselines / "fig4_smoke.json").write_text(committed.read_text())
    code, out = run_cli(
        [
            "profile-diff",
            "--results-dir",
            str(out_dir),
            "--baselines-dir",
            str(smoke_baselines),
        ]
    )
    print(out.rstrip())
    check(code == 0, "profile-diff passes against the committed baseline")
    rerun_dir = Path(tempfile.mkdtemp(prefix="profile_smoke_rerun_"))
    code, _ = run_cli(["profile", "fig4_smoke", "--out", str(rerun_dir)])
    check(code == 0, "second profile run exits 0")
    rerun = load_profile(rerun_dir / "PROFILE_fig4_smoke.json")
    check(
        canonical_tree(document) == canonical_tree(rerun),
        "two runs produce identical canonical trees",
    )

    # 4. Exporter agreement: collapsed lines == nonzero self-time paths.
    collapsed = (out_dir / "fig4_smoke.collapsed").read_text().splitlines()
    collapsed_paths = {line.rsplit(" ", 1)[0] for line in collapsed}
    # Sub-microsecond self times round to zero in the collapsed
    # export, so only paths with a visible share must appear.
    json_paths = {path for path, share in shares.items() if share >= 0.01}
    check(
        collapsed_paths >= json_paths,
        "collapsed stacks cover every hot JSON path",
    )

    print("profile smoke: all checks passed")


if __name__ == "__main__":
    main_smoke()
