#!/usr/bin/env python
"""CI smoke test for the hot-path performance work.

Guards the profile-guided optimization of the Fig. 4 workloads
(vectorized floorplanner, flattened DES kernel, analytic NoC fast
path, warm worker pool) against regression:

1. the fig4_smoke workload (build + 2-frame deployment) finishes
   under a generous wall-clock ceiling, uninstrumented;
2. ``flow.floorplan`` host self-time share of the fig4_smoke profile
   stays below the committed pre-optimization share (it was 87.2% of
   the workload before the placer was vectorized);
3. the aggregate ``flow.floorplan`` share of the full
   fig4_wami_runtime profile stays far below its pre-optimization
   ~82% (the placer must not reclaim the workload);
4. the analytic NoC backend still matches the cycle-level simulator
   exactly at zero load on every fig4 fetch path.

Run:  PYTHONPATH=src python tools/perf_smoke.py
"""

from __future__ import annotations

import contextlib
import io
import sys
import tempfile
import time
from pathlib import Path

from repro import api
from repro.cli import main
from repro.core.designs import wami_deployment_socs, wami_soc_y
from repro.noc import AnalyticNocModel, Mesh, cycle_transfer_latency_cycles
from repro.obs.profdiff import self_time_shares
from repro.obs.profiler import load_profile
from repro.soc.tiles import TileKind

#: Host self-time share of ``flow.floorplan`` in the fig4_smoke
#: profile before the placer was vectorized (committed pre-PR
#: baseline). The share must never climb back to the old regime.
PRE_PR_FLOORPLAN_SHARE = 0.872

#: Aggregate ``flow.floorplan`` share of fig4_wami_runtime before the
#: optimization (~82% across the three deployments). The smoke gate
#: sits at 50%: far above today's ~20%, far below the old regime, and
#: insensitive to run-to-run jitter in which single frame tops the
#: profile.
RUNTIME_FLOORPLAN_SHARE_CEILING = 0.50

#: Generous uninstrumented wall ceiling for fig4_smoke (measured
#: ~0.01 s on a warm interpreter; the ceiling absorbs slow CI hosts).
SMOKE_WALL_CEILING_S = 5.0


def run_cli(argv: list) -> tuple:
    buffer = io.StringIO()
    with contextlib.redirect_stdout(buffer):
        code = main(argv)
    return code, buffer.getvalue()


def check(condition: bool, message: str) -> None:
    if not condition:
        print(f"FAIL: {message}", file=sys.stderr)
        sys.exit(1)
    print(f"ok: {message}")


def floorplan_share(document: dict) -> float:
    """Total host self-time share attributed to ``flow.floorplan``."""
    shares = self_time_shares(document)
    return sum(
        share for path, share in shares.items() if "flow.floorplan" in path
    )


def main_smoke() -> None:
    out_dir = Path(tempfile.mkdtemp(prefix="perf_smoke_"))

    # 1. Wall-clock ceiling, uninstrumented (the real fast path: DES
    # monomorphic loop, analytic NoC, vectorized placer all active).
    api.deploy(wami_soc_y(), frames=2)  # warm imports and device cache
    best = float("inf")
    for _ in range(3):
        start = time.perf_counter()
        api.deploy(wami_soc_y(), frames=2)
        best = min(best, time.perf_counter() - start)
    check(
        best < SMOKE_WALL_CEILING_S,
        f"fig4_smoke workload wall {best * 1000:.1f} ms under "
        f"{SMOKE_WALL_CEILING_S:.0f} s ceiling",
    )

    # 2. The floorplanner stays off the old hot-path regime.
    code, _ = run_cli(["profile", "fig4_smoke", "--out", str(out_dir)])
    check(code == 0, "repro profile fig4_smoke exits 0")
    smoke = load_profile(out_dir / "PROFILE_fig4_smoke.json")
    share = floorplan_share(smoke)
    check(
        share < PRE_PR_FLOORPLAN_SHARE,
        f"flow.floorplan self-time share {share:.1%} below pre-PR "
        f"{PRE_PR_FLOORPLAN_SHARE:.1%}",
    )

    # 3. On the full runtime workload the placer stays a minor frame.
    code, _ = run_cli(["profile", "fig4_wami_runtime", "--out", str(out_dir)])
    check(code == 0, "repro profile fig4_wami_runtime exits 0")
    runtime = load_profile(out_dir / "PROFILE_fig4_wami_runtime.json")
    runtime_share = floorplan_share(runtime)
    check(
        runtime_share < RUNTIME_FLOORPLAN_SHARE_CEILING,
        f"fig4_wami_runtime flow.floorplan share {runtime_share:.1%} under "
        f"{RUNTIME_FLOORPLAN_SHARE_CEILING:.0%} (pre-PR ~82%)",
    )

    # 4. Analytic NoC == cycle-level at zero load on every fetch path.
    for name, config in sorted(wami_deployment_socs().items()):
        mesh = Mesh(rows=config.rows, cols=config.cols)
        mem = config.position_of(config.tiles_of_kind(TileKind.MEM)[0].name)
        aux = config.position_of(config.tiles_of_kind(TileKind.AUX)[0].name)
        model = AnalyticNocModel(mesh)
        exact = all(
            model.latency_cycles(mem, aux, size)
            == cycle_transfer_latency_cycles(mesh, mem, aux, size)
            for size in (1, 4096, 123_457, 3_000_000)
        )
        check(exact, f"analytic NoC exact vs cycle-level on {name} fetch path")

    print("perf smoke: all checks passed")


if __name__ == "__main__":
    main_smoke()
