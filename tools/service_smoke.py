#!/usr/bin/env python
"""CI smoke test for the build/deploy service daemon.

Drives the real ``python -m repro serve`` daemon as a subprocess and
checks the service's headline guarantees end to end:

1. the daemon boots, answers ``/healthz`` 200 and accepts a submit;
2. an over-quota tenant is rejected with HTTP 429 and its job is
   never queued;
3. a warm resubmit of the same config is served from the flow cache;
4. SIGKILL the daemon mid-run, restart it on the same state
   directory: the surviving job record is recovered, finishes, and
   its result is byte-identical to an uninterrupted control run;
5. the Prometheus ``/metrics`` page scrapes and re-parses with the
   repo's own text-format parser.

The final metrics scrape lands in ``--out`` (default
``service_artifacts/``) so CI can upload it.

Run:  PYTHONPATH=src python tools/service_smoke.py
"""

from __future__ import annotations

import argparse
import json
import os
import re
import signal
import subprocess
import sys
import tempfile
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.obs.export import parse_prometheus_text  # noqa: E402
from repro.service.client import (  # noqa: E402
    ServiceClient,
    ServiceError,
)


def check(condition: bool, message: str) -> None:
    if not condition:
        print(f"FAIL: {message}", file=sys.stderr)
        sys.exit(1)
    print(f"ok: {message}")


def start_daemon(state_dir: Path, extra_args=()) -> tuple:
    env = dict(os.environ)
    src = str(REPO_ROOT / "src")
    env["PYTHONPATH"] = src + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    proc = subprocess.Popen(
        [
            sys.executable, "-m", "repro", "serve",
            "--state-dir", str(state_dir),
            "--port", "0", "--workers", "2", "--jobs", "1",
            *extra_args,
        ],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
        cwd=REPO_ROOT,
        env=env,
    )
    banner = []
    while True:
        line = proc.stdout.readline()
        if not line:
            print("daemon died before listening:", file=sys.stderr)
            sys.stderr.write("".join(banner))
            sys.exit(1)
        banner.append(line)
        match = re.search(r"service listening on http://[^:]+:(\d+)", line)
        if match:
            return proc, int(match.group(1))


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--out",
        default="service_artifacts",
        metavar="DIR",
        help="directory for the scraped /metrics artifact",
    )
    args = parser.parse_args()
    out = Path(args.out)
    out.mkdir(parents=True, exist_ok=True)

    with tempfile.TemporaryDirectory(prefix="service-smoke-") as tmp:
        state = Path(tmp) / "state"

        # -- 1. boot, health, submit --------------------------------
        daemon, port = start_daemon(state, ("--quota", "capped=0"))
        try:
            client = ServiceClient(port=port, timeout=15)
            health = client.healthz()
            check(health["exit_code"] == 0, "fresh daemon reports healthy")

            record = client.wait(client.submit("soc_2", tenant="acme")["job_id"])
            check(record["state"] == "succeeded", "cold build job succeeds")

            # -- 2. admission control -------------------------------
            try:
                client.submit("soc_2", tenant="capped")
                check(False, "over-quota submit must raise")
            except ServiceError as error:
                check(error.status == 429, "over-quota submit answers 429")
                check(
                    error.reason == "tenant_queued",
                    "429 carries a machine-readable reason",
                )
            check(
                client.jobs(tenant="capped")["jobs"] == [],
                "rejected job was never queued",
            )

            # -- 3. warm cache --------------------------------------
            warm = client.wait(client.submit("soc_2", tenant="acme")["job_id"])
            check(warm["cached"] is True, "resubmit is served from the cache")
            check(
                warm["result"] == record["result"],
                "cached result equals the cold one",
            )

            # -- 4a. submit, then SIGKILL the daemon ----------------
            victim_id = client.submit("soc_4", tenant="acme")["job_id"]
            deadline = time.monotonic() + 30
            while time.monotonic() < deadline:
                if client.status(victim_id)["state"] in ("running", "succeeded"):
                    break
                time.sleep(0.005)
            daemon.send_signal(signal.SIGKILL)
            daemon.wait(timeout=30)
            print("ok: daemon SIGKILLed mid-run")
        finally:
            if daemon.poll() is None:
                daemon.kill()
                daemon.wait(timeout=30)

        # -- 4b. restart on the same state dir ----------------------
        daemon, port = start_daemon(state)
        try:
            client = ServiceClient(port=port, timeout=15)
            resumed = client.wait(victim_id, timeout=120)
            check(
                resumed["state"] == "succeeded",
                "interrupted job finishes after restart",
            )
            health = client.healthz()
            check(
                health["exit_code"] == 0,
                "recovery backlog drained (healthz back to 200)",
            )

            # Control: same config, fresh state, never interrupted.
            with tempfile.TemporaryDirectory() as control_tmp:
                control_daemon, control_port = start_daemon(
                    Path(control_tmp) / "state"
                )
                try:
                    control_client = ServiceClient(port=control_port, timeout=15)
                    control = control_client.wait(
                        control_client.submit("soc_4", tenant="acme")["job_id"]
                    )
                finally:
                    control_daemon.kill()
                    control_daemon.wait(timeout=30)
            check(
                json.dumps(resumed["result"], sort_keys=True)
                == json.dumps(control["result"], sort_keys=True),
                "recovered result is byte-identical to the control run",
            )

            # -- 5. metrics exposition ------------------------------
            page = client.metrics()
            parsed = parse_prometheus_text(page)
            check(
                any(name.startswith("service_") for name in parsed),
                "prometheus page re-parses and carries service metrics",
            )
            scrape = out / "service_metrics.prom"
            scrape.write_text(page)
            print(f"ok: metrics scrape written to {scrape}")
        finally:
            daemon.kill()
            daemon.wait(timeout=30)

    print("service smoke: all checks passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
