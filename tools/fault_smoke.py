#!/usr/bin/env python
"""CI smoke test for the fault-tolerant, resumable flow.

Three phases, all through the CLI entry point:

1. build an SoC with seeded CAD faults, uninterrupted — the baseline
   summary;
2. repeat the build with stage checkpointing but kill it mid-flow
   (the implementation stage raises ``KeyboardInterrupt``, the
   moral equivalent of ctrl-C on the build host);
3. resume from the checkpoint directory and assert the resumed
   summary is byte-identical to the uninterrupted baseline.

A fourth check builds with one RP forced to permanent failure and
asserts the degraded build still exits 0 with blanking bitstreams.

Run:  PYTHONPATH=src python tools/fault_smoke.py
"""

from __future__ import annotations

import contextlib
import io
import json
import sys
import tempfile

from repro.cli import main
from repro.flow.dpr_flow import DprFlow

FAULT_FLAGS = ["--fault-rate", "0.3", "--fault-seed", "7"]


def run_cli(argv: list) -> tuple:
    """cli.main with captured stdout."""
    buffer = io.StringIO()
    with contextlib.redirect_stdout(buffer):
        code = main(argv)
    return code, buffer.getvalue()


def check(condition: bool, message: str) -> None:
    if not condition:
        print(f"FAIL: {message}", file=sys.stderr)
        sys.exit(1)
    print(f"ok: {message}")


def main_smoke() -> None:
    with tempfile.TemporaryDirectory() as tmp:
        ckpt = f"{tmp}/ckpt"

        # 1. Uninterrupted baseline with seeded faults.
        code, out = run_cli(["build", "soc_2", *FAULT_FLAGS, "--json"])
        check(code == 0, "faulty build completes")
        baseline = json.loads(out)
        check(
            baseline["fault_tolerance"]["retries"] > 0,
            "seeded faults exercised the retry path",
        )

        # 2. Same build, checkpointed, killed during implementation.
        original = DprFlow._implement

        def killed(*args, **kwargs):
            raise KeyboardInterrupt("simulated kill mid-flow")

        DprFlow._implement = killed
        try:
            run_cli(
                ["build", "soc_2", *FAULT_FLAGS, "--checkpoint-dir", ckpt]
            )
        except KeyboardInterrupt:
            print("ok: build killed during the implementation stage")
        else:
            check(False, "interrupted build must not complete")
        finally:
            DprFlow._implement = original

        # 3. Resume and compare against the uninterrupted baseline.
        code, out = run_cli(
            [
                "build", "soc_2", *FAULT_FLAGS,
                "--checkpoint-dir", ckpt, "--resume", "--json",
            ]
        )
        check(code == 0, "resumed build completes")
        check(
            json.loads(out) == baseline,
            "resumed summary equals the uninterrupted baseline",
        )

    # 4. A permanently failed RP degrades instead of aborting.
    code, out = run_cli(
        [
            "build", "soc_2",
            "--inject-cad-fault", "synthesis:synth_rt_sort:3", "--json",
        ]
    )
    check(code == 0, "degraded build exits 0")
    summary = json.loads(out)
    check(
        summary["fault_tolerance"]["degraded"]
        and summary["fault_tolerance"]["dark_rps"] == ["rt_sort"],
        "rt_sort reported dark in the summary",
    )
    blanks = [
        b for b in summary["bitstreams"] if b["name"] == "rt_sort_blank.pbs"
    ]
    check(len(blanks) == 1, "dark tile still ships a blanking bitstream")


if __name__ == "__main__":
    main_smoke()
