#!/usr/bin/env python
"""Design-space exploration with the size-driven strategy model.

Sweeps a family of SoCs — varying the number of reconfigurable tiles
and the accelerator mix — and for each point reports the design class,
the strategy PR-ESP picks, and the modelled compile time of all three
strategies. This is the kind of what-if exploration the calibrated
runtime model enables without any CAD runs.

Run:  python examples/design_space_exploration.py
"""

from __future__ import annotations

from repro.core.metrics import compute_metrics
from repro.core.strategy import ImplementationStrategy, choose_strategy
from repro.soc.config import SocConfig
from repro.soc.esp_library import stock_accelerator
from repro.soc.tiles import ReconfigurableTile, Tile, TileKind
from repro.vivado.runtime_model import CALIBRATED_MODEL


def soc_variant(name: str, accelerators) -> SocConfig:
    """A 3x4 SoC hosting the given accelerator list, one per tile."""
    tiles = [
        Tile(kind=TileKind.CPU, name="cpu0"),
        Tile(kind=TileKind.MEM, name="mem0"),
        Tile(kind=TileKind.AUX, name="aux0"),
    ]
    for index, acc in enumerate(accelerators):
        tiles.append(ReconfigurableTile(name=f"rt{index}", modes=[stock_accelerator(acc)]))
    return SocConfig.assemble(name, board="vc707", rows=3, cols=4, tiles=tiles)


#: The explored family: MAC farms, mixed mid-size, and heavy HLS mixes.
VARIANTS = {
    "mac_farm_4": ["mac"] * 4,
    "mac_farm_8": ["mac"] * 8,
    "sort_pair": ["sort", "sort"],
    "mixed_small": ["mac", "sort", "mac", "sort"],
    "mixed_heavy": ["conv2d", "fft", "sort"],
    "hls_quad": ["conv2d", "gemm", "fft", "sort"],
    "conv_farm": ["conv2d"] * 5,
    "gemm_farm": ["gemm"] * 6,
}


def main() -> None:
    model = CALIBRATED_MODEL
    estimator = model.strategy_estimator(tau=2)

    print(
        f"{'variant':14s} {'N':>2s} {'kappa':>7s} {'gamma':>6s} {'class':>6s} "
        f"{'chosen':>15s} {'serial':>7s} {'semi':>6s} {'fully':>6s}"
    )
    for name, accelerators in VARIANTS.items():
        config = soc_variant(name, accelerators)
        metrics = compute_metrics(config)
        decision = choose_strategy(metrics, estimator=estimator)
        times = {
            strategy: model.estimate_par_total(metrics, strategy, tau=2)
            for strategy in ImplementationStrategy
        }
        print(
            f"{name:14s} {metrics.num_rps:>2d} {metrics.kappa * 100:>6.1f}% "
            f"{metrics.gamma:>6.2f} {decision.design_class.value:>6s} "
            f"{decision.strategy.value:>15s} "
            f"{times[ImplementationStrategy.SERIAL]:>7.0f} "
            f"{times[ImplementationStrategy.SEMI_PARALLEL]:>6.0f} "
            f"{times[ImplementationStrategy.FULLY_PARALLEL]:>6.0f}"
        )

    print("\n(times are modelled minutes; the chosen strategy should track")
    print(" the per-row minimum, with Table I deciding the near-ties)")


if __name__ == "__main__":
    main()
