#!/usr/bin/env python
"""Automatic accelerator-to-tile partitioning for the WAMI application.

The paper allocates the twelve WAMI accelerators to reconfigurable
tiles by hand ("we manually partitioned the accelerators... in a way
that most likely maximizes the performance"). This example automates
the step: candidate allocations (balanced, chain-contiguous, random
search) are scored with an analytic frame-time estimator, the winner is
materialized as a real SoC config, compiled through the flow, and
validated on the discrete-event runtime against the paper's Table VI
allocation.

Run:  python examples/auto_partition.py
"""

from __future__ import annotations

import repro.api as presp
from repro.core.designs import WAMI_TILE_ALLOCATION, wami_soc_y
from repro.wami.partitioner import WamiPartitioner, soc_from_allocation

FRAMES = 4


def main() -> None:
    partitioner = WamiPartitioner()
    platform = presp.platform()

    print("searching allocations for a 3-tile WAMI SoC...\n")
    candidates = {
        "lpt (balance exec time)": partitioner.lpt_allocation(3),
        "chain (contiguous DAG cuts)": partitioner.chain_allocation(3),
    }
    best, best_estimate = partitioner.best_allocation(3, random_candidates=200)
    candidates["best of search"] = best

    print(f"{'policy':28s} {'allocation (Fig. 3 indexes)':44s} {'est. ms/frame':>13s}")
    for name, allocation in candidates.items():
        estimate = partitioner.estimate_frame_time(allocation)
        print(f"{name:28s} {str(allocation.indexes()):44s} {estimate * 1000:>13.1f}")
    print(f"\npaper's manual SoC_Y allocation: {WAMI_TILE_ALLOCATION['soc_y']}")

    print("\nvalidating on the discrete-event runtime "
          f"({FRAMES} frames each)...\n")
    auto_config = soc_from_allocation("auto_soc", best)
    auto_report = presp.deploy(auto_config, frames=FRAMES, platform=platform)
    paper_report = presp.deploy(wami_soc_y(), frames=FRAMES, platform=platform)

    print(f"{'design':10s} {'ms/frame':>9s} {'J/frame':>8s} {'reconf/frame':>13s} "
          f"{'sw stages':>20s}")
    for label, report in (("auto", auto_report), ("paper Y", paper_report)):
        software = ",".join(s.kernel_name for s in report.software_stages) or "-"
        print(
            f"{label:10s} {report.seconds_per_frame * 1000:>9.1f} "
            f"{report.joules_per_frame:>8.3f} "
            f"{report.reconfigurations / FRAMES:>13.1f} {software:>20s}"
        )

    gain = paper_report.seconds_per_frame / auto_report.seconds_per_frame
    print(f"\nautomatic allocation is {gain:.2f}x the manual one on frame time")
    print("(the manual SoC_Y leaves subtract and interp to software;")
    print(" the search maps all twelve kernels onto the three tiles)")


if __name__ == "__main__":
    main()
