#!/usr/bin/env python
"""Fault handling in the runtime reconfiguration manager.

Partial reconfiguration moves configuration data across DDR, the NoC
and the ICAP at runtime — a path where corruption is a real failure
mode. This example arms the seeded ``RuntimeFaultModel`` and walks the
recovery ladder:

1. a single corrupted transfer is retried transparently (the caller
   only sees a longer reconfiguration);
2. a persistent fault is *abandoned*: the manager falls back to the
   tile's last-known-good bitstream and the error propagates to the
   calling thread — but the tile keeps serving its old mode;
3. enough abandoned operations quarantine the tile (dark, blanked,
   refused by the API) and the application executor fails the work
   over to a surviving tile, so the run still completes.

Run:  python examples/fault_tolerant_runtime.py
"""

from __future__ import annotations

from repro.noc.mesh import Mesh
from repro.runtime.api import DprUserApi
from repro.runtime.driver import AcceleratorDriver, DriverRegistry
from repro.runtime.executor import AppExecutor, StageTask
from repro.runtime.faults import (
    PERSISTENT,
    RuntimeFaultKind,
    RuntimeFaultModel,
)
from repro.runtime.manager import ReconfigurationManager
from repro.runtime.memory import BitstreamStore
from repro.runtime.prc import PrcDevice
from repro.runtime.stats import collect_stats
from repro.sim.kernel import Simulator
from repro.units import fmt_duration
from repro.vivado.bitstream import Bitstream, BitstreamKind

CRC = RuntimeFaultKind.BITSTREAM_CORRUPTION


def build_stack(faults, tiles=("rt0",)):
    sim = Simulator()
    mesh = Mesh(3, 3, clock_hz=78e6)
    prc = PrcDevice(
        sim, mesh, mem_position=(0, 1), aux_position=(0, 2), faults=faults
    )
    store = BitstreamStore()
    registry = DriverRegistry()
    for mode in ("fft", "gemm"):
        registry.install(AcceleratorDriver(accelerator=mode, exec_time_s=0.012))
        for tile in tiles:
            store.load(
                Bitstream(
                    name=f"{tile}_{mode}.pbs",
                    kind=BitstreamKind.PARTIAL,
                    size_bytes=280_000,
                    compressed=True,
                    target_rp=tile,
                    mode=mode,
                ),
                tile,
            )
    manager = ReconfigurationManager(sim, prc, store, registry)
    for tile in tiles:
        manager.attach_tile(tile)
    return sim, manager


def main() -> None:
    # ------------------------------------------------------------------
    print("scenario 1: one corrupted transfer -> transparent retry")
    faults = RuntimeFaultModel()
    faults.inject("rt0", "fft", CRC, count=1)
    sim, manager = build_stack(faults)
    proc = manager.invoke("rt0", "fft")
    sim.run()
    record = proc.value
    print(f"  invocation succeeded after retry; reconfiguration took "
          f"{fmt_duration(record.reconfig_s)} "
          f"(~2x a clean transfer), failed_attempts={manager.failed_attempts}\n")

    # ------------------------------------------------------------------
    print("scenario 2: persistent corruption -> fallback to last-known-good")
    faults = RuntimeFaultModel()
    faults.inject("rt0", "gemm", CRC, count=PERSISTENT)
    sim, manager = build_stack(faults)
    warmup = manager.invoke("rt0", "fft")   # fft becomes last-known-good
    sim.run()
    assert warmup.ok
    proc = manager.invoke("rt0", "gemm")
    sim.run()
    print(f"  invocation failed: {proc.exception}")
    state = manager.tile("rt0")
    print(f"  tile fell back: loaded_mode={state.loaded_mode}, "
          f"fallbacks={manager.fallbacks_by_tile.get('rt0', 0)} "
          f"(still serving fft, not dark)\n")

    # ------------------------------------------------------------------
    print("scenario 3: quarantine -> the executor fails work over")
    faults = RuntimeFaultModel()
    faults.inject("rt0", "fft", CRC, count=PERSISTENT)
    sim, manager = build_stack(faults, tiles=("rt0", "rt1"))
    executor = AppExecutor(
        sim,
        DprUserApi(manager),
        [StageTask(name="stage", duration_s=0.012,
                   tile_name="rt0", mode_name="fft")],
    )
    timeline = executor.run(frames=2)
    span = timeline.spans("exec")[0]
    print(f"  rt0 quarantined: {manager.tile_quarantined('rt0')} "
          f"(reason={manager.quarantined.get('rt0')})")
    print(f"  failovers={executor.failovers}; "
          f"the work ran on {span.worker} instead, "
          f"makespan={fmt_duration(timeline.makespan_s)}")

    print("\nmanager statistics after the failover run:")
    for line in collect_stats(manager).summary_lines():
        print("  " + line)


if __name__ == "__main__":
    main()
