#!/usr/bin/env python
"""Fault handling in the runtime reconfiguration manager.

Partial reconfiguration moves configuration data across DDR, the NoC
and the ICAP at runtime — a path where corruption is a real failure
mode. This example injects CRC failures into the PRC and shows the
manager's recovery ladder:

1. a single failed transfer is retried transparently (the caller only
   sees a longer reconfiguration);
2. a persistent failure leaves the tile *dark but functional*: the
   driver is unregistered, the decoupler re-enables the NoC queues so
   the dead region cannot wedge the mesh, and the error propagates to
   the calling thread;
3. the tile remains usable: the next request for a different
   accelerator reconfigures and runs normally.

Run:  python examples/fault_tolerant_runtime.py
"""

from __future__ import annotations

from repro.noc.mesh import Mesh
from repro.runtime.driver import AcceleratorDriver, DriverRegistry
from repro.runtime.manager import ReconfigurationManager
from repro.runtime.memory import BitstreamStore
from repro.runtime.prc import PrcDevice
from repro.runtime.stats import collect_stats
from repro.sim.kernel import Simulator
from repro.units import fmt_duration
from repro.vivado.bitstream import Bitstream, BitstreamKind


def build_stack():
    sim = Simulator()
    mesh = Mesh(3, 3, clock_hz=78e6)
    prc = PrcDevice(sim, mesh, mem_position=(0, 1), aux_position=(0, 2))
    store = BitstreamStore()
    registry = DriverRegistry()
    for mode in ("fft", "gemm"):
        registry.install(AcceleratorDriver(accelerator=mode, exec_time_s=0.012))
        store.load(
            Bitstream(
                name=f"rt0_{mode}.pbs",
                kind=BitstreamKind.PARTIAL,
                size_bytes=280_000,
                compressed=True,
                target_rp="rt0",
                mode=mode,
            ),
            "rt0",
        )
    manager = ReconfigurationManager(sim, prc, store, registry)
    manager.attach_tile("rt0")
    return sim, prc, manager


def main() -> None:
    # ------------------------------------------------------------------
    print("scenario 1: one corrupted transfer -> transparent retry")
    sim, prc, manager = build_stack()
    prc.inject_failure("rt0", "fft", count=1)
    proc = manager.invoke("rt0", "fft")
    sim.run()
    record = proc.value
    print(f"  invocation succeeded after retry; reconfiguration took "
          f"{fmt_duration(record.reconfig_s)} "
          f"(~2x a clean transfer), failed_attempts={manager.failed_attempts}\n")

    # ------------------------------------------------------------------
    print("scenario 2: persistent corruption -> tile left dark, error raised")
    sim, prc, manager = build_stack()
    prc.inject_failure("rt0", "fft", count=2)
    proc = manager.invoke("rt0", "fft")
    sim.run()
    print(f"  invocation failed: {proc.exception}")
    state = manager.tile("rt0")
    print(f"  tile state: loaded_mode={state.loaded_mode}, "
          f"queues_enabled={state.decoupler.queues_enabled} "
          f"(dark but cannot wedge the NoC)\n")

    # ------------------------------------------------------------------
    print("scenario 3: the tile recovers on the next request")
    recovery = manager.invoke("rt0", "gemm")
    sim.run()
    print(f"  gemm ran fine: exec={fmt_duration(recovery.value.exec_time_s)}, "
          f"loaded_mode={manager.tile('rt0').loaded_mode}")

    print("\nmanager statistics after all three scenarios:")
    for line in collect_stats(manager).summary_lines():
        print("  " + line)


if __name__ == "__main__":
    main()
