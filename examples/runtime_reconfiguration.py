#!/usr/bin/env python
"""Deploy the WAMI application onto a built PR-ESP SoC.

Compiles SoC_Y (three reconfigurable tiles, Table VI allocation), loads
its compressed partial bitstreams into the runtime manager's store, and
executes two frames under the Linux-style reconfiguration manager: one
thread per tile, on-demand reconfiguration through the DFX controller,
per-tile locking, driver swaps. Prints the per-invocation log, a
worker-by-worker timeline summary, and the energy breakdown.

Run:  python examples/runtime_reconfiguration.py
"""

from __future__ import annotations

import repro.api as presp
from repro.core.designs import wami_soc_y
from repro.units import fmt_duration


def main() -> None:
    config = wami_soc_y()
    platform = presp.platform()

    print(f"building {config.name} through the PR-ESP flow...")
    flow_result = presp.build(config, platform=platform).flow
    partials = flow_result.partial_bitstreams()
    print(f"  strategy: {flow_result.strategy.value} (tau={flow_result.plan.tau})")
    print(f"  compile time: {flow_result.total_minutes:.0f} modelled minutes")
    print(f"  partial bitstreams: {len(partials)} "
          f"({sum(b.size_kib for b in partials):.0f} KB total)\n")

    print("deploying and running 2 frames under the runtime manager...\n")
    report = presp.deploy(
        config, flow_result=flow_result, frames=2, platform=platform
    )

    print("invocation log (tile, accelerator, reconfig, exec):")
    # The manager records every esp_run; show the first frame's worth.
    manager_log = report.timeline.spans("exec")
    reconfigs = {e.task: e for e in report.timeline.spans("reconfig")}
    for event in manager_log[:12]:
        reconfig = reconfigs.get(event.task)
        reconfig_text = (
            fmt_duration(reconfig.duration_s) if reconfig is not None else "warm"
        )
        print(
            f"  {event.worker:6s} {event.task:18s} reconfig={reconfig_text:>9s} "
            f"exec={fmt_duration(event.duration_s)}"
        )

    print("\nworker utilization:")
    workers = sorted({e.worker for e in report.timeline.events})
    for worker in workers:
        busy = report.timeline.busy_time(worker)
        share = busy / report.timeline.makespan_s
        print(f"  {worker:6s} busy {fmt_duration(busy)} ({share:5.1%} of the run)")

    energy = report.energy
    print("\nresults:")
    print(f"  frame latency : {report.seconds_per_frame * 1000:.1f} ms")
    print(f"  reconfigs     : {report.reconfigurations} "
          f"({report.reconfigurations / report.frames:.0f} per frame)")
    print(f"  software      : {', '.join(s.kernel_name for s in report.software_stages) or 'none'}")
    frames = report.frames
    print(f"  energy/frame  : {energy.joules_per_frame:.3f} J "
          f"(baseline {energy.baseline_j / frames:.2f} J, "
          f"dynamic {energy.dynamic_j / frames:.2f} J, "
          f"software {energy.software_j / frames:.2f} J, "
          f"reconfig {energy.reconfig_j / frames:.3f} J)")
    print(f"  average power : {energy.average_power_w:.2f} W")

    if report.runtime_stats is not None:
        print("\nmanager statistics:")
        for line in report.runtime_stats.summary_lines():
            print("  " + line)


if __name__ == "__main__":
    main()
