#!/usr/bin/env python
"""Run the WAMI-App functionally: real images through the real kernels.

Generates a synthetic aerial sequence (drifting camera + bright
movers), pushes it through the numeric pipeline of Fig. 3 — debayer,
grayscale, Lucas-Kanade registration decomposed into its nine
sub-kernels, GMM change detection — and reports registration accuracy
and mover-detection hits against the generator's ground truth.

Run:  python examples/wami_pipeline.py
"""

from __future__ import annotations

import numpy as np

from repro.wami.app import WamiApplication
from repro.wami.data import synthetic_bayer_sequence
from repro.wami.graph import WAMI_GRAPH


def ascii_mask(mask: np.ndarray, step: int = 2) -> str:
    """Tiny ASCII rendering of a boolean mask."""
    rows = []
    for r in range(0, mask.shape[0], step):
        rows.append(
            "".join("#" if mask[r, c] else "." for c in range(0, mask.shape[1], step))
        )
    return "\n".join(rows)


def main() -> None:
    print("WAMI dataflow (Fig. 3):")
    for level_index, level in enumerate(WAMI_GRAPH.levels()):
        names = ", ".join(f"{s.value}:{s.kernel_name}" for s in level)
        print(f"  level {level_index}: {names}")
    print()

    frames, truth, movers = synthetic_bayer_sequence(
        num_frames=5, size=64, drift_px_per_frame=0.9, num_movers=2, seed=42
    )
    print(f"generated {len(frames)} Bayer frames (64x64), "
          f"{len(movers)} mover observations\n")

    app = WamiApplication()
    result = app.golden_run(frames, lk_iterations=40)

    print("frame  est. tx     est. ty     true tx    foreground px")
    for index in range(len(frames)):
        est = result.params[index]
        expected = truth[index]
        print(
            f"{index:>5d} {est[4]:>9.3f} {est[5]:>11.3f} {expected[4]:>10.3f} "
            f"{int(result.masks[index].sum()):>14d}"
        )

    # Mover detection on the last frame.
    last = len(frames) - 1
    hits = 0
    last_movers = [m for m in movers if m.frame_index == last]
    for mover in last_movers:
        r, c = int(mover.row), int(mover.col)
        window = result.masks[last][max(0, r - 2) : r + 3, max(0, c - 2) : c + 3]
        hits += bool(window.any())
    print(f"\nmovers detected in final frame: {hits}/{len(last_movers)}")
    print("\nchange-detection mask (final frame):")
    print(ascii_mask(result.masks[last]))


if __name__ == "__main__":
    main()
