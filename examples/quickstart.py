#!/usr/bin/env python
"""Quickstart: design a partially reconfigurable SoC and compile it.

Builds a 2x3 SoC with two reconfigurable tiles hosting stock ESP
accelerators, runs the full PR-ESP flow (parse → parallel OoC synthesis
→ floorplan → size-driven strategy choice → P&R → bitstreams), and
prints the flow report plus one of the auto-generated tool scripts.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

import repro.api as presp
from repro import ReconfigurableTile, SocConfig, Tile, TileKind
from repro.flow.report import comparison_report, flow_report
from repro.flow.scripts import SynthesisScript
from repro.soc.esp_library import stock_accelerator


def main() -> None:
    # ------------------------------------------------------------------
    # 1. Describe the SoC: the ESP tile grid, PR-ESP style.
    # ------------------------------------------------------------------
    config = SocConfig.assemble(
        name="quickstart_soc",
        board="vc707",
        rows=2,
        cols=3,
        tiles=[
            Tile(kind=TileKind.CPU, name="cpu0"),
            Tile(kind=TileKind.MEM, name="mem0"),
            Tile(kind=TileKind.AUX, name="aux0"),  # hosts DFX controller + ICAP
            ReconfigurableTile(
                name="rt0",
                modes=[stock_accelerator("fft"), stock_accelerator("gemm")],
            ),
            ReconfigurableTile(
                name="rt1",
                modes=[stock_accelerator("conv2d"), stock_accelerator("sort")],
            ),
        ],
    )
    print(f"SoC: {config.name} ({config.rows}x{config.cols} on {config.board})")
    print(f"static part: {config.static_luts()} LUTs")
    print(f"reconfigurable tiles: {config.reconfigurable_luts()} LUTs\n")

    # ------------------------------------------------------------------
    # 2. One call = the paper's single make target.
    # ------------------------------------------------------------------
    result = presp.build(config, with_baseline=True)
    print(flow_report(result.flow))
    print()

    # ------------------------------------------------------------------
    # 3. Compare with the standard single-instance Xilinx DPR flow.
    # ------------------------------------------------------------------
    assert result.baseline is not None
    print(comparison_report(result.flow, result.baseline))
    print()

    # ------------------------------------------------------------------
    # 4. Peek at an auto-generated tool script (the flow's artifacts).
    # ------------------------------------------------------------------
    script = SynthesisScript(
        design=config.name,
        unit="rt0_wrapper",
        part=config.device().name,
        ooc=True,
    )
    print("auto-generated OoC synthesis script for rt0:")
    print(script.render())


if __name__ == "__main__":
    main()
