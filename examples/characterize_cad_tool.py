#!/usr/bin/env python
"""Re-run the paper's Vivado characterization on a synthetic design space.

Sec. IV of the paper spent "hundreds of hours" measuring four
hand-built SoCs under every parallelism level to learn how compilation
time scales. This example industrializes that loop with the
characterization harness: generate designs across the class space,
sweep τ on each, inspect the winners, and refit runtime curves from
the collected observations.

Run:  python examples/characterize_cad_tool.py
"""

from __future__ import annotations

from repro.core.classes import classify
from repro.core.metrics import compute_metrics
from repro.vivado.characterization import Characterizer, default_design_space
from repro.vivado.runtime_model import JobKind


def main() -> None:
    designs = default_design_space()
    characterizer = Characterizer()

    print("design space:")
    for config in designs:
        metrics = compute_metrics(config)
        cls = classify(metrics).design_class.value
        print(
            f"  {config.name:8s} N={metrics.num_rps} {metrics.summary():42s} "
            f"class {cls}"
        )

    print("\nsweeping every parallelism level (simulated CAD runs)...\n")
    run = characterizer.sweep(designs, max_tau=6)

    print(f"{'design':8s} {'tau':>4s} {'strategy':>15s} {'t_static':>9s} "
          f"{'max_omega':>10s} {'T_P&R':>7s}")
    current = None
    for point in run.points:
        if point.design != current:
            if current is not None:
                print()
            current = point.design
        static_text = (
            "-" if point.t_static_minutes is None else f"{point.t_static_minutes:.0f}"
        )
        omega_text = (
            "-" if point.max_omega_minutes is None else f"{point.max_omega_minutes:.0f}"
        )
        print(
            f"{point.design:8s} {point.tau:>4d} {point.strategy.value:>15s} "
            f"{static_text:>9s} {omega_text:>10s} {point.total_minutes:>7.0f}"
        )

    print("\nfastest parallelism per design:")
    for config in designs:
        metrics = compute_metrics(config)
        cls = classify(metrics).design_class.value
        print(f"  {config.name:8s} class {cls}: best tau = {run.best_tau(config.name)}")

    print("\nrefitting runtime curves from the sweep:")
    refit = characterizer.refit(run)
    for kind in (JobKind.STATIC_PAR, JobKind.CONTEXT_PAR, JobKind.SERIAL_DPR_PAR):
        curve = refit.curves[kind]
        print(f"  {kind.value:16s} t(L) = {curve.c:.2f} + {curve.a:.4f} * L^{curve.p:.3f}")
    print("\n(the paper did this once, by hand, on real Vivado; the harness")
    print(" makes it a repeatable experiment)")


if __name__ == "__main__":
    main()
