"""The top-level PR-ESP API: one import, in-process and service verbs.

The platform's capabilities behind plain functions::

    import repro.api as presp

    result = presp.build(config)                 # the DPR flow
    outcomes = presp.build_many(requests)        # batch via the build service
    report = presp.deploy(config, frames=4)      # run WAMI on the built SoC
    flow, mono = presp.compare(config)           # Table V row
    report, health, bus = presp.monitor(config)  # deploy + health monitor

Every in-process verb accepts ``options=`` (a :class:`~repro.flow.
options.BuildOptions` — cache, parallel jobs, fault/retry policy,
checkpoint directory) and ``instrumentation=`` (an :class:`~repro.obs.
instrumentation.Instrumentation` — tracer, metrics, event bus), or a
pre-built ``platform=`` when several calls should share state (flow
cache, batch workers).

Against a running ``repro serve`` daemon the same surface exists as
*service* verbs — jobs instead of blocking calls::

    job = presp.submit("soc_2", tenant="acme", port=8321)
    presp.status(job["job_id"], port=8321)
    record = presp.fetch(job["job_id"], port=8321)   # waits, then result
    presp.cancel(job["job_id"], port=8321)

This is the layer ``repro.cli``, the examples and the benchmarks are
written against; reach for :class:`~repro.core.platform.PrEspPlatform`
directly only when you need its full surface.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.platform import (
    BuildResult,
    PrEspPlatform,
    WamiRunReport,
)
from repro.core.strategy import ImplementationStrategy
from repro.errors import ConfigurationError
from repro.flow.batch import BuildOutcome, BuildRequest
from repro.flow.dpr_flow import FlowResult
from repro.flow.monolithic import MonolithicResult
from repro.flow.options import BuildOptions
from repro.obs.context import RequestIdFactory, TelemetryContext
from repro.obs.events import EventBus
from repro.obs.health import HealthReport
from repro.obs.instrumentation import Instrumentation
from repro.obs.tsdb import TelemetryStore
from repro.runtime.faults import RuntimeFaultOptions
from repro.soc.config import SocConfig

__all__ = [
    "build",
    "build_many",
    "cancel",
    "compare",
    "deploy",
    "fetch",
    "monitor",
    "platform",
    "status",
    "submit",
    "BuildOptions",
    "Instrumentation",
    "RequestIdFactory",
    "RuntimeFaultOptions",
    "TelemetryContext",
    "TelemetryStore",
]


def platform(
    options: Optional[BuildOptions] = None,
    instrumentation: Optional[Instrumentation] = None,
    **kwargs,
) -> PrEspPlatform:
    """A configured :class:`PrEspPlatform`.

    Extra keyword arguments go to the constructor verbatim (runtime
    model, ``compress_bitstreams``...). Build one explicitly when
    several verbs should share a flow cache or batch workers; the
    module-level verbs otherwise construct a fresh platform per call.
    """
    return PrEspPlatform(
        options=options, instrumentation=instrumentation, **kwargs
    )


def _platform_for(
    existing: Optional[PrEspPlatform],
    options: Optional[BuildOptions],
    instrumentation: Optional[Instrumentation],
) -> PrEspPlatform:
    if existing is not None:
        if options is not None or instrumentation is not None:
            raise ConfigurationError(
                "pass either platform= or options=/instrumentation=, not both "
                "(a platform already carries its own)"
            )
        return existing
    return PrEspPlatform(options=options, instrumentation=instrumentation)


def build(
    config: SocConfig,
    strategy: Optional[ImplementationStrategy] = None,
    with_baseline: bool = False,
    resume: Optional[bool] = None,
    options: Optional[BuildOptions] = None,
    instrumentation: Optional[Instrumentation] = None,
    platform: Optional[PrEspPlatform] = None,
    context: Optional[TelemetryContext] = None,
) -> BuildResult:
    """Run the PR-ESP DPR flow on ``config``.

    ``resume`` restores a checkpointed build's completed stages when
    ``options.checkpoint_dir`` is set (None defers to
    ``options.resume``). A build that lost reconfigurable partitions to
    permanent CAD faults returns normally with ``result.flow.degraded``
    set — inspect ``result.flow.failures`` rather than catching.
    ``context`` attributes the run's telemetry to an existing request
    ID (platforms built with ``request_ids=`` mint one otherwise).
    """
    return _platform_for(platform, options, instrumentation).build(
        config,
        strategy_override=strategy,
        with_baseline=with_baseline,
        resume=resume,
        context=context,
    )


def build_many(
    requests: Sequence[BuildRequest],
    options: Optional[BuildOptions] = None,
    instrumentation: Optional[Instrumentation] = None,
    platform: Optional[PrEspPlatform] = None,
    context: Optional[TelemetryContext] = None,
) -> List[BuildOutcome]:
    """Fan a batch of build requests out over the build service."""
    return _platform_for(platform, options, instrumentation).build_many(
        requests, context=context
    )


def compare(
    config: SocConfig,
    options: Optional[BuildOptions] = None,
    instrumentation: Optional[Instrumentation] = None,
    platform: Optional[PrEspPlatform] = None,
    context: Optional[TelemetryContext] = None,
) -> Tuple[FlowResult, MonolithicResult]:
    """PR-ESP vs the monolithic baseline for one SoC (Table V row)."""
    return _platform_for(platform, options, instrumentation).compare_with_monolithic(
        config, context=context
    )


def deploy(
    config: SocConfig,
    frames: int = 1,
    flow_result: Optional[FlowResult] = None,
    power_gating: bool = False,
    pipelined: bool = False,
    options: Optional[BuildOptions] = None,
    instrumentation: Optional[Instrumentation] = None,
    platform: Optional[PrEspPlatform] = None,
    runtime_options: Optional[RuntimeFaultOptions] = None,
    context: Optional[TelemetryContext] = None,
    **kwargs,
) -> WamiRunReport:
    """Program a built SoC and run WAMI for ``frames`` frames.

    Builds ``config`` first when ``flow_result`` is not supplied. The
    ``instrumentation`` bundle receives the kernel protocol spans, the
    runtime counters and the manager's lifecycle events.
    ``runtime_options`` carries the runtime fault model and
    watchdog/recovery policy (each deployment draws from a fresh copy
    of the model, so same-seed deploys replay identically). Extra
    keyword arguments (``app=``, ``prc_setup=``...) pass through to
    :meth:`PrEspPlatform.deploy_wami`.
    """
    return _platform_for(platform, options, instrumentation).deploy_wami(
        config,
        flow_result=flow_result,
        frames=frames,
        power_gating=power_gating,
        pipelined=pipelined,
        runtime_options=runtime_options,
        context=context,
        **kwargs,
    )


def monitor(
    config: SocConfig,
    frames: int = 1,
    options: Optional[BuildOptions] = None,
    platform: Optional[PrEspPlatform] = None,
    runtime_options: Optional[RuntimeFaultOptions] = None,
    context: Optional[TelemetryContext] = None,
    **kwargs,
) -> Tuple[WamiRunReport, HealthReport, EventBus]:
    """Deploy WAMI with the event bus and health monitor wired in.

    Returns the run report, the end-of-run health verdict and the bus.
    ``runtime_options`` supplies the runtime fault model and recovery
    policy under which the deployment runs. Extra keyword arguments
    (watchdog thresholds, ``inject_failures=``) pass through to
    :meth:`PrEspPlatform.monitor_wami`.
    """
    return _platform_for(platform, options, None).monitor_wami(
        config,
        frames=frames,
        runtime_options=runtime_options,
        context=context,
        **kwargs,
    )


# ----------------------------------------------------------------------
# service verbs — the same surface against a running daemon
# ----------------------------------------------------------------------
def _client(host: str, port: int, timeout: float):
    # Imported lazily so `import repro.api` stays cheap for callers that
    # never talk to a daemon.
    from repro.service.client import ServiceClient

    return ServiceClient(host=host, port=port, timeout=timeout)


def submit(
    config: str,
    kind: str = "build",
    tenant: str = "default",
    priority: int = 0,
    strategy: Optional[str] = None,
    frames: int = 1,
    host: str = "127.0.0.1",
    port: int = 8321,
    timeout: float = 30.0,
) -> Dict:
    """Submit a job to a running ``repro serve`` daemon.

    ``config`` is a paper design name (``soc_2``...) or an ESP
    ``esp_config`` path readable by the daemon. Returns the accepted
    job record (its ``job_id`` feeds :func:`status`/:func:`fetch`).
    Over-quota submits raise :class:`~repro.service.client.
    ServiceError` with ``status == 429`` — they are never queued.
    """
    return _client(host, port, timeout).submit(
        config,
        kind=kind,
        tenant=tenant,
        priority=priority,
        strategy=strategy,
        frames=frames,
    )


def status(
    job_id: str,
    host: str = "127.0.0.1",
    port: int = 8321,
    timeout: float = 30.0,
) -> Dict:
    """The current job record for ``job_id`` (non-blocking)."""
    return _client(host, port, timeout).status(job_id)


def cancel(
    job_id: str,
    host: str = "127.0.0.1",
    port: int = 8321,
    timeout: float = 30.0,
) -> Dict:
    """Cancel ``job_id``: queued jobs die immediately, running jobs get
    the cooperative flag. Idempotent on terminal jobs."""
    return _client(host, port, timeout).cancel(job_id)


def fetch(
    job_id: str,
    wait: bool = True,
    timeout: float = 120.0,
    host: str = "127.0.0.1",
    port: int = 8321,
) -> Dict:
    """The result payload for ``job_id``.

    With ``wait=True`` (the default) polls until the job reaches a
    terminal state, then returns the result envelope; ``wait=False``
    asks exactly once and raises ``ServiceError`` (409, ``not_ready``)
    when the job is still in flight.
    """
    client = _client(host, port, max(timeout, 30.0))
    if wait:
        client.wait(job_id, timeout=timeout)
    return client.result(job_id)
