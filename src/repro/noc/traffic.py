"""Application-level NoC traffic analysis.

Maps a dataflow application onto an SoC's tile grid and computes the
per-link traffic its inter-tile transfers generate: every producer →
consumer edge whose endpoints sit on different tiles ships its payload
over the XY route between them (via DDR in the real system — modelled
as tile → MEM → tile, which is how ESP's DMA actually moves data).
The report surfaces link hotspots and the aggregate bytes a frame
pushes through the mesh — the data the paper's SoC_X/Y/Z allocation
trade-offs implicitly manipulate.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.errors import NocError
from repro.noc.mesh import Mesh
from repro.noc.router import xy_route
from repro.soc.config import SocConfig
from repro.soc.tiles import TileKind

#: A directed mesh link: (from_position, to_position).
Link = Tuple[Tuple[int, int], Tuple[int, int]]


@dataclass(frozen=True)
class TransferDemand:
    """One logical producer → consumer transfer per frame."""

    producer_task: str
    consumer_task: str
    payload_bytes: int

    def __post_init__(self) -> None:
        if self.payload_bytes < 0:
            raise NocError("transfer payload must be non-negative")


@dataclass
class TrafficReport:
    """Per-link bytes/frame plus aggregates."""

    link_bytes: Dict[Link, int] = field(default_factory=dict)
    total_bytes: int = 0
    ddr_bytes: int = 0  # bytes entering/leaving the MEM tile

    def hottest_links(self, count: int = 5) -> List[Tuple[Link, int]]:
        """The ``count`` busiest links (descending)."""
        ranked = sorted(self.link_bytes.items(), key=lambda kv: -kv[1])
        return ranked[:count]

    def max_link_bytes(self) -> int:
        """Bytes on the busiest link."""
        return max(self.link_bytes.values(), default=0)

    def utilization_at(self, frame_time_s: float, mesh: Mesh) -> float:
        """Peak link utilization for a given frame latency."""
        if frame_time_s <= 0:
            raise NocError("frame time must be positive")
        capacity = mesh.link_bandwidth_bytes_per_s() * frame_time_s
        return self.max_link_bytes() / capacity


def analyze_traffic(
    config: SocConfig,
    demands: Sequence[TransferDemand],
    task_positions: Mapping[str, Optional[Tuple[int, int]]],
) -> TrafficReport:
    """Accumulate per-link traffic for one frame.

    ``task_positions`` maps each task to its tile's grid position (None
    for software tasks, which live at the CPU tile). All inter-tile
    transfers are staged through the MEM tile (DMA via DDR), matching
    ESP's accelerator communication model.
    """
    mem_tile = config.tiles_of_kind(TileKind.MEM)[0]
    mem_pos = config.position_of(mem_tile.name)
    cpu_tiles = config.tiles_of_kind(TileKind.CPU)
    cpu_pos = (
        config.position_of(cpu_tiles[0].name) if cpu_tiles else mem_pos
    )

    report = TrafficReport()

    def position_of(task: str) -> Tuple[int, int]:
        position = task_positions.get(task)
        return position if position is not None else cpu_pos

    def add_path(src: Tuple[int, int], dst: Tuple[int, int], nbytes: int) -> None:
        route = xy_route(src, dst)
        for a, b in zip(route, route[1:]):
            link = (a, b)
            report.link_bytes[link] = report.link_bytes.get(link, 0) + nbytes

    for demand in demands:
        src = position_of(demand.producer_task)
        dst = position_of(demand.consumer_task)
        # Producer writes its output to DDR; consumer reads it back.
        add_path(src, mem_pos, demand.payload_bytes)
        add_path(mem_pos, dst, demand.payload_bytes)
        report.total_bytes += 2 * demand.payload_bytes
        report.ddr_bytes += 2 * demand.payload_bytes

    return report


def wami_transfer_demands(frame_pixels: int = 512 * 512) -> List[TransferDemand]:
    """The WAMI dataflow's per-frame transfers (bytes scale with the
    frame; image-sized edges dominate, vector edges are negligible)."""
    from repro.wami.graph import WAMI_EDGES, WamiStage

    image_bytes = frame_pixels * 4  # fixed-point pixels
    small_edges = {
        # 6-vector / 6x6-matrix payloads.
        (WamiStage.SD_UPDATE, WamiStage.MATRIX_SOLVE),
        (WamiStage.HESSIAN, WamiStage.MATRIX_SOLVE),
        (WamiStage.MATRIX_SOLVE, WamiStage.LK_FLOW),
        (WamiStage.LK_FLOW, WamiStage.INTERP),
    }
    demands = []
    for src, dst in WAMI_EDGES:
        payload = 256 if (src, dst) in small_edges else image_bytes
        if src is WamiStage.STEEPEST_DESCENT:
            payload = 6 * image_bytes if dst is not WamiStage.SD_UPDATE else 6 * image_bytes
        demands.append(
            TransferDemand(
                producer_task=src.kernel_name,
                consumer_task=dst.kernel_name,
                payload_bytes=payload,
            )
        )
    return demands


def wami_traffic_report(config: SocConfig, frame_pixels: int = 512 * 512) -> TrafficReport:
    """Traffic report for the WAMI app on a deployment SoC."""
    from repro.wami.app import WamiApplication

    placement = WamiApplication().tile_of_stage(config)
    task_positions = {
        stage.kernel_name: (
            config.position_of(tile) if tile is not None else None
        )
        for stage, tile in placement.items()
    }
    return analyze_traffic(
        config, wami_transfer_demands(frame_pixels), task_positions
    )
