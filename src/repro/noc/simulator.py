"""Contention-aware NoC transfer simulator.

A wormhole-switched mesh serializes packets that share a link on the
same plane. The simulator models each directed link of each plane as a
resource a packet holds for ``size_flits`` cycles, advancing the head
flit by the router pipeline per hop. Packets are processed in
injection-time order (FIFO arbitration), which is deterministic and
matches ESP's round-robin arbiters under the traffic rates the runtime
evaluation produces.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.errors import NocError
from repro.noc.mesh import Mesh
from repro.noc.packet import Packet
from repro.obs import events as ev
from repro.obs.events import NULL_EVENTS
from repro.obs.metrics import NULL_METRICS
from repro.obs.profiler import NULL_PROFILER

#: Default congestion watermark: a packet stalling this many cycles on
#: busy links is reported on the event bus. Tuned above the router
#: pipeline depth so ordinary store-and-forward jitter stays quiet.
DEFAULT_CONGESTION_WATERMARK_CYCLES = 32

#: A directed link on a plane: (from_pos, to_pos, plane).
LinkKey = Tuple[Tuple[int, int], Tuple[int, int], int]


@dataclass(frozen=True)
class TransferRecord:
    """Outcome of simulating one packet."""

    packet: Packet
    injected_at: int  # cycle the packet entered the source queue
    delivered_at: int  # cycle the tail flit left the last link
    links_used: Tuple[LinkKey, ...]
    #: Cycles the head flit spent blocked on busy links (0 = free path).
    stall_cycles: int = 0

    @property
    def latency_cycles(self) -> int:
        """End-to-end latency including queueing."""
        return self.delivered_at - self.injected_at


class NocSimulator:
    """Replays a batch of packet injections through the mesh."""

    def __init__(
        self,
        mesh: Mesh,
        metrics=NULL_METRICS,
        events=NULL_EVENTS,
        profiler=NULL_PROFILER,
        congestion_watermark_cycles: int = DEFAULT_CONGESTION_WATERMARK_CYCLES,
        vectorize: bool = True,
    ) -> None:
        if congestion_watermark_cycles <= 0:
            raise NocError("congestion watermark must be positive")
        self.mesh = mesh
        #: When True, contention-free batches take the numpy fast path;
        #: False forces the sequential per-flit loop (the reference the
        #: equivalence tests compare against).
        self.vectorize = vectorize
        self.metrics = metrics
        self.events = events
        self.profiler = profiler
        self.congestion_watermark_cycles = congestion_watermark_cycles
        self._link_free: Dict[LinkKey, int] = {}
        self._pending: List[Tuple[int, int, Packet]] = []  # (inject_cycle, seq, pkt)
        self._seq = 0
        self.records: List[TransferRecord] = []
        #: Worst stall any routed packet has seen (the high watermark).
        self.max_stall_cycles = 0

    def inject(self, packet: Packet, at_cycle: int = 0) -> None:
        """Queue ``packet`` for injection at ``at_cycle``."""
        if at_cycle < 0:
            raise NocError("injection cycle must be non-negative")
        if packet.plane >= self.mesh.planes:
            raise NocError(
                f"packet plane {packet.plane} outside mesh planes {self.mesh.planes}"
            )
        self.mesh.check_position(packet.src)
        self.mesh.check_position(packet.dst)
        self._pending.append((at_cycle, self._seq, packet))
        self._seq += 1

    def run(self) -> List[TransferRecord]:
        """Route every injected packet; returns records in delivery order."""
        self._pending.sort()
        packets = self.metrics.counter("noc.packets", "packets delivered")
        flits = self.metrics.counter("noc.flits", "flits crossing the NoC")
        payload = self.metrics.counter("noc.bytes", "payload bytes crossing the NoC")
        latency = self.metrics.histogram(
            "noc.latency_cycles", "end-to-end packet latency"
        )
        profiler = self.profiler if self.profiler.enabled else None
        cycle_s = 1.0 / self.mesh.clock_hz
        if profiler is not None:
            profiler.begin("noc.run")
        try:
            new_records: Optional[List[TransferRecord]] = None
            if profiler is None and self.vectorize and not self._link_free:
                new_records = self._route_batch_vectorized()
            if new_records is None:
                new_records = []
                for inject_cycle, _seq, packet in self._pending:
                    if profiler is None:
                        record = self._route(packet, inject_cycle)
                    else:
                        # Per-packet flit-advancement frame; the packet's
                        # end-to-end latency is its simulated attribution.
                        profiler.begin("noc.route")
                        try:
                            record = self._route(packet, inject_cycle)
                            profiler.add_sim(record.latency_cycles * cycle_s)
                        finally:
                            profiler.end()
                    new_records.append(record)
            for record in new_records:
                packet = record.packet
                self.records.append(record)
                plane = str(packet.plane)
                packets.inc(plane=plane)
                flits.inc(packet.size_flits, plane=plane)
                payload.inc(packet.payload_bytes, plane=plane)
                latency.observe(record.latency_cycles, plane=plane)
        finally:
            if profiler is not None:
                profiler.end()
        self._pending.clear()
        self.records.sort(key=lambda r: r.delivered_at)
        return list(self.records)

    def _route_batch_vectorized(self) -> Optional[List[TransferRecord]]:
        """Route the whole pending batch at once when no link is shared.

        On a fresh mesh with link-disjoint traffic every packet sees
        free links, so the per-flit bookkeeping collapses to the
        closed-form zero-load latency — computed here over numpy arrays
        for the entire batch. Returns None (caller falls back to the
        exact sequential loop) whenever any two packets share a
        directed link on the same plane, since those may contend.
        """
        if not self._pending:
            return []
        links_per_packet: List[Tuple[LinkKey, ...]] = []
        seen_links = set()
        total_links = 0
        for _inject, _seq, packet in self._pending:
            if packet.is_local:
                links_per_packet.append(())
                continue
            path = self.mesh.path(packet.src, packet.dst)
            links = tuple(
                (path[i], path[i + 1], packet.plane) for i in range(len(path) - 1)
            )
            links_per_packet.append(links)
            seen_links.update(links)
            total_links += len(links)
        if len(seen_links) != total_links:
            return None
        inject = np.fromiter(
            (entry[0] for entry in self._pending), dtype=np.int64
        )
        hops = np.fromiter((len(links) for links in links_per_packet), dtype=np.int64)
        size_flits = np.fromiter(
            (entry[2].size_flits for entry in self._pending), dtype=np.int64
        )
        pipeline = self.mesh.pipeline_cycles
        # Local packets (hops == 0) reduce to inject + pipeline + flits - 1,
        # the same closed form, so one expression covers the batch.
        delivered = inject + pipeline * (hops + 1) + size_flits - 1
        records = []
        for index, (inject_cycle, _seq, packet) in enumerate(self._pending):
            links = links_per_packet[index]
            head_time = inject_cycle + pipeline
            for link in links:
                self._link_free[link] = head_time + packet.size_flits
                head_time += pipeline
            records.append(
                TransferRecord(
                    packet=packet,
                    injected_at=inject_cycle,
                    delivered_at=int(delivered[index]),
                    links_used=links,
                )
            )
        return records

    # ------------------------------------------------------------------
    def _route(self, packet: Packet, inject_cycle: int) -> TransferRecord:
        pipeline = self.mesh.pipeline_cycles
        if packet.is_local:
            # Local delivery still pays one router traversal.
            delivered = inject_cycle + pipeline + packet.size_flits - 1
            return TransferRecord(
                packet=packet,
                injected_at=inject_cycle,
                delivered_at=delivered,
                links_used=(),
            )
        path = self.mesh.path(packet.src, packet.dst)
        links: List[LinkKey] = [
            (path[i], path[i + 1], packet.plane) for i in range(len(path) - 1)
        ]
        head_time = inject_cycle + pipeline  # injection stage
        stall_cycles = 0
        for link in links:
            free_at = self._link_free.get(link, 0)
            start = max(head_time, free_at)
            stall_cycles += start - head_time
            # The link carries the whole packet, one flit per cycle.
            self._link_free[link] = start + packet.size_flits
            head_time = start + pipeline
        delivered = head_time + packet.size_flits - 1
        if stall_cycles > self.max_stall_cycles:
            self.max_stall_cycles = stall_cycles
            self.metrics.gauge(
                "noc.max_stall_cycles", "worst head-flit stall (high watermark)"
            ).set(stall_cycles)
        if stall_cycles >= self.congestion_watermark_cycles:
            self.events.emit(
                ev.NOC_CONGESTION,
                time=float(inject_cycle),
                source=f"{packet.src}->{packet.dst}",
                plane=packet.plane,
                stall_cycles=stall_cycles,
                watermark_cycles=self.congestion_watermark_cycles,
            )
        return TransferRecord(
            packet=packet,
            injected_at=inject_cycle,
            delivered_at=delivered,
            links_used=tuple(links),
            stall_cycles=stall_cycles,
        )

    # ------------------------------------------------------------------
    def aggregate_throughput_bytes_per_cycle(self) -> float:
        """Delivered payload bytes per cycle over the simulated window."""
        if not self.records:
            return 0.0
        total_bytes = sum(r.packet.payload_bytes for r in self.records)
        start = min(r.injected_at for r in self.records)
        end = max(r.delivered_at for r in self.records)
        window = max(1, end - start)
        return total_bytes / window
