"""Calibrated analytic NoC latency model.

The cycle-level :class:`~repro.noc.simulator.NocSimulator` walks every
flit of every packet through the mesh — exact, but it sits on the
deployment's critical path for no benefit when the traffic is
contention-free (the single-ICAP fetch path serializes transfers by
construction). The standard architecture-simulation answer is an
analytic latency model cross-checked against the cycle-accurate one
(cf. Nguyen & Hoe, arXiv:1710.08270): closed-form wormhole latency

    cycles(src, dst, bytes) = (hops + 1) * pipeline + flits - 1

scaled by a calibrated contention factor. At zero load the factor is
0 and the model matches the cycle simulator *exactly*; under measured
contention :meth:`AnalyticNocModel.calibrated` fits the factor from
observed :class:`~repro.noc.simulator.TransferRecord` latencies so the
closed form stays within a stated tolerance of the replay.

:class:`NocModel` selects the timing backend of
:class:`~repro.runtime.prc.PrcDevice`: ``ANALYTIC`` (default, the fast
path) or ``CYCLE`` (routes the fetch burst through the flit-level
simulator — the cross-check the equivalence tests run).
"""

from __future__ import annotations

import enum
import math
from typing import Dict, Iterable, Tuple

from repro.errors import NocError
from repro.noc.mesh import Mesh
from repro.noc.packet import FLIT_BYTES, HEADER_FLITS, Packet

#: Relative tolerance the analytic model is held to against cycle-level
#: results on the deployment traffic (see tests/noc/test_analytic.py).
ANALYTIC_TOLERANCE = 0.02


class NocModel(enum.Enum):
    """Timing backend for NoC transfer windows."""

    ANALYTIC = "analytic"
    CYCLE = "cycle"


class AnalyticNocModel:
    """Closed-form wormhole latency with a calibrated contention factor.

    Hop distances are memoized per (src, dst) pair — the runtime asks
    for the same mem->aux window thousands of times per deployment.
    """

    def __init__(self, mesh: Mesh, contention_factor: float = 0.0) -> None:
        if contention_factor < 0:
            raise NocError(
                f"contention factor must be non-negative: {contention_factor}"
            )
        self.mesh = mesh
        self.contention_factor = contention_factor
        self._hops: Dict[Tuple[Tuple[int, int], Tuple[int, int]], int] = {}

    # ------------------------------------------------------------------
    def hops(self, src: Tuple[int, int], dst: Tuple[int, int]) -> int:
        """Manhattan hop count, validated once then memoized."""
        key = (src, dst)
        hops = self._hops.get(key)
        if hops is None:
            self.mesh.check_position(src)
            self.mesh.check_position(dst)
            hops = abs(src[0] - dst[0]) + abs(src[1] - dst[1])
            self._hops[key] = hops
        return hops

    def latency_cycles(
        self, src: Tuple[int, int], dst: Tuple[int, int], num_bytes: int
    ) -> int:
        """Modelled end-to-end latency of one ``num_bytes`` burst."""
        if num_bytes < 0:
            raise NocError("negative transfer size")
        flits = HEADER_FLITS + math.ceil(num_bytes / FLIT_BYTES)
        zero_load = (self.hops(src, dst) + 1) * self.mesh.pipeline_cycles + flits - 1
        if self.contention_factor == 0.0:
            return zero_load
        return int(round(zero_load * (1.0 + self.contention_factor)))

    def transfer_time_s(
        self, src: Tuple[int, int], dst: Tuple[int, int], num_bytes: int
    ) -> float:
        """Modelled transfer time in seconds at the mesh clock."""
        return self.latency_cycles(src, dst, num_bytes) / self.mesh.clock_hz

    # ------------------------------------------------------------------
    @classmethod
    def calibrated(cls, mesh: Mesh, records: Iterable) -> "AnalyticNocModel":
        """Fit the contention factor to measured transfer records.

        ``records`` are :class:`~repro.noc.simulator.TransferRecord`
        instances from a cycle-level replay of representative traffic;
        the factor is the latency-weighted excess of measured over
        zero-load latency (total measured / total zero-load - 1), so
        the calibrated model reproduces the replay's aggregate latency
        exactly up to rounding. An empty or stall-free record set
        calibrates to zero (the closed form is already exact there).
        """
        base = cls(mesh)
        total_zero_load = 0
        total_actual = 0
        for record in records:
            packet = record.packet
            total_zero_load += base.latency_cycles(
                packet.src, packet.dst, packet.payload_bytes
            )
            total_actual += record.delivered_at - record.injected_at
        factor = (
            max(0.0, total_actual / total_zero_load - 1.0) if total_zero_load else 0.0
        )
        return cls(mesh, contention_factor=factor)


def cycle_transfer_latency_cycles(
    mesh: Mesh,
    src: Tuple[int, int],
    dst: Tuple[int, int],
    num_bytes: int,
    plane: int = 0,
) -> int:
    """Cycle-accurate latency of one burst (the CYCLE backend).

    Replays a single packet through the flit-level simulator on an
    otherwise idle mesh — the reference the analytic model is checked
    against, and the :class:`NocModel.CYCLE` timing source of
    :class:`~repro.runtime.prc.PrcDevice`.
    """
    from repro.noc.simulator import NocSimulator

    simulator = NocSimulator(mesh)
    simulator.inject(
        Packet(packet_id=0, src=src, dst=dst, plane=plane, payload_bytes=num_bytes)
    )
    (record,) = simulator.run()
    return record.latency_cycles
