"""Five-port NoC routers with deterministic XY (dimension-order) routing."""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import List, Tuple

from repro.errors import NocError


class Port(enum.Enum):
    """Router ports: four mesh directions plus the local tile port."""

    NORTH = "north"  # row - 1
    SOUTH = "south"  # row + 1
    EAST = "east"  # col + 1
    WEST = "west"  # col - 1
    LOCAL = "local"


def xy_route(src: Tuple[int, int], dst: Tuple[int, int]) -> List[Tuple[int, int]]:
    """XY route: move along columns (X) first, then rows (Y).

    Returns the list of grid positions visited, source and destination
    included. Dimension-order routing on a mesh is deadlock-free, which
    is why ESP uses it.
    """
    route = [src]
    row, col = src
    drow, dcol = dst
    step = 1 if dcol > col else -1
    while col != dcol:
        col += step
        route.append((row, col))
    step = 1 if drow > row else -1
    while row != drow:
        row += step
        route.append((row, col))
    return route


@dataclass(frozen=True)
class Router:
    """A router at one grid position of one physical plane."""

    row: int
    col: int
    plane: int
    #: Pipeline depth in cycles (route compute + VC alloc + switch + link).
    pipeline_cycles: int = 4

    def output_port(self, dst: Tuple[int, int]) -> Port:
        """Port a packet headed to ``dst`` leaves through (XY order)."""
        drow, dcol = dst
        if (drow, dcol) == (self.row, self.col):
            return Port.LOCAL
        if dcol > self.col:
            return Port.EAST
        if dcol < self.col:
            return Port.WEST
        if drow > self.row:
            return Port.SOUTH
        return Port.NORTH

    def next_position(self, dst: Tuple[int, int]) -> Tuple[int, int]:
        """Grid position of the next hop toward ``dst``."""
        port = self.output_port(dst)
        if port is Port.LOCAL:
            raise NocError("packet already at destination")
        deltas = {
            Port.NORTH: (-1, 0),
            Port.SOUTH: (1, 0),
            Port.EAST: (0, 1),
            Port.WEST: (0, -1),
        }
        drow, dcol = deltas[port]
        return (self.row + drow, self.col + dcol)
