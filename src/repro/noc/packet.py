"""NoC packets and flit accounting."""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Tuple

from repro.errors import NocError

#: Flit payload width. ESP's NoC planes are 32/64-bit; the model uses
#: 8-byte flits (64-bit), matching the wide DMA planes.
FLIT_BYTES = 8

#: Flits consumed by the packet header.
HEADER_FLITS = 1


@dataclass(frozen=True)
class Packet:
    """One NoC packet: a routed burst of flits on a physical plane."""

    packet_id: int
    src: Tuple[int, int]  # (row, col)
    dst: Tuple[int, int]
    plane: int
    payload_bytes: int

    def __post_init__(self) -> None:
        if self.payload_bytes < 0:
            raise NocError(f"packet {self.packet_id}: negative payload")
        if self.plane < 0:
            raise NocError(f"packet {self.packet_id}: negative plane")

    @property
    def size_flits(self) -> int:
        """Total flits on the wire (header + payload)."""
        return HEADER_FLITS + math.ceil(self.payload_bytes / FLIT_BYTES)

    @property
    def is_local(self) -> bool:
        """True when source and destination tiles coincide."""
        return self.src == self.dst
