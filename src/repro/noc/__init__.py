"""Packet-switched 2D-mesh multi-plane NoC model.

ESP tiles communicate over a packet-switched 2D mesh with multiple
physical planes (separate planes for DMA, register access and
interrupts). The runtime evaluation needs transfer latencies for DMA
bursts and partial-bitstream fetches; this package provides XY routing,
an analytic latency model and a contention-aware transfer simulator.
"""

from repro.noc.analytic import (
    ANALYTIC_TOLERANCE,
    AnalyticNocModel,
    NocModel,
    cycle_transfer_latency_cycles,
)
from repro.noc.packet import Packet, FLIT_BYTES
from repro.noc.router import Port, Router, xy_route
from repro.noc.mesh import Mesh
from repro.noc.simulator import NocSimulator, TransferRecord
from repro.noc.traffic import (
    TrafficReport,
    TransferDemand,
    analyze_traffic,
    wami_traffic_report,
)

__all__ = [
    "ANALYTIC_TOLERANCE",
    "AnalyticNocModel",
    "NocModel",
    "cycle_transfer_latency_cycles",
    "Packet",
    "FLIT_BYTES",
    "Port",
    "Router",
    "xy_route",
    "Mesh",
    "NocSimulator",
    "TransferRecord",
    "TrafficReport",
    "TransferDemand",
    "analyze_traffic",
    "wami_traffic_report",
]
