"""2D-mesh construction and analytic latency/bandwidth model."""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.errors import NocError
from repro.noc.packet import FLIT_BYTES, Packet
from repro.noc.router import Router, xy_route

#: Number of physical planes in the ESP NoC (coherence x3, DMA x2, IRQ).
DEFAULT_PLANES = 6


class Mesh:
    """A rows x cols mesh of routers replicated over physical planes."""

    def __init__(
        self,
        rows: int,
        cols: int,
        planes: int = DEFAULT_PLANES,
        clock_hz: float = 78e6,
        pipeline_cycles: int = 4,
    ) -> None:
        if rows <= 0 or cols <= 0:
            raise NocError("mesh dimensions must be positive")
        if planes <= 0:
            raise NocError("mesh needs at least one plane")
        self.rows = rows
        self.cols = cols
        self.planes = planes
        self.clock_hz = clock_hz
        self.pipeline_cycles = pipeline_cycles
        self._routers: Dict[Tuple[int, int, int], Router] = {
            (r, c, p): Router(row=r, col=c, plane=p, pipeline_cycles=pipeline_cycles)
            for r in range(rows)
            for c in range(cols)
            for p in range(planes)
        }

    # ------------------------------------------------------------------
    def check_position(self, pos: Tuple[int, int]) -> None:
        """Raise unless ``pos`` is on the grid."""
        row, col = pos
        if not (0 <= row < self.rows and 0 <= col < self.cols):
            raise NocError(f"position {pos} outside {self.rows}x{self.cols} mesh")

    def router(self, row: int, col: int, plane: int = 0) -> Router:
        """Router at a position on a plane."""
        try:
            return self._routers[(row, col, plane)]
        except KeyError:
            raise NocError(f"no router at ({row}, {col}) plane {plane}") from None

    def path(self, src: Tuple[int, int], dst: Tuple[int, int]) -> List[Tuple[int, int]]:
        """XY path between two positions (both validated)."""
        self.check_position(src)
        self.check_position(dst)
        return xy_route(src, dst)

    def hops(self, src: Tuple[int, int], dst: Tuple[int, int]) -> int:
        """Number of links traversed (Manhattan distance)."""
        self.check_position(src)
        self.check_position(dst)
        return abs(src[0] - dst[0]) + abs(src[1] - dst[1])

    # ------------------------------------------------------------------
    # analytic models (no contention)
    # ------------------------------------------------------------------
    def zero_load_latency_cycles(self, packet: Packet) -> int:
        """Wormhole zero-load latency in cycles.

        Head flit pays the router pipeline at every hop (plus the
        injection/ejection stages); body flits stream behind at one
        flit per cycle.
        """
        hops = self.hops(packet.src, packet.dst)
        head = (hops + 1) * self.pipeline_cycles
        serialization = packet.size_flits - 1
        return head + serialization

    def zero_load_latency_s(self, packet: Packet) -> float:
        """Zero-load latency in seconds at the mesh clock."""
        return self.zero_load_latency_cycles(packet) / self.clock_hz

    def transfer_time_s(
        self, src: Tuple[int, int], dst: Tuple[int, int], num_bytes: int
    ) -> float:
        """Time to stream ``num_bytes`` from ``src`` to ``dst`` on one plane.

        Large transfers are dominated by the one-flit-per-cycle link
        bandwidth; the per-hop pipeline only shifts the head.
        """
        if num_bytes < 0:
            raise NocError("negative transfer size")
        packet = Packet(
            packet_id=-1, src=src, dst=dst, plane=0, payload_bytes=num_bytes
        )
        return self.zero_load_latency_cycles(packet) / self.clock_hz

    def link_bandwidth_bytes_per_s(self) -> float:
        """Peak per-plane link bandwidth."""
        return FLIT_BYTES * self.clock_hz
