"""Accelerator drivers and the registry the manager swaps them in.

ESP auto-generates a Linux device driver per accelerator; PR-ESP
modifies the library that registers/unregisters drivers so the manager
can swap them when a tile is reconfigured (Sec. V). A tile exposes at
most one active driver — the one matching the loaded accelerator.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.errors import DriverError


@dataclass(frozen=True)
class AcceleratorDriver:
    """One accelerator device driver."""

    accelerator: str
    #: Hardware execution time per invocation, seconds.
    exec_time_s: float
    #: /dev node the user API opens.
    devname: str = ""

    def __post_init__(self) -> None:
        if self.exec_time_s <= 0:
            raise DriverError(f"{self.accelerator}: execution time must be positive")
        if not self.devname:
            object.__setattr__(self, "devname", f"/dev/{self.accelerator}.0")


class DriverRegistry:
    """Per-tile active driver plus the catalog of loadable drivers."""

    def __init__(self) -> None:
        self._catalog: Dict[str, AcceleratorDriver] = {}
        self._active: Dict[str, Optional[str]] = {}
        self.swap_count = 0

    # ------------------------------------------------------------------
    def install(self, driver: AcceleratorDriver) -> None:
        """Add a driver module to the catalog (insmod)."""
        if driver.accelerator in self._catalog:
            raise DriverError(f"driver {driver.accelerator!r} already installed")
        self._catalog[driver.accelerator] = driver

    def catalog(self) -> List[str]:
        """Installed driver names."""
        return sorted(self._catalog)

    def driver_for(self, accelerator: str) -> AcceleratorDriver:
        """Catalog lookup."""
        try:
            return self._catalog[accelerator]
        except KeyError:
            raise DriverError(f"no driver installed for {accelerator!r}") from None

    # ------------------------------------------------------------------
    def attach_tile(self, tile_name: str) -> None:
        """Start tracking a reconfigurable tile (no driver bound yet)."""
        if tile_name in self._active:
            raise DriverError(f"tile {tile_name!r} already attached")
        self._active[tile_name] = None

    def active_on(self, tile_name: str) -> Optional[AcceleratorDriver]:
        """The driver currently bound to ``tile_name`` (None if empty)."""
        if tile_name not in self._active:
            raise DriverError(f"unknown tile {tile_name!r}")
        name = self._active[tile_name]
        return self._catalog[name] if name else None

    def swap(self, tile_name: str, accelerator: Optional[str]) -> None:
        """Unregister the tile's driver and register the new one.

        ``accelerator=None`` leaves the tile driverless (blanked
        region). Swapping to an uninstalled driver is an error — the
        manager must never expose a device node with no backing module.
        """
        if tile_name not in self._active:
            raise DriverError(f"unknown tile {tile_name!r}")
        if accelerator is not None and accelerator not in self._catalog:
            raise DriverError(f"no driver installed for {accelerator!r}")
        if self._active[tile_name] != accelerator:
            self.swap_count += 1
        self._active[tile_name] = accelerator
