"""Baremetal DPR support.

The paper ships "Linux and bare-metal drivers to handle the decoupling
of tiles and FPGA reconfiguration via the PRC and ICAP modules"
(Sec. V). Without an OS there is no workqueue, no threads and no
interrupt-driven completion handler: a single control loop programs the
DFXC registers, *polls* its status register, flips the decoupler, and
runs one accelerator at a time.

:class:`BaremetalDriver` reproduces that execution model on the same
device models the Linux-style manager uses, so the two stacks are
directly comparable (see ``tests/runtime/test_baremetal.py`` for the
equivalence and overhead checks).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.errors import ReconfigurationError
from repro.runtime.memory import BitstreamStore
from repro.runtime.prc import PrcDevice
from repro.sim.kernel import Simulator
from repro.soc.socket import Decoupler

#: Polling interval of the status-register loop, in seconds. The
#: baremetal driver burns this much latency per completed operation on
#: average (half on expectation, a full period worst case — we model
#: the deterministic worst case for reproducibility).
POLL_PERIOD_S = 50e-6


@dataclass(frozen=True)
class BaremetalRunRecord:
    """Telemetry of one run() call."""

    tile_name: str
    mode_name: str
    reconfig_s: float
    poll_overhead_s: float
    start_exec_s: float
    end_exec_s: float

    @property
    def exec_time_s(self) -> float:
        """Accelerator busy time."""
        return self.end_exec_s - self.start_exec_s


class BaremetalDriver:
    """Single-threaded, polling-based DPR control.

    Unlike the Linux manager there is no locking: baremetal code owns
    the whole SoC, so concurrent access cannot happen by construction —
    attempting to start a run while another is outstanding raises, as
    the real driver's busy flag would.
    """

    def __init__(
        self,
        sim: Simulator,
        prc: PrcDevice,
        store: BitstreamStore,
        exec_times: Dict[str, float],
        poll_period_s: float = POLL_PERIOD_S,
    ) -> None:
        if poll_period_s <= 0:
            raise ReconfigurationError("poll period must be positive")
        self.sim = sim
        self.prc = prc
        self.store = store
        self.exec_times = dict(exec_times)
        self.poll_period_s = poll_period_s
        self._decouplers: Dict[str, Decoupler] = {}
        self._loaded: Dict[str, Optional[str]] = {}
        self._busy = False
        self.records: List[BaremetalRunRecord] = []

    # ------------------------------------------------------------------
    def attach_tile(self, tile_name: str) -> None:
        """Register a reconfigurable tile."""
        if tile_name in self._decouplers:
            raise ReconfigurationError(f"tile {tile_name!r} already attached")
        self._decouplers[tile_name] = Decoupler(tile_name=tile_name)
        self._loaded[tile_name] = None

    def loaded_mode(self, tile_name: str) -> Optional[str]:
        """Accelerator currently configured in ``tile_name``."""
        try:
            return self._loaded[tile_name]
        except KeyError:
            raise ReconfigurationError(f"tile {tile_name!r} not attached") from None

    # ------------------------------------------------------------------
    def run(self, tile_name: str, mode_name: str):
        """Process: reconfigure if needed (polling) and run once.

        Returns a process resolving to a :class:`BaremetalRunRecord`.
        """
        if tile_name not in self._decouplers:
            raise ReconfigurationError(f"tile {tile_name!r} not attached")
        if mode_name not in self.exec_times:
            raise ReconfigurationError(f"no execution profile for {mode_name!r}")

        def body():
            if self._busy:
                raise ReconfigurationError(
                    "baremetal driver is busy (single-threaded control loop)"
                )
            self._busy = True
            try:
                reconfig_time = 0.0
                poll_overhead = 0.0
                if self._loaded[tile_name] != mode_name:
                    loaded = self.store.lookup(tile_name, mode_name)
                    decoupler = self._decouplers[tile_name]
                    decoupler.decouple()
                    start = self.sim.now
                    yield self.prc.reconfigure(
                        tile_name, mode_name, loaded.size_bytes
                    )
                    # Poll until the status register shows DONE: the
                    # loop observes completion up to one period late.
                    yield self.sim.timeout(self.poll_period_s)
                    poll_overhead += self.poll_period_s
                    reconfig_time = self.sim.now - start
                    decoupler.recouple()
                    self._loaded[tile_name] = mode_name
                start_exec = self.sim.now
                yield self.sim.timeout(self.exec_times[mode_name])
                # Completion is also detected by polling, not an IRQ.
                yield self.sim.timeout(self.poll_period_s)
                poll_overhead += self.poll_period_s
                record = BaremetalRunRecord(
                    tile_name=tile_name,
                    mode_name=mode_name,
                    reconfig_s=reconfig_time,
                    poll_overhead_s=poll_overhead,
                    start_exec_s=start_exec,
                    end_exec_s=start_exec + self.exec_times[mode_name],
                )
                self.records.append(record)
                return record
            finally:
                self._busy = False

        return self.sim.process(body())

    def run_sequence(self, schedule):
        """Process: run (tile, mode) pairs back to back.

        The baremetal execution model for a whole application: strictly
        sequential, no overlap between reconfiguration and execution.
        """

        def body():
            records = []
            for tile_name, mode_name in schedule:
                record = yield self.run(tile_name, mode_name)
                records.append(record)
            return records

        return self.sim.process(body())

    # ------------------------------------------------------------------
    def total_poll_overhead_s(self) -> float:
        """Accumulated polling latency (the price of no interrupts)."""
        return sum(r.poll_overhead_s for r in self.records)
