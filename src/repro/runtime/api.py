"""The user-space DPR API (Sec. V).

A thin, `esp_run`-flavoured veneer over the reconfiguration manager:
applications open a tile, request an accelerator, and run workloads
without seeing decouplers, bitstream addresses or the PRC. This is the
layer the paper's multi-threaded evaluation software is written against.

Tiles are opened like file descriptors and close like them too —
:class:`TileHandle` is a context manager::

    with api.open_tile("rt0") as handle:
        result = api.esp_run(handle, "fft")
        record = yield result.process

and ``esp_run`` returns a typed :class:`InvocationResult` instead of a
raw simulation process: yield its ``.process`` from DES code, then read
the accelerator name, wait/reconfig/exec times and the degraded flag
from the result itself.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.errors import ReconfigurationError
from repro.runtime.manager import InvocationRecord, ReconfigurationManager
from repro.sim.process import Process


@dataclass(frozen=True)
class TileHandle:
    """An opened reconfigurable tile (the fd the API hands out).

    Usable as a context manager: leaving the ``with`` block closes the
    handle, after which the API rejects further operations on it.
    """

    tile_name: str
    modes: tuple
    api: Optional["DprUserApi"] = field(default=None, repr=False, compare=False)

    def close(self) -> None:
        """Release the handle (idempotent)."""
        if self.api is not None:
            self.api.close_tile(self.tile_name)

    def __enter__(self) -> "TileHandle":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()


@dataclass
class InvocationResult:
    """Typed outcome of one ``esp_run`` call.

    Wraps the underlying simulation process (DES code must still
    ``yield result.process`` to wait for completion) and exposes the
    invocation's telemetry once it finished — accelerator name, the
    wait/reconfigure/execute split, and whether the transfer needed
    failed attempts (``degraded``).
    """

    process: Process
    tile_name: str
    accelerator: str

    @property
    def done(self) -> bool:
        """True once the invocation completed."""
        return self.process.processed

    @property
    def record(self) -> InvocationRecord:
        """The completed invocation's record (raises while pending)."""
        record = self.process.value
        if not isinstance(record, InvocationRecord):
            raise ReconfigurationError(
                f"invocation of {self.accelerator!r} on {self.tile_name!r} "
                "has not completed"
            )
        return record

    @property
    def wait_s(self) -> float:
        """Queueing delay before the tile was acquired."""
        return self.record.wait_s

    @property
    def reconfig_s(self) -> float:
        """Time spent reconfiguring (0 when the mode was loaded)."""
        return self.record.reconfig_s

    @property
    def exec_time_s(self) -> float:
        """Pure accelerator execution time."""
        return self.record.exec_time_s

    @property
    def degraded(self) -> bool:
        """True when the invocation rode through runtime faults
        (failed transfer attempts or hung-and-restarted executions)."""
        record = self.record
        return record.failed_attempts > 0 or record.hang_attempts > 0


class DprUserApi:
    """User-space facade over the runtime manager."""

    def __init__(self, manager: ReconfigurationManager) -> None:
        self._manager = manager
        self._handles: Dict[str, TileHandle] = {}

    # ------------------------------------------------------------------
    def open_tile(self, tile_name: str) -> TileHandle:
        """Open a reconfigurable tile for use by this application.

        The returned handle is a context manager; leaving its ``with``
        block closes it again.
        """
        state = self._manager.tile(tile_name)  # validates existence
        handle = TileHandle(
            tile_name=state.name,
            modes=tuple(self._manager.store.modes_for_tile(state.name)),
            api=self,
        )
        self._handles[tile_name] = handle
        return handle

    def close_tile(self, tile_name: str) -> None:
        """Close an open handle (idempotent; unknown names are no-ops)."""
        self._handles.pop(tile_name, None)

    def handle(self, tile_name: str) -> TileHandle:
        """The open handle for ``tile_name``."""
        try:
            return self._handles[tile_name]
        except KeyError:
            raise ReconfigurationError(f"tile {tile_name!r} is not open") from None

    def _check_open(self, handle: TileHandle) -> None:
        if self._handles.get(handle.tile_name) is None:
            raise ReconfigurationError(
                f"tile {handle.tile_name!r} is not open (handle closed?)"
            )

    # ------------------------------------------------------------------
    def esp_run(
        self,
        handle: TileHandle,
        accelerator: str,
        exec_time_s: Optional[float] = None,
    ) -> InvocationResult:
        """Invoke ``accelerator`` on the tile (reconfiguring as needed).

        Mirrors ESP's ``esp_run()``: configuration registers are
        written, the accelerator runs to its completion interrupt. The
        returned :class:`InvocationResult` wraps the simulation process
        (``yield result.process`` to wait) and exposes the typed
        telemetry once complete.
        """
        self._check_open(handle)
        if accelerator not in handle.modes:
            raise ReconfigurationError(
                f"accelerator {accelerator!r} has no bitstream for tile "
                f"{handle.tile_name!r}; available: {list(handle.modes)}"
            )
        process = self._manager.invoke(handle.tile_name, accelerator, exec_time_s)
        return InvocationResult(
            process=process,
            tile_name=handle.tile_name,
            accelerator=accelerator,
        )

    def esp_blank(self, handle: TileHandle) -> Process:
        """Erase the tile's region (power gating / fault clearing)."""
        self._check_open(handle)
        return self._manager.blank_tile(handle.tile_name)

    def esp_load(self, handle: TileHandle, accelerator: str) -> Process:
        """Pre-load an accelerator without running it (warm-up)."""
        self._check_open(handle)
        if accelerator not in handle.modes:
            raise ReconfigurationError(
                f"accelerator {accelerator!r} has no bitstream for tile "
                f"{handle.tile_name!r}"
            )
        return self._manager.preload(handle.tile_name, accelerator)

    # ------------------------------------------------------------------
    # topology and health queries (what a scheduler needs to re-plan)
    # ------------------------------------------------------------------
    def reconfigurable_tiles(self) -> List[str]:
        """All attached reconfigurable tiles, sorted (deterministic)."""
        return sorted(self._manager.tiles)

    def tile_quarantined(self, tile_name: str) -> bool:
        """True when the tile is quarantined (closed to invocations)."""
        return self._manager.tile_quarantined(tile_name)

    def has_image(self, tile_name: str, accelerator: str) -> bool:
        """True when a partial bitstream exists for (tile, accelerator)."""
        return self._manager.store.has_image(tile_name, accelerator)

    @property
    def faults_enabled(self) -> bool:
        """True when the runtime fault model can produce failures."""
        return self._manager.faults.enabled

    @property
    def recovery(self):
        """The manager's :class:`~repro.runtime.faults.RecoveryPolicy`."""
        return self._manager.recovery

    # ------------------------------------------------------------------
    def invocation_log(self) -> List[InvocationRecord]:
        """All invocations the manager completed (telemetry)."""
        return list(self._manager.invocations)
