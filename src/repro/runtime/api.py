"""The user-space DPR API (Sec. V).

A thin, `esp_run`-flavoured veneer over the reconfiguration manager:
applications open a tile, request an accelerator, and run workloads
without seeing decouplers, bitstream addresses or the PRC. This is the
layer the paper's multi-threaded evaluation software is written against.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.errors import ReconfigurationError
from repro.runtime.manager import InvocationRecord, ReconfigurationManager
from repro.sim.process import Process


@dataclass(frozen=True)
class TileHandle:
    """An opened reconfigurable tile (the fd the API hands out)."""

    tile_name: str
    modes: tuple


class DprUserApi:
    """User-space facade over the runtime manager."""

    def __init__(self, manager: ReconfigurationManager) -> None:
        self._manager = manager
        self._handles: Dict[str, TileHandle] = {}

    # ------------------------------------------------------------------
    def open_tile(self, tile_name: str) -> TileHandle:
        """Open a reconfigurable tile for use by this application."""
        state = self._manager.tile(tile_name)  # validates existence
        handle = TileHandle(
            tile_name=state.name,
            modes=tuple(self._manager.store.modes_for_tile(state.name)),
        )
        self._handles[tile_name] = handle
        return handle

    def handle(self, tile_name: str) -> TileHandle:
        """The open handle for ``tile_name``."""
        try:
            return self._handles[tile_name]
        except KeyError:
            raise ReconfigurationError(f"tile {tile_name!r} is not open") from None

    # ------------------------------------------------------------------
    def esp_run(
        self,
        handle: TileHandle,
        accelerator: str,
        exec_time_s: Optional[float] = None,
    ) -> Process:
        """Invoke ``accelerator`` on the tile (reconfiguring as needed).

        Mirrors ESP's ``esp_run()``: configuration registers are
        written, the accelerator runs to its completion interrupt; the
        returned process resolves to the :class:`InvocationRecord`.
        """
        if accelerator not in handle.modes:
            raise ReconfigurationError(
                f"accelerator {accelerator!r} has no bitstream for tile "
                f"{handle.tile_name!r}; available: {list(handle.modes)}"
            )
        return self._manager.invoke(handle.tile_name, accelerator, exec_time_s)

    def esp_blank(self, handle: TileHandle) -> Process:
        """Erase the tile's region (power gating / fault clearing)."""
        return self._manager.blank_tile(handle.tile_name)

    def esp_load(self, handle: TileHandle, accelerator: str) -> Process:
        """Pre-load an accelerator without running it (warm-up)."""
        if accelerator not in handle.modes:
            raise ReconfigurationError(
                f"accelerator {accelerator!r} has no bitstream for tile "
                f"{handle.tile_name!r}"
            )
        return self._manager.preload(handle.tile_name, accelerator)

    # ------------------------------------------------------------------
    def invocation_log(self) -> List[InvocationRecord]:
        """All invocations the manager completed (telemetry)."""
        return list(self._manager.invocations)
