"""The PR-ESP software stack (Sec. V).

A Linux-kernel-style runtime built on the discrete-event kernel:

* ``memory``  — the bitstream store (user-space mmap → kernel copy, the
  reference between bitstreams, addresses, tiles and drivers);
* ``prc``     — the DFX controller + ICAP device model with
  interrupt-driven completion;
* ``driver``  — accelerator driver registry with runtime swap;
* ``manager`` — the reconfiguration manager: workqueue scheduling of
  requests, per-tile locking, decoupler control, driver swap;
* ``api``     — the user-space API applications call;
* ``executor``— a multi-threaded application executor (one thread per
  reconfigurable tile, as in the paper's evaluation software).
"""

from repro.runtime.memory import BitstreamStore, LoadedBitstream
from repro.runtime.faults import (
    NO_RUNTIME_FAULTS,
    PERSISTENT,
    RecoveryPolicy,
    RuntimeFaultKind,
    RuntimeFaultModel,
    RuntimeFaultOptions,
)
from repro.runtime.prc import PrcDevice, ReconfigurationRecord
from repro.runtime.driver import AcceleratorDriver, DriverRegistry
from repro.runtime.manager import ReconfigurationManager, TileState
from repro.runtime.api import DprUserApi
from repro.runtime.baremetal import BaremetalDriver, BaremetalRunRecord
from repro.runtime.stats import RuntimeStats, TileStats, collect_stats
from repro.runtime.executor import (
    AppExecutor,
    ExecutionTimeline,
    TimelineEvent,
    StageTask,
)

__all__ = [
    "BitstreamStore",
    "LoadedBitstream",
    "NO_RUNTIME_FAULTS",
    "PERSISTENT",
    "RecoveryPolicy",
    "RuntimeFaultKind",
    "RuntimeFaultModel",
    "RuntimeFaultOptions",
    "PrcDevice",
    "ReconfigurationRecord",
    "AcceleratorDriver",
    "DriverRegistry",
    "ReconfigurationManager",
    "TileState",
    "DprUserApi",
    "AppExecutor",
    "ExecutionTimeline",
    "TimelineEvent",
    "StageTask",
    "BaremetalDriver",
    "BaremetalRunRecord",
    "RuntimeStats",
    "TileStats",
    "collect_stats",
]
