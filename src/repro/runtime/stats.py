"""Runtime statistics: what the manager's telemetry adds up to.

The paper's runtime manager exists to keep reconfiguration overhead
manageable; this module turns its raw records into the numbers a
deployment engineer actually reads: per-tile utilization, queueing
delays, reconfiguration shares, and ICAP pressure.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.errors import ReconfigurationError
from repro.runtime.manager import InvocationRecord, ReconfigurationManager


@dataclass(frozen=True)
class TileStats:
    """Aggregated behaviour of one reconfigurable tile."""

    tile_name: str
    invocations: int
    reconfigurations: int
    exec_time_s: float
    reconfig_time_s: float
    wait_time_s: float
    #: Failed bitstream-transfer attempts attributed to this tile.
    failed_attempts: int = 0
    #: Fallbacks to a last-known-good bitstream on this tile.
    fallbacks: int = 0
    #: Hung invocation attempts the watchdog caught on this tile.
    kernel_hangs: int = 0
    #: True when the tile ended the run quarantined.
    quarantined: bool = False

    @property
    def reconfig_share(self) -> float:
        """Fraction of the tile's busy time spent reconfiguring."""
        busy = self.exec_time_s + self.reconfig_time_s
        return self.reconfig_time_s / busy if busy > 0 else 0.0

    @property
    def mean_wait_s(self) -> float:
        """Average queueing delay per invocation."""
        return self.wait_time_s / self.invocations if self.invocations else 0.0


@dataclass(frozen=True)
class RuntimeStats:
    """Whole-SoC runtime statistics."""

    tiles: Dict[str, TileStats]
    total_invocations: int
    total_reconfigurations: int
    failed_attempts: int
    icap_busy_s: float
    span_s: float
    #: Runtime-resilience attribution (zero on healthy deployments).
    fallbacks: int = 0
    kernel_hangs: int = 0
    failovers: int = 0
    quarantined: Dict[str, str] = field(default_factory=dict)

    @property
    def icap_utilization(self) -> float:
        """Fraction of the run the single ICAP spent streaming."""
        return self.icap_busy_s / self.span_s if self.span_s > 0 else 0.0

    def busiest_tile(self) -> TileStats:
        """The tile with the most accelerator-busy time."""
        if not self.tiles:
            raise ReconfigurationError("no tiles attached")
        return max(self.tiles.values(), key=lambda t: t.exec_time_s)

    def to_dict(self) -> Dict:
        """JSON-serializable form (``repro deploy --json``)."""
        return {
            "total_invocations": self.total_invocations,
            "total_reconfigurations": self.total_reconfigurations,
            "failed_attempts": self.failed_attempts,
            "icap_busy_s": self.icap_busy_s,
            "icap_utilization": self.icap_utilization,
            "span_s": self.span_s,
            "fallbacks": self.fallbacks,
            "kernel_hangs": self.kernel_hangs,
            "failovers": self.failovers,
            "quarantined": dict(sorted(self.quarantined.items())),
            "tiles": {
                name: {
                    "invocations": tile.invocations,
                    "reconfigurations": tile.reconfigurations,
                    "failed_attempts": tile.failed_attempts,
                    "fallbacks": tile.fallbacks,
                    "kernel_hangs": tile.kernel_hangs,
                    "quarantined": tile.quarantined,
                    "exec_s": tile.exec_time_s,
                    "reconfig_s": tile.reconfig_time_s,
                    "wait_s": tile.wait_time_s,
                    "reconfig_share": tile.reconfig_share,
                }
                for name, tile in sorted(self.tiles.items())
            },
        }

    def summary_lines(self) -> List[str]:
        """Human-readable report."""
        lines = [
            f"invocations={self.total_invocations} "
            f"reconfigurations={self.total_reconfigurations} "
            f"failed_attempts={self.failed_attempts} "
            f"icap_utilization={self.icap_utilization:.1%}"
        ]
        if self.fallbacks or self.kernel_hangs or self.failovers or self.quarantined:
            resilience = (
                f"fallbacks={self.fallbacks} kernel_hangs={self.kernel_hangs} "
                f"failovers={self.failovers}"
            )
            if self.quarantined:
                resilience += (
                    " quarantined=" + ",".join(sorted(self.quarantined))
                )
            lines.append(resilience)
        for stats in sorted(self.tiles.values(), key=lambda t: t.tile_name):
            failed = (
                f" failed={stats.failed_attempts}" if stats.failed_attempts else ""
            )
            if stats.fallbacks:
                failed += f" fallbacks={stats.fallbacks}"
            if stats.kernel_hangs:
                failed += f" hangs={stats.kernel_hangs}"
            if stats.quarantined:
                failed += " QUARANTINED"
            lines.append(
                f"  {stats.tile_name:10s} inv={stats.invocations:<4d} "
                f"exec={stats.exec_time_s * 1000:7.1f}ms "
                f"reconf={stats.reconfig_time_s * 1000:7.1f}ms "
                f"({stats.reconfig_share:.0%}) "
                f"mean_wait={stats.mean_wait_s * 1000:6.2f}ms"
                f"{failed}"
            )
        return lines


def collect_stats(
    manager: ReconfigurationManager,
    span_s: Optional[float] = None,
    failovers: int = 0,
) -> RuntimeStats:
    """Aggregate a manager's telemetry into :class:`RuntimeStats`.

    ``failovers`` comes from the executor (the manager only sees the
    invocations that reached it, not the scheduler's re-planning).
    """
    by_tile: Dict[str, List[InvocationRecord]] = {
        name: [] for name in manager.tiles
    }
    for record in manager.invocations:
        by_tile.setdefault(record.tile_name, []).append(record)

    tiles = {}
    for name, records in by_tile.items():
        state = manager.tiles.get(name)
        tiles[name] = TileStats(
            tile_name=name,
            invocations=len(records),
            reconfigurations=state.reconfigurations if state else 0,
            exec_time_s=sum(r.exec_time_s for r in records),
            reconfig_time_s=sum(r.reconfig_s for r in records),
            wait_time_s=sum(max(0.0, r.wait_s) for r in records),
            failed_attempts=manager.failed_attempts_by_tile.get(name, 0),
            fallbacks=manager.fallbacks_by_tile.get(name, 0),
            kernel_hangs=manager.kernel_hangs_by_tile.get(name, 0),
            quarantined=state.quarantined if state else False,
        )

    end = span_s if span_s is not None else manager.sim.now
    return RuntimeStats(
        tiles=tiles,
        total_invocations=len(manager.invocations),
        total_reconfigurations=manager.total_reconfigurations(),
        failed_attempts=manager.failed_attempts,
        icap_busy_s=manager.prc.total_reconfiguration_time_s(),
        span_s=end,
        fallbacks=manager.fallbacks,
        kernel_hangs=manager.kernel_hangs,
        failovers=failovers,
        quarantined=dict(manager.quarantined),
    )
