"""The bitstream store.

Before the application starts, partial bitstreams — mmapped in user
space — are copied into kernel memory, and the runtime manager builds a
reference between each bitstream, its physical address, the tile it
loads into, and the driver to activate afterwards (Sec. V). This module
models that store.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.errors import ReconfigurationError
from repro.vivado.bitstream import Bitstream, BitstreamKind


@dataclass(frozen=True)
class LoadedBitstream:
    """A partial bitstream pinned in kernel memory."""

    bitstream: Bitstream
    physical_address: int
    tile_name: str
    mode_name: str

    @property
    def size_bytes(self) -> int:
        """Size of the configuration data."""
        return self.bitstream.size_bytes


class BitstreamStore:
    """Kernel-side registry of partial bitstreams.

    Addresses are allocated bump-style from a DDR base, mirroring the
    contiguous kernel buffer the real driver carves out.
    """

    #: Default DDR base for the bitstream arena.
    BASE_ADDRESS = 0x8000_0000

    def __init__(self) -> None:
        self._by_key: Dict[Tuple[str, str], LoadedBitstream] = {}
        self._next_address = self.BASE_ADDRESS

    def load(self, bitstream: Bitstream, tile_name: str) -> LoadedBitstream:
        """Copy one partial bitstream into kernel memory."""
        if bitstream.kind is not BitstreamKind.PARTIAL:
            raise ReconfigurationError(
                f"{bitstream.name}: only partial bitstreams enter the store"
            )
        if bitstream.mode is None:
            raise ReconfigurationError(f"{bitstream.name}: partial bitstream lacks a mode")
        key = (tile_name, bitstream.mode)
        if key in self._by_key:
            raise ReconfigurationError(
                f"bitstream for tile {tile_name!r} mode {bitstream.mode!r} already loaded"
            )
        loaded = LoadedBitstream(
            bitstream=bitstream,
            physical_address=self._next_address,
            tile_name=tile_name,
            mode_name=bitstream.mode,
        )
        # Keep 4 KiB page alignment between images.
        self._next_address += (bitstream.size_bytes + 0xFFF) & ~0xFFF
        self._by_key[key] = loaded
        return loaded

    def load_flow_output(self, bitstreams: List[Bitstream]) -> int:
        """Load every partial bitstream a flow produced (blanking images
        included); returns the number of images pinned."""
        count = 0
        for bitstream in bitstreams:
            if bitstream.kind is BitstreamKind.PARTIAL:
                assert bitstream.target_rp is not None
                self.load(bitstream, bitstream.target_rp)
                count += 1
        return count

    def lookup(self, tile_name: str, mode_name: str) -> LoadedBitstream:
        """The loaded image for (tile, mode)."""
        try:
            return self._by_key[(tile_name, mode_name)]
        except KeyError:
            raise ReconfigurationError(
                f"no bitstream loaded for tile {tile_name!r} mode {mode_name!r}"
            ) from None

    def has_image(self, tile_name: str, mode_name: str) -> bool:
        """True when an image is pinned for (tile, mode)."""
        return (tile_name, mode_name) in self._by_key

    def modes_for_tile(self, tile_name: str, include_blank: bool = False) -> List[str]:
        """Accelerator modes with images for ``tile_name``.

        Blanking (greybox) images are infrastructure, not invocable
        accelerators, so they are excluded unless asked for.
        """
        return sorted(
            m
            for (t, m) in self._by_key
            if t == tile_name and (include_blank or m != "blank")
        )

    def total_bytes(self) -> int:
        """Kernel memory pinned by the store."""
        return sum(l.size_bytes for l in self._by_key.values())

    def __len__(self) -> int:
        return len(self._by_key)
