"""The kernel-level runtime reconfiguration manager (Sec. V).

Behavioural contract reproduced from the paper:

* reconfiguration requests are queued and executed as soon as the PRC
  is ready (the single ICAP serializes them FIFO — the kernel
  workqueue's role);
* before a request is queued, the calling thread waits for the
  accelerator currently in the tile to complete its execution;
* while a tile reconfigures, access to its device is locked: other
  threads block until the PRC interrupt arrives *and* the new driver is
  loaded;
* the decoupler isolates the tile for the whole programming window and
  is re-enabled (with a queue reset) afterwards.

The per-tile FIFO lock plus the PRC's internal lock implement exactly
this protocol on the discrete-event kernel.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.errors import ReconfigurationError
from repro.obs import events as ev
from repro.obs.events import NULL_EVENTS
from repro.obs.logconfig import get_logger
from repro.obs.metrics import NULL_METRICS
from repro.obs.tracer import NULL_TRACER
from repro.runtime.driver import DriverRegistry
from repro.runtime.memory import BitstreamStore
from repro.runtime.prc import PrcDevice, ReconfigurationRecord
from repro.sim.kernel import Simulator
from repro.sim.process import Process
from repro.sim.resources import Lock
from repro.soc.socket import Decoupler

logger = get_logger("runtime.manager")


@dataclass
class TileState:
    """Manager-side state of one reconfigurable tile."""

    name: str
    decoupler: Decoupler
    lock: Lock
    loaded_mode: Optional[str] = None
    reconfigurations: int = 0
    #: Simulation time at which the region last became configured
    #: (None while dark). Feeds the power-gating energy account.
    configured_since: Optional[float] = None
    #: Accumulated configured time over closed windows.
    configured_s: float = 0.0

    def mark_configured(self, now: float) -> None:
        """Region transitioned dark -> configured."""
        if self.configured_since is None:
            self.configured_since = now

    def mark_dark(self, now: float) -> None:
        """Region transitioned configured -> dark (blank or failure)."""
        if self.configured_since is not None:
            self.configured_s += now - self.configured_since
            self.configured_since = None

    def configured_time(self, until: float) -> float:
        """Total configured time up to ``until``."""
        total = self.configured_s
        if self.configured_since is not None:
            total += until - self.configured_since
        return total


@dataclass(frozen=True)
class InvocationRecord:
    """Telemetry of one accelerator invocation."""

    tile_name: str
    mode_name: str
    requested_s: float
    reconfig_s: float  # time spent reconfiguring (0 when already loaded)
    start_exec_s: float
    end_exec_s: float
    #: Failed transfer attempts this invocation rode through (the
    #: user-facing ``degraded`` signal).
    failed_attempts: int = 0

    @property
    def exec_time_s(self) -> float:
        """Pure accelerator execution time."""
        return self.end_exec_s - self.start_exec_s

    @property
    def wait_s(self) -> float:
        """Queueing delay before the tile was acquired."""
        return self.start_exec_s - self.reconfig_s - self.requested_s


class ReconfigurationManager:
    """Schedules and synchronizes reconfiguration requests."""

    def __init__(
        self,
        sim: Simulator,
        prc: PrcDevice,
        store: BitstreamStore,
        registry: DriverRegistry,
        tracer=NULL_TRACER,
        metrics=NULL_METRICS,
        events=NULL_EVENTS,
    ) -> None:
        self.sim = sim
        self.prc = prc
        self.store = store
        self.registry = registry
        self.tracer = tracer
        self.metrics = metrics
        self.events = events
        self.tiles: Dict[str, TileState] = {}
        self.invocations: List[InvocationRecord] = []
        #: Failed transfer attempts seen (telemetry for fault handling).
        self.failed_attempts = 0
        #: The same failures attributed to the tile that saw them.
        self.failed_attempts_by_tile: Dict[str, int] = {}

    # ------------------------------------------------------------------
    def attach_tile(self, tile_name: str) -> TileState:
        """Register a reconfigurable tile with the manager."""
        if tile_name in self.tiles:
            raise ReconfigurationError(f"tile {tile_name!r} already attached")
        state = TileState(
            name=tile_name,
            decoupler=Decoupler(tile_name=tile_name),
            lock=Lock(self.sim),
        )
        self.tiles[tile_name] = state
        self.registry.attach_tile(tile_name)
        return state

    def tile(self, tile_name: str) -> TileState:
        """Tile state lookup."""
        try:
            return self.tiles[tile_name]
        except KeyError:
            raise ReconfigurationError(f"tile {tile_name!r} not attached") from None

    # ------------------------------------------------------------------
    def invoke(self, tile_name: str, mode_name: str, exec_time_s: Optional[float] = None) -> Process:
        """Run ``mode_name`` on ``tile_name``, reconfiguring if needed.

        Returns a process whose value is the :class:`InvocationRecord`.
        The process blocks (FIFO) while other threads hold the tile —
        including through their reconfigurations — which is the paper's
        locking discipline.
        """
        state = self.tile(tile_name)
        driver = self.registry.driver_for(mode_name)
        duration = exec_time_s if exec_time_s is not None else driver.exec_time_s

        track = f"kernel/{tile_name}"

        def body():
            requested = self.sim.now
            self.events.emit(
                ev.LOCK_REQUESTED, time=requested, source=tile_name, mode=mode_name
            )
            yield state.lock.acquire()
            acquired = self.sim.now
            self.events.emit(
                ev.LOCK_ACQUIRED,
                time=acquired,
                source=tile_name,
                mode=mode_name,
                wait_s=acquired - requested,
            )
            if acquired > requested:
                self.tracer.record(
                    "lock_wait",
                    requested,
                    acquired,
                    category="kernel.lock-wait",
                    track=track,
                    mode=mode_name,
                )
            self.metrics.histogram(
                "runtime.lock_wait_s", "queueing delay before tile acquisition"
            ).observe(acquired - requested, tile=tile_name)
            try:
                reconfig_time = 0.0
                failed_before = self.failed_attempts_by_tile.get(tile_name, 0)
                if state.loaded_mode != mode_name:
                    reconfig_time = yield from self._reconfigure_locked(state, mode_name)
                start_exec = self.sim.now
                exec_span = self.tracer.begin(
                    mode_name,
                    category="kernel.exec",
                    track=track,
                    tile=tile_name,
                    mode=mode_name,
                )
                yield self.sim.timeout(duration)
                self.tracer.end(exec_span)
                record = InvocationRecord(
                    tile_name=tile_name,
                    mode_name=mode_name,
                    requested_s=requested,
                    reconfig_s=reconfig_time,
                    start_exec_s=start_exec,
                    end_exec_s=self.sim.now,
                    failed_attempts=(
                        self.failed_attempts_by_tile.get(tile_name, 0)
                        - failed_before
                    ),
                )
                self.invocations.append(record)
                self.metrics.counter(
                    "runtime.invocations", "completed accelerator invocations"
                ).inc(tile=tile_name)
                logger.debug(
                    "%s: ran %s for %.6fs (reconfig %.6fs, wait %.6fs)",
                    tile_name,
                    mode_name,
                    record.exec_time_s,
                    record.reconfig_s,
                    record.wait_s,
                )
                return record
            finally:
                state.lock.release()

        return self.sim.process(body())

    def blank_tile(self, tile_name: str) -> Process:
        """Erase a tile's region with its blanking (greybox) bitstream.

        Used for power saving and for clearing a faulty accelerator:
        the driver is unregistered, the region is cleared, and the tile
        reports no loaded mode afterwards. Requires the flow to have
        produced a blanking image for the tile.
        """
        state = self.tile(tile_name)

        def body():
            yield state.lock.acquire()
            try:
                if state.loaded_mode is None:
                    return None  # already dark
                blank = self.store.lookup(state.name, "blank")
                start = self.sim.now
                self.events.emit(
                    ev.RECONFIG_REQUESTED,
                    time=start,
                    source=tile_name,
                    mode="blank",
                    size_bytes=blank.size_bytes,
                )
                span = self.tracer.begin(
                    "blank",
                    category="kernel.decouple",
                    track=f"kernel/{tile_name}",
                    size_bytes=blank.size_bytes,
                )
                state.decoupler.decouple()
                self.registry.swap(state.name, None)
                self.events.emit(
                    ev.DRIVER_SWAPPED, time=self.sim.now, source=tile_name, driver=None
                )
                self.events.emit(
                    ev.RECONFIG_STARTED,
                    time=self.sim.now,
                    source=tile_name,
                    mode="blank",
                    size_bytes=blank.size_bytes,
                )
                yield self.prc.reconfigure(state.name, "blank", blank.size_bytes)
                state.decoupler.recouple()
                state.loaded_mode = None
                state.mark_dark(self.sim.now)
                state.reconfigurations += 1
                self.metrics.counter(
                    "runtime.reconfigurations", "completed tile reconfigurations"
                ).inc(tile=tile_name)
                self.events.emit(
                    ev.RECONFIG_COMPLETED,
                    time=self.sim.now,
                    source=tile_name,
                    mode="blank",
                    duration_s=self.sim.now - start,
                )
                self.tracer.end(span)
                return "blank"
            finally:
                state.lock.release()

        return self.sim.process(body())

    def preload(self, tile_name: str, mode_name: str) -> Process:
        """Reconfigure a tile without running the accelerator."""
        state = self.tile(tile_name)

        def body():
            yield state.lock.acquire()
            try:
                if state.loaded_mode != mode_name:
                    yield from self._reconfigure_locked(state, mode_name)
                return state.loaded_mode
            finally:
                state.lock.release()

        return self.sim.process(body())

    # ------------------------------------------------------------------
    #: Transfer retries before a reconfiguration is declared failed.
    MAX_RETRIES = 1

    def _reconfigure_locked(self, state: TileState, mode_name: str):
        """The reconfiguration protocol; caller must hold the tile lock.

        Generator sub-routine (used via ``yield from``); returns the
        time spent. A failed transfer (CRC error from the PRC) is
        retried once; if the retry also fails the region is left dark
        (no driver, no loaded mode, decoupler re-enabled so the blank
        region cannot wedge the NoC) and the error propagates to the
        calling thread.
        """
        loaded = self.store.lookup(state.name, mode_name)
        start = self.sim.now
        track = f"kernel/{state.name}"
        self.events.emit(
            ev.RECONFIG_REQUESTED,
            time=start,
            source=state.name,
            mode=mode_name,
            size_bytes=loaded.size_bytes,
        )
        decouple_span = self.tracer.begin(
            f"reconfigure:{mode_name}",
            category="kernel.decouple",
            track=track,
            mode=mode_name,
            size_bytes=loaded.size_bytes,
        )
        # 1. software decouples the tile (disables the NoC queue inputs)
        state.decoupler.decouple()
        # 2. the old driver is unregistered while the region is dark
        self.registry.swap(state.name, None)
        self.events.emit(
            ev.DRIVER_SWAPPED, time=self.sim.now, source=state.name, driver=None
        )
        # 3. queue on the PRC; it fetches and streams the bitstream
        self.events.emit(
            ev.RECONFIG_STARTED,
            time=self.sim.now,
            source=state.name,
            mode=mode_name,
            size_bytes=loaded.size_bytes,
        )
        attempts = 0
        while True:
            try:
                record: ReconfigurationRecord = yield self.prc.reconfigure(
                    state.name, mode_name, loaded.size_bytes
                )
                break
            except ReconfigurationError:
                attempts += 1
                self._record_failed_attempt(state.name, mode_name)
                if attempts > self.MAX_RETRIES:
                    # Give up: leave the region dark but functional.
                    state.loaded_mode = None
                    state.mark_dark(self.sim.now)
                    state.decoupler.recouple()
                    self.metrics.counter(
                        "runtime.reconfig_failures",
                        "reconfigurations abandoned after retries",
                    ).inc(tile=state.name)
                    self.events.emit(
                        ev.RECONFIG_FAILED,
                        time=self.sim.now,
                        source=state.name,
                        mode=mode_name,
                        attempts=attempts,
                        abandoned=True,
                    )
                    self.tracer.end(decouple_span, failed=True)
                    logger.warning(
                        "%s: reconfiguration to %s abandoned after %d attempts",
                        state.name,
                        mode_name,
                        attempts,
                    )
                    raise
                self.metrics.counter(
                    "runtime.reconfig_retries", "transfer retries after CRC errors"
                ).inc(tile=state.name)
                self.events.emit(
                    ev.RECONFIG_FAILED,
                    time=self.sim.now,
                    source=state.name,
                    mode=mode_name,
                    attempts=attempts,
                    abandoned=False,
                )
        # 4. interrupt received: load the new driver, re-enable queues
        self.registry.swap(state.name, mode_name)
        state.decoupler.recouple()
        state.loaded_mode = mode_name
        state.mark_configured(self.sim.now)
        state.reconfigurations += 1
        self.metrics.counter(
            "runtime.reconfigurations", "completed tile reconfigurations"
        ).inc(tile=state.name)
        self.events.emit(
            ev.DRIVER_SWAPPED, time=self.sim.now, source=state.name, driver=mode_name
        )
        self.events.emit(
            ev.RECONFIG_COMPLETED,
            time=self.sim.now,
            source=state.name,
            mode=mode_name,
            duration_s=self.sim.now - start,
        )
        self.tracer.end(decouple_span)
        return self.sim.now - start

    def _record_failed_attempt(self, tile_name: str, mode_name: str) -> None:
        """Attribute one failed transfer to its tile (and the registry)."""
        self.failed_attempts += 1
        self.failed_attempts_by_tile[tile_name] = (
            self.failed_attempts_by_tile.get(tile_name, 0) + 1
        )
        self.metrics.counter(
            "runtime.failed_attempts", "failed bitstream transfer attempts"
        ).inc(tile=tile_name)
        logger.warning("%s: transfer of %s failed (CRC error)", tile_name, mode_name)

    # ------------------------------------------------------------------
    # telemetry
    # ------------------------------------------------------------------
    def total_reconfigurations(self) -> int:
        """Completed reconfigurations across all tiles."""
        return sum(t.reconfigurations for t in self.tiles.values())

    def reconfiguration_overhead_s(self) -> float:
        """Total time invocations spent reconfiguring."""
        return sum(r.reconfig_s for r in self.invocations)

    def configured_fractions(self, until: Optional[float] = None) -> Dict[str, float]:
        """Per-tile fraction of time the region held a configuration.

        The power-gating energy account scales each region's clock/
        leakage power by this fraction (1.0 without blanking).
        """
        end = until if until is not None else self.sim.now
        if end <= 0:
            return {name: 0.0 for name in self.tiles}
        return {
            name: min(1.0, state.configured_time(end) / end)
            for name, state in self.tiles.items()
        }
