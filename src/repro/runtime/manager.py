"""The kernel-level runtime reconfiguration manager (Sec. V).

Behavioural contract reproduced from the paper:

* reconfiguration requests are queued and executed as soon as the PRC
  is ready (the single ICAP serializes them FIFO — the kernel
  workqueue's role);
* before a request is queued, the calling thread waits for the
  accelerator currently in the tile to complete its execution;
* while a tile reconfigures, access to its device is locked: other
  threads block until the PRC interrupt arrives *and* the new driver is
  loaded;
* the decoupler isolates the tile for the whole programming window and
  is re-enabled (with a queue reset) afterwards.

The per-tile FIFO lock plus the PRC's internal lock implement exactly
this protocol on the discrete-event kernel.

On top of the protocol sits the watchdog/recovery layer (the runtime
counterpart of the CAD-side fault tolerance): failed transfers are
retried with seeded exponential backoff charged on the simulated clock,
transfers that overrun the reconfiguration deadline are aborted (DFXC
reset) and counted as stuck, abandoned reconfigurations fall back to
the tile's last-known-good bitstream, hung kernels are restarted, and a
tile that keeps failing is quarantined — taken dark, blanked and closed
to further invocations so schedulers can re-plan around it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.errors import (
    KernelHangError,
    ReconfigurationError,
    StuckTransferError,
    TileQuarantinedError,
)
from repro.obs import events as ev
from repro.obs.events import NULL_EVENTS
from repro.obs.logconfig import get_logger
from repro.obs.metrics import NULL_METRICS
from repro.obs.profiler import NULL_PROFILER
from repro.obs.tracer import NULL_TRACER
from repro.runtime.driver import DriverRegistry
from repro.runtime.faults import DEFAULT_RECOVERY, RecoveryPolicy, RuntimeFaultModel
from repro.runtime.memory import BitstreamStore
from repro.runtime.prc import PrcDevice, ReconfigurationRecord
from repro.sim.kernel import Simulator
from repro.sim.process import Process
from repro.sim.resources import Lock
from repro.soc.socket import Decoupler

logger = get_logger("runtime.manager")


@dataclass
class TileState:
    """Manager-side state of one reconfigurable tile."""

    name: str
    decoupler: Decoupler
    lock: Lock
    loaded_mode: Optional[str] = None
    reconfigurations: int = 0
    #: Simulation time at which the region last became configured
    #: (None while dark). Feeds the power-gating energy account.
    configured_since: Optional[float] = None
    #: Accumulated configured time over closed windows.
    configured_s: float = 0.0
    #: The last mode that completed a reconfiguration on this tile —
    #: the fallback target when a newer bitstream is abandoned.
    last_good_mode: Optional[str] = None
    #: Abandoned operations (transfers and hung invocations) so far;
    #: reaching the recovery policy's threshold quarantines the tile.
    abandoned_ops: int = 0
    #: True once the tile is quarantined: dark, blanked and closed.
    quarantined: bool = False

    def mark_configured(self, now: float) -> None:
        """Region transitioned dark -> configured."""
        if self.configured_since is None:
            self.configured_since = now

    def mark_dark(self, now: float) -> None:
        """Region transitioned configured -> dark (blank or failure)."""
        if self.configured_since is not None:
            self.configured_s += now - self.configured_since
            self.configured_since = None

    def configured_time(self, until: float) -> float:
        """Total configured time up to ``until``."""
        total = self.configured_s
        if self.configured_since is not None:
            total += until - self.configured_since
        return total


@dataclass(frozen=True)
class InvocationRecord:
    """Telemetry of one accelerator invocation."""

    tile_name: str
    mode_name: str
    requested_s: float
    reconfig_s: float  # time spent reconfiguring (0 when already loaded)
    start_exec_s: float
    end_exec_s: float
    #: Failed transfer attempts this invocation rode through (the
    #: user-facing ``degraded`` signal).
    failed_attempts: int = 0
    #: Hung execution attempts the watchdog restarted before success.
    hang_attempts: int = 0

    @property
    def exec_time_s(self) -> float:
        """Accelerator execution time (including hung attempts)."""
        return self.end_exec_s - self.start_exec_s

    @property
    def wait_s(self) -> float:
        """Queueing delay before the tile was acquired."""
        return self.start_exec_s - self.reconfig_s - self.requested_s


class ReconfigurationManager:
    """Schedules and synchronizes reconfiguration requests."""

    def __init__(
        self,
        sim: Simulator,
        prc: PrcDevice,
        store: BitstreamStore,
        registry: DriverRegistry,
        tracer=NULL_TRACER,
        metrics=NULL_METRICS,
        events=NULL_EVENTS,
        profiler=NULL_PROFILER,
        recovery: Optional[RecoveryPolicy] = None,
    ) -> None:
        self.sim = sim
        self.prc = prc
        self.store = store
        self.registry = registry
        self.tracer = tracer
        self.metrics = metrics
        self.events = events
        #: Call-path profiler. The manager's protocol runs inside DES
        #: callbacks (whose host time lands under the kernel dispatch
        #: frames), so it contributes *semantic* root-anchored leaves —
        #: the ``runtime.*`` view of where simulated time went — rather
        #: than opening frames across generator yields.
        self.profiler = profiler
        self.recovery = recovery if recovery is not None else DEFAULT_RECOVERY
        self.tiles: Dict[str, TileState] = {}
        self.invocations: List[InvocationRecord] = []
        #: Failed transfer attempts seen (telemetry for fault handling).
        self.failed_attempts = 0
        #: The same failures attributed to the tile that saw them.
        self.failed_attempts_by_tile: Dict[str, int] = {}
        #: Completed fallbacks to a last-known-good bitstream.
        self.fallbacks = 0
        self.fallbacks_by_tile: Dict[str, int] = {}
        #: Hung kernel attempts the watchdog caught.
        self.kernel_hangs = 0
        self.kernel_hangs_by_tile: Dict[str, int] = {}
        #: Quarantined tiles mapped to the fault kind that tipped them.
        self.quarantined: Dict[str, str] = {}

    @property
    def faults(self) -> RuntimeFaultModel:
        """The runtime fault model, shared with the PRC.

        Read dynamically from the device so anything that swaps a
        model onto the PRC (a ``prc_setup`` hook, a test) and the
        manager always see the same accounting.
        """
        return self.prc.faults

    # ------------------------------------------------------------------
    def attach_tile(self, tile_name: str) -> TileState:
        """Register a reconfigurable tile with the manager."""
        if tile_name in self.tiles:
            raise ReconfigurationError(f"tile {tile_name!r} already attached")
        state = TileState(
            name=tile_name,
            decoupler=Decoupler(tile_name=tile_name),
            lock=Lock(self.sim),
        )
        self.tiles[tile_name] = state
        self.registry.attach_tile(tile_name)
        return state

    def tile(self, tile_name: str) -> TileState:
        """Tile state lookup."""
        try:
            return self.tiles[tile_name]
        except KeyError:
            raise ReconfigurationError(f"tile {tile_name!r} not attached") from None

    def tile_quarantined(self, tile_name: str) -> bool:
        """True when the tile has been quarantined (closed to work)."""
        return self.tile(tile_name).quarantined

    def _check_quarantine(self, state: TileState) -> None:
        if state.quarantined:
            raise TileQuarantinedError(
                f"tile {state.name!r} is quarantined "
                f"({self.quarantined.get(state.name, 'persistent failures')})"
            )

    # ------------------------------------------------------------------
    def invoke(self, tile_name: str, mode_name: str, exec_time_s: Optional[float] = None) -> Process:
        """Run ``mode_name`` on ``tile_name``, reconfiguring if needed.

        Returns a process whose value is the :class:`InvocationRecord`.
        The process blocks (FIFO) while other threads hold the tile —
        including through their reconfigurations — which is the paper's
        locking discipline. Raises :class:`TileQuarantinedError` when
        the tile has been quarantined (checked again after the lock is
        acquired, since quarantine can happen while queued).
        """
        state = self.tile(tile_name)
        driver = self.registry.driver_for(mode_name)
        duration = exec_time_s if exec_time_s is not None else driver.exec_time_s

        track = f"kernel/{tile_name}"

        def body():
            self._check_quarantine(state)
            requested = self.sim.now
            self.events.emit(
                ev.LOCK_REQUESTED, time=requested, source=tile_name, mode=mode_name
            )
            yield state.lock.acquire()
            acquired = self.sim.now
            self.events.emit(
                ev.LOCK_ACQUIRED,
                time=acquired,
                source=tile_name,
                mode=mode_name,
                wait_s=acquired - requested,
            )
            if acquired > requested:
                self.tracer.record(
                    "lock_wait",
                    requested,
                    acquired,
                    category="kernel.lock-wait",
                    track=track,
                    mode=mode_name,
                )
            self.metrics.histogram(
                "runtime.lock_wait_s", "queueing delay before tile acquisition"
            ).observe(acquired - requested, tile=tile_name)
            self.profiler.record_leaf(
                ("runtime", "lock_wait"),
                sim_s=acquired - requested,
                anchor="root",
            )
            try:
                self._check_quarantine(state)
                reconfig_time = 0.0
                failed_before = self.failed_attempts_by_tile.get(tile_name, 0)
                if state.loaded_mode != mode_name:
                    reconfig_time = yield from self._reconfigure_locked(state, mode_name)
                start_exec = self.sim.now
                hang_attempts = yield from self._execute_locked(
                    state, mode_name, duration, track
                )
                record = InvocationRecord(
                    tile_name=tile_name,
                    mode_name=mode_name,
                    requested_s=requested,
                    reconfig_s=reconfig_time,
                    start_exec_s=start_exec,
                    end_exec_s=self.sim.now,
                    failed_attempts=(
                        self.failed_attempts_by_tile.get(tile_name, 0)
                        - failed_before
                    ),
                    hang_attempts=hang_attempts,
                )
                self.invocations.append(record)
                self.metrics.counter(
                    "runtime.invocations", "completed accelerator invocations"
                ).inc(tile=tile_name)
                logger.debug(
                    "%s: ran %s for %.6fs (reconfig %.6fs, wait %.6fs)",
                    tile_name,
                    mode_name,
                    record.exec_time_s,
                    record.reconfig_s,
                    record.wait_s,
                )
                return record
            finally:
                state.lock.release()

        return self.sim.process(body())

    def blank_tile(self, tile_name: str) -> Process:
        """Erase a tile's region with its blanking (greybox) bitstream.

        Used for power saving and for clearing a faulty accelerator:
        the driver is unregistered, the region is cleared, and the tile
        reports no loaded mode afterwards. Requires the flow to have
        produced a blanking image for the tile. Serializes on the
        per-tile lock, so blanking can never interleave with an
        in-flight reconfiguration or invocation on the same tile.
        """
        state = self.tile(tile_name)

        def body():
            yield state.lock.acquire()
            try:
                result = yield from self._blank_locked(state)
                return result
            finally:
                state.lock.release()

        return self.sim.process(body())

    def _blank_locked(self, state: TileState):
        """Blanking protocol; caller must hold the tile lock."""
        if state.loaded_mode is None:
            return None  # already dark
        blank = self.store.lookup(state.name, "blank")
        start = self.sim.now
        self.events.emit(
            ev.RECONFIG_REQUESTED,
            time=start,
            source=state.name,
            mode="blank",
            size_bytes=blank.size_bytes,
        )
        span = self.tracer.begin(
            "blank",
            category="kernel.decouple",
            track=f"kernel/{state.name}",
            size_bytes=blank.size_bytes,
        )
        state.decoupler.decouple()
        self.registry.swap(state.name, None)
        self.events.emit(
            ev.DRIVER_SWAPPED, time=self.sim.now, source=state.name, driver=None
        )
        self.events.emit(
            ev.RECONFIG_STARTED,
            time=self.sim.now,
            source=state.name,
            mode="blank",
            size_bytes=blank.size_bytes,
        )
        yield self.prc.reconfigure(state.name, "blank", blank.size_bytes)
        state.decoupler.recouple()
        state.loaded_mode = None
        state.mark_dark(self.sim.now)
        state.reconfigurations += 1
        self.metrics.counter(
            "runtime.reconfigurations", "completed tile reconfigurations"
        ).inc(tile=state.name)
        self.metrics.histogram(
            "runtime.reconfig_seconds", "end-to-end reconfiguration latency"
        ).observe(self.sim.now - start, tile=state.name)
        self.events.emit(
            ev.RECONFIG_COMPLETED,
            time=self.sim.now,
            source=state.name,
            mode="blank",
            duration_s=self.sim.now - start,
        )
        self.tracer.end(span)
        return "blank"

    def preload(self, tile_name: str, mode_name: str) -> Process:
        """Reconfigure a tile without running the accelerator."""
        state = self.tile(tile_name)

        def body():
            self._check_quarantine(state)
            yield state.lock.acquire()
            try:
                self._check_quarantine(state)
                if state.loaded_mode != mode_name:
                    yield from self._reconfigure_locked(state, mode_name)
                return state.loaded_mode
            finally:
                state.lock.release()

        return self.sim.process(body())

    # ------------------------------------------------------------------
    #: Transfer retries before a reconfiguration is declared failed
    #: (kept for compatibility; the live value is
    #: ``recovery.max_attempts - 1``).
    MAX_RETRIES = 1

    def _transfer_attempt(self, state: TileState, mode_name: str, size_bytes: int):
        """One watched transfer attempt; caller must hold the tile lock.

        Without an enabled fault model this is a plain blocking
        transfer (zero watchdog overhead on healthy deployments). With
        one, the recovery policy's reconfiguration deadline races the
        transfer: a transfer still wedged past the deadline is aborted
        (DFXC reset, freeing the ICAP) and raised as
        :class:`StuckTransferError`. A transfer merely *queued* behind
        the ICAP past the deadline is not stuck — the watchdog extends
        and keeps watching.
        """
        transfer = self.prc.reconfigure(state.name, mode_name, size_bytes)
        if not self.faults.enabled:
            record: ReconfigurationRecord = yield transfer
            return record
        deadline_s = self.recovery.reconfig_deadline_s
        while True:
            deadline = self.sim.timeout(deadline_s)
            try:
                # A failed transfer (CRC) fails the AnyOf, re-raised here.
                yield self.sim.any_of([transfer, deadline])
            finally:
                deadline.cancel()  # a lost deadline must not stall the clock
            if transfer.ok:
                return transfer.value
            if self.prc.abort_transfer(state.name, mode_name):
                raise StuckTransferError(
                    f"{state.name}/{mode_name}: transfer exceeded the "
                    f"{deadline_s:.3f}s reconfiguration deadline"
                )

    def _reconfigure_locked(self, state: TileState, mode_name: str):
        """The reconfiguration protocol; caller must hold the tile lock.

        Generator sub-routine (used via ``yield from``); returns the
        time spent. A failed transfer (CRC error or watchdog abort) is
        retried with seeded exponential backoff up to the recovery
        policy's attempt budget; if all attempts fail the region is
        left dark (no driver, no loaded mode, decoupler re-enabled so
        the blank region cannot wedge the NoC), recovery — fallback to
        the last-known-good bitstream, or quarantine — runs, and the
        error propagates to the calling thread.
        """
        loaded = self.store.lookup(state.name, mode_name)
        start = self.sim.now
        track = f"kernel/{state.name}"
        self.events.emit(
            ev.RECONFIG_REQUESTED,
            time=start,
            source=state.name,
            mode=mode_name,
            size_bytes=loaded.size_bytes,
        )
        decouple_span = self.tracer.begin(
            f"reconfigure:{mode_name}",
            category="kernel.decouple",
            track=track,
            mode=mode_name,
            size_bytes=loaded.size_bytes,
        )
        # 1. software decouples the tile (disables the NoC queue inputs)
        state.decoupler.decouple()
        # 2. the old driver is unregistered while the region is dark
        self.registry.swap(state.name, None)
        self.events.emit(
            ev.DRIVER_SWAPPED, time=self.sim.now, source=state.name, driver=None
        )
        # 3. queue on the PRC; it fetches and streams the bitstream
        self.events.emit(
            ev.RECONFIG_STARTED,
            time=self.sim.now,
            source=state.name,
            mode=mode_name,
            size_bytes=loaded.size_bytes,
        )
        attempts = 0
        while True:
            try:
                record: ReconfigurationRecord = yield from self._transfer_attempt(
                    state, mode_name, loaded.size_bytes
                )
                break
            except ReconfigurationError as exc:
                attempts += 1
                reason = getattr(exc, "fault_kind", "crc")
                self._record_failed_attempt(state.name, mode_name, reason=reason)
                if attempts >= self.recovery.max_attempts:
                    # Give up: leave the region dark but functional.
                    state.loaded_mode = None
                    state.mark_dark(self.sim.now)
                    state.decoupler.recouple()
                    self.metrics.counter(
                        "runtime.reconfig_failures",
                        "reconfigurations abandoned after retries",
                    ).inc(tile=state.name)
                    self.events.emit(
                        ev.RECONFIG_FAILED,
                        time=self.sim.now,
                        source=state.name,
                        mode=mode_name,
                        attempts=attempts,
                        abandoned=True,
                        reason=reason,
                    )
                    self.tracer.end(decouple_span, failed=True)
                    self.profiler.record_leaf(
                        ("runtime", "recovery", "abandon"),
                        sim_s=self.sim.now - start,
                        anchor="root",
                    )
                    logger.warning(
                        "%s: reconfiguration to %s abandoned after %d attempts",
                        state.name,
                        mode_name,
                        attempts,
                    )
                    yield from self._recover_abandoned_locked(state, mode_name, reason)
                    raise
                self.metrics.counter(
                    "runtime.reconfig_retries", "transfer retries after CRC errors"
                ).inc(tile=state.name)
                self.events.emit(
                    ev.RECONFIG_FAILED,
                    time=self.sim.now,
                    source=state.name,
                    mode=mode_name,
                    attempts=attempts,
                    abandoned=False,
                    reason=reason,
                )
                backoff = self.recovery.backoff_before(
                    attempts + 1, self.faults.seed, state.name, mode_name
                )
                self.profiler.record_leaf(
                    ("runtime", "recovery", "retry"), sim_s=backoff, anchor="root"
                )
                if backoff > 0.0:
                    yield self.sim.timeout(backoff)
        # 4. interrupt received: load the new driver, re-enable queues
        self.registry.swap(state.name, mode_name)
        state.decoupler.recouple()
        state.loaded_mode = mode_name
        state.mark_configured(self.sim.now)
        state.last_good_mode = mode_name
        state.reconfigurations += 1
        self.metrics.counter(
            "runtime.reconfigurations", "completed tile reconfigurations"
        ).inc(tile=state.name)
        self.metrics.histogram(
            "runtime.reconfig_seconds", "end-to-end reconfiguration latency"
        ).observe(self.sim.now - start, tile=state.name)
        self.events.emit(
            ev.DRIVER_SWAPPED, time=self.sim.now, source=state.name, driver=mode_name
        )
        self.events.emit(
            ev.RECONFIG_COMPLETED,
            time=self.sim.now,
            source=state.name,
            mode=mode_name,
            duration_s=self.sim.now - start,
        )
        self.tracer.end(decouple_span)
        self.profiler.record_leaf(
            ("runtime", "reconfigure"), sim_s=self.sim.now - start, anchor="root"
        )
        return self.sim.now - start

    def _execute_locked(
        self, state: TileState, mode_name: str, duration: float, track: str
    ):
        """One accelerator execution under the hang watchdog.

        Generator sub-routine; returns the number of hung attempts the
        watchdog restarted. A hung attempt burns ``duration *
        exec_deadline_factor`` of simulated time (the watchdog only
        fires at its deadline) before the restart; exhausting the hang
        budget resets the tile and raises :class:`KernelHangError`.
        """
        hang_attempts = 0
        while True:
            hung = self.faults.enabled and self.faults.invoke_fault(
                state.name, mode_name
            )
            exec_span = self.tracer.begin(
                mode_name,
                category="kernel.exec",
                track=track,
                tile=state.name,
                mode=mode_name,
            )
            if not hung:
                yield self.sim.timeout(duration)
                self.tracer.end(exec_span)
                self.profiler.record_leaf(
                    ("runtime", "exec"), sim_s=duration, anchor="root"
                )
                return hang_attempts
            # No completion interrupt: wait out the watchdog deadline.
            yield self.sim.timeout(duration * self.recovery.exec_deadline_factor)
            hang_attempts += 1
            self.kernel_hangs += 1
            self.kernel_hangs_by_tile[state.name] = (
                self.kernel_hangs_by_tile.get(state.name, 0) + 1
            )
            self.metrics.counter(
                "runtime.kernel_hangs", "hung invocations caught by the watchdog"
            ).inc(tile=state.name)
            self.tracer.end(exec_span, failed=True)
            self.profiler.record_leaf(
                ("runtime", "recovery", "kernel_hang"),
                sim_s=duration * self.recovery.exec_deadline_factor,
                anchor="root",
            )
            self.events.emit(
                ev.KERNEL_HUNG,
                time=self.sim.now,
                source=state.name,
                mode=mode_name,
                attempts=hang_attempts,
            )
            logger.warning(
                "%s: %s hung (attempt %d); watchdog fired after %.6fs",
                state.name,
                mode_name,
                hang_attempts,
                duration * self.recovery.exec_deadline_factor,
            )
            if hang_attempts >= self.recovery.hang_max_attempts:
                yield from self._abandon_hung_locked(state, mode_name)
                raise KernelHangError(
                    f"{state.name}/{mode_name}: kernel hung "
                    f"{hang_attempts} times; invocation abandoned"
                )
            backoff = self.recovery.backoff_before(
                hang_attempts + 1, self.faults.seed, state.name, f"{mode_name}#hang"
            )
            if backoff > 0.0:
                yield self.sim.timeout(backoff)

    def _abandon_hung_locked(self, state: TileState, mode_name: str):
        """Reset a tile whose kernel would not come back; lock held."""
        self.registry.swap(state.name, None)
        self.events.emit(
            ev.DRIVER_SWAPPED, time=self.sim.now, source=state.name, driver=None
        )
        state.loaded_mode = None
        state.mark_dark(self.sim.now)
        self.metrics.counter(
            "runtime.hang_abandons", "invocations abandoned after repeated hangs"
        ).inc(tile=state.name)
        yield from self._recover_abandoned_locked(state, mode_name, reason="hang")

    # ------------------------------------------------------------------
    # recovery: fallback and quarantine (tile lock held throughout)
    # ------------------------------------------------------------------
    def _recover_abandoned_locked(
        self, state: TileState, mode_name: str, reason: str
    ):
        """Recovery after an abandoned operation; caller holds the lock.

        Charges the abandonment against the tile's quarantine budget,
        then either quarantines the tile or — when a *different*
        last-known-good bitstream exists — falls back to it so the tile
        keeps serving its old mode instead of going dark.
        """
        state.abandoned_ops += 1
        if state.abandoned_ops >= self.recovery.quarantine_after:
            yield from self._quarantine_locked(state, reason)
            return
        if (
            self.recovery.fallback_to_last_good
            and state.last_good_mode is not None
            and state.last_good_mode != mode_name
            and self.store.has_image(state.name, state.last_good_mode)
        ):
            recovered = yield from self._fallback_locked(state, mode_name)
            if not recovered:
                state.abandoned_ops += 1
                if state.abandoned_ops >= self.recovery.quarantine_after:
                    yield from self._quarantine_locked(state, reason)

    def _fallback_locked(self, state: TileState, failed_mode: str):
        """Reload the last-known-good bitstream; caller holds the lock.

        Single watched attempt (a failing fallback should not burn the
        full retry budget again); returns True when the tile came back.
        """
        good = state.last_good_mode
        image = self.store.lookup(state.name, good)
        start = self.sim.now
        span = self.tracer.begin(
            f"fallback:{good}",
            category="kernel.decouple",
            track=f"kernel/{state.name}",
            mode=good,
            size_bytes=image.size_bytes,
        )
        state.decoupler.decouple()
        try:
            yield from self._transfer_attempt(state, good, image.size_bytes)
        except ReconfigurationError as exc:
            self._record_failed_attempt(
                state.name, good, reason=getattr(exc, "fault_kind", "crc")
            )
            state.decoupler.recouple()
            self.tracer.end(span, failed=True)
            logger.warning(
                "%s: fallback to last-known-good %s failed", state.name, good
            )
            return False
        self.registry.swap(state.name, good)
        state.decoupler.recouple()
        state.loaded_mode = good
        state.mark_configured(self.sim.now)
        state.reconfigurations += 1
        self.fallbacks += 1
        self.fallbacks_by_tile[state.name] = (
            self.fallbacks_by_tile.get(state.name, 0) + 1
        )
        self.metrics.counter(
            "runtime.reconfigurations", "completed tile reconfigurations"
        ).inc(tile=state.name)
        self.metrics.histogram(
            "runtime.reconfig_seconds", "end-to-end reconfiguration latency"
        ).observe(self.sim.now - start, tile=state.name)
        self.metrics.counter(
            "runtime.fallbacks", "fallbacks to a last-known-good bitstream"
        ).inc(tile=state.name)
        self.events.emit(
            ev.DRIVER_SWAPPED, time=self.sim.now, source=state.name, driver=good
        )
        self.events.emit(
            ev.RECONFIG_FALLBACK,
            time=self.sim.now,
            source=state.name,
            mode=good,
            failed_mode=failed_mode,
            duration_s=self.sim.now - start,
        )
        self.tracer.end(span)
        self.profiler.record_leaf(
            ("runtime", "recovery", "fallback"),
            sim_s=self.sim.now - start,
            anchor="root",
        )
        logger.warning(
            "%s: fell back to last-known-good %s after %s failed",
            state.name,
            good,
            failed_mode,
        )
        return True

    def _quarantine_locked(self, state: TileState, reason: str):
        """Quarantine a persistently failing tile; caller holds the lock.

        The tile is closed to further work, its driver is already
        unloaded (the abandon path did that), and its region is blanked
        when a blanking image exists so the dead accelerator cannot
        drive the NoC.
        """
        if state.quarantined:
            return
        state.quarantined = True
        self.quarantined[state.name] = reason
        blanked = False
        if self.store.has_image(state.name, "blank"):
            blank = self.store.lookup(state.name, "blank")
            state.decoupler.decouple()
            try:
                yield from self._transfer_attempt(state, "blank", blank.size_bytes)
                blanked = True
            except ReconfigurationError:
                logger.warning(
                    "%s: blanking during quarantine failed; region left as-is",
                    state.name,
                )
            finally:
                state.decoupler.recouple()
        self.metrics.counter(
            "runtime.quarantines", "tiles quarantined after persistent failures"
        ).inc(tile=state.name)
        self.profiler.record_leaf(
            ("runtime", "recovery", "quarantine"), anchor="root"
        )
        self.events.emit(
            ev.TILE_QUARANTINED,
            time=self.sim.now,
            source=state.name,
            reason=reason,
            blanked=blanked,
            abandoned_ops=state.abandoned_ops,
        )
        logger.error(
            "%s: quarantined after %d abandoned operations (%s); blanked=%s",
            state.name,
            state.abandoned_ops,
            reason,
            blanked,
        )

    def _record_failed_attempt(
        self, tile_name: str, mode_name: str, reason: str = "crc"
    ) -> None:
        """Attribute one failed transfer to its tile (and the registry)."""
        self.failed_attempts += 1
        self.failed_attempts_by_tile[tile_name] = (
            self.failed_attempts_by_tile.get(tile_name, 0) + 1
        )
        self.metrics.counter(
            "runtime.failed_attempts", "failed bitstream transfer attempts"
        ).inc(tile=tile_name)
        logger.warning(
            "%s: transfer of %s failed (%s)", tile_name, mode_name, reason
        )

    # ------------------------------------------------------------------
    # telemetry
    # ------------------------------------------------------------------
    def total_reconfigurations(self) -> int:
        """Completed reconfigurations across all tiles."""
        return sum(t.reconfigurations for t in self.tiles.values())

    def reconfiguration_overhead_s(self) -> float:
        """Total time invocations spent reconfiguring."""
        return sum(r.reconfig_s for r in self.invocations)

    def configured_fractions(self, until: Optional[float] = None) -> Dict[str, float]:
        """Per-tile fraction of time the region held a configuration.

        The power-gating energy account scales each region's clock/
        leakage power by this fraction (1.0 without blanking).
        """
        end = until if until is not None else self.sim.now
        if end <= 0:
            return {name: 0.0 for name in self.tiles}
        return {
            name: min(1.0, state.configured_time(end) / end)
            for name, state in self.tiles.items()
        }
