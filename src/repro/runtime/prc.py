"""The reconfiguration controller: DFXC + ICAP device model.

The auxiliary tile hosts Xilinx's DFX controller and the ICAP primitive
(Sec. III). At runtime the DFXC fetches a partial bitstream from DDR
over its AXI master (translated to NoC packets by the tile's adapter)
and streams it into the ICAP; completion raises an interrupt.

Latency model: the DDR fetch, the NoC transfer and the ICAP write are
pipelined, so the reconfiguration time is bounded by the slowest of the
three channels plus a fixed controller setup/trigger overhead. The
sustained fetch rate of the DFXC through the NoC adapter is the
bottleneck in practice (see :data:`FETCH_BYTES_PER_CYCLE`), which is
why the flow generates compressed partial bitstreams.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.errors import ReconfigurationError, StuckTransferError
from repro.noc.analytic import (
    AnalyticNocModel,
    NocModel,
    cycle_transfer_latency_cycles,
)
from repro.noc.mesh import Mesh
from repro.noc.packet import FLIT_BYTES, HEADER_FLITS
from repro.obs.logconfig import get_logger
from repro.obs.metrics import NULL_METRICS
from repro.obs.profiler import NULL_PROFILER
from repro.obs.tracer import NULL_TRACER
from repro.runtime.faults import (
    NO_RUNTIME_FAULTS,
    RuntimeFaultKind,
    RuntimeFaultModel,
)
from repro.sim.kernel import Simulator
from repro.sim.resources import Lock

logger = get_logger("runtime.prc")

#: How far past the nominal window a wedged DFXC holds the ICAP before
#: giving up on its own. The manager's watchdog deadline fires long
#: before this — the stall exists so an unwatched stuck transfer still
#: terminates instead of deadlocking the simulation.
STUCK_STALL_FACTOR = 1000.0

#: ICAP word width in bytes (ICAPE2/ICAPE3 are 32-bit).
ICAP_BYTES_PER_CYCLE = 4

#: Effective DFXC fetch rate in bytes per cycle. The controller issues
#: bounded-outstanding AXI bursts that cross the NoC adapter and the
#: DDR controller, so the sustained rate sits below both the ICAP's 4
#: B/cycle and the NoC link's 8 B/cycle — which is exactly why the
#: paper generates compressed partial bitstreams "to reduce the memory
#: access latency during reconfiguration". 1.2 B/cycle at 78 MHz is
#: ~94 MB/s; an uncompressed multi-MB partial would cost tens of ms
#: per swap, a compressed one ~3 ms.
FETCH_BYTES_PER_CYCLE = 1.2

#: DFXC setup + trigger + decouple-handshake overhead, in cycles.
PRC_OVERHEAD_CYCLES = 2500


@dataclass(frozen=True)
class ReconfigurationRecord:
    """Telemetry for one completed reconfiguration."""

    tile_name: str
    mode_name: str
    size_bytes: int
    start_s: float
    end_s: float

    @property
    def duration_s(self) -> float:
        """Wall time of the reconfiguration."""
        return self.end_s - self.start_s


class PrcDevice:
    """The single DFXC/ICAP instance of the SoC.

    There is one ICAP on the device, so concurrent requests serialize —
    exactly why the paper's manager queues them in a workqueue.
    """

    def __init__(
        self,
        sim: Simulator,
        mesh: Mesh,
        mem_position: Tuple[int, int],
        aux_position: Tuple[int, int],
        clock_hz: float = 78e6,
        fetch_bytes_per_cycle: float = FETCH_BYTES_PER_CYCLE,
        tracer=NULL_TRACER,
        metrics=NULL_METRICS,
        profiler=NULL_PROFILER,
        faults: RuntimeFaultModel = NO_RUNTIME_FAULTS,
        noc_model: NocModel = NocModel.ANALYTIC,
    ) -> None:
        if clock_hz <= 0:
            raise ReconfigurationError("PRC clock must be positive")
        if fetch_bytes_per_cycle <= 0:
            raise ReconfigurationError("fetch rate must be positive")
        self.sim = sim
        self.mesh = mesh
        self.mem_position = mem_position
        self.aux_position = aux_position
        self.clock_hz = clock_hz
        self.fetch_bytes_per_cycle = fetch_bytes_per_cycle
        self.tracer = tracer
        self.metrics = metrics
        self.profiler = profiler
        #: The fault model every transfer attempt draws from. Shared
        #: with the manager (which reads it back for invoke-side draws)
        #: so injected and stochastic faults use one set of counters.
        self.faults = faults
        #: Which NoC timing backend prices the fetch window: the
        #: closed-form analytic model (default) or a per-transfer
        #: flit-level replay (``NocModel.CYCLE``). At zero load the two
        #: agree exactly; CYCLE exists as the cross-check.
        self.noc_model = noc_model
        self._analytic_noc = AnalyticNocModel(mesh)
        # Deployments stream the same few bitstream sizes hundreds of
        # times; the transfer window depends only on the size.
        self._transfer_cache: Dict[int, Tuple[float, float]] = {}
        self._lock = Lock(sim)
        self.records: List[ReconfigurationRecord] = []
        #: In-flight abort events, keyed (tile, mode) — the watchdog's
        #: handle to free the ICAP from a stuck transfer.
        self._aborts: Dict[Tuple[str, str], object] = {}
        self.failed_transfers = 0

    # ------------------------------------------------------------------
    def transfer_seconds(self, size_bytes: int) -> float:
        """Streaming time for ``size_bytes`` of configuration data.

        The fetch (DFXC AXI master → NoC → DDR) and the ICAP write are
        pipelined; the slowest of the three channels bounds throughput.
        In practice the fetch path dominates by an order of magnitude.
        """
        if size_bytes <= 0:
            raise ReconfigurationError(f"bitstream size must be positive: {size_bytes}")
        if not self.profiler.enabled:
            return self._transfer_seconds(size_bytes)
        # The NoC-bounded fetch window is the model's flit-loop cost:
        # the frame carries both the host cost of evaluating the model
        # and the modelled NoC seconds it produces. The full transfer
        # duration is charged by the Timeout dispatch that simulates it.
        self.profiler.begin("noc.transfer")
        try:
            seconds, noc_seconds = self._transfer_seconds(size_bytes, split=True)
            self.profiler.add_sim(noc_seconds)
        finally:
            self.profiler.end()
        return seconds

    def _transfer_seconds(self, size_bytes: int, split: bool = False):
        cached = self._transfer_cache.get(size_bytes)
        if cached is None:
            fetch_seconds = size_bytes / self.fetch_bytes_per_cycle / self.clock_hz
            icap_seconds = size_bytes / ICAP_BYTES_PER_CYCLE / self.clock_hz
            noc_seconds = self._noc_seconds(size_bytes)
            setup_seconds = PRC_OVERHEAD_CYCLES / self.clock_hz
            total = setup_seconds + max(fetch_seconds, noc_seconds, icap_seconds)
            cached = self._transfer_cache[size_bytes] = (total, noc_seconds)
        if split:
            return cached
        return cached[0]

    def _noc_seconds(self, size_bytes: int) -> float:
        """Fetch-window NoC crossing time under the selected backend."""
        if self.noc_model is NocModel.CYCLE:
            cycles = cycle_transfer_latency_cycles(
                self.mesh, self.mem_position, self.aux_position, size_bytes
            )
            return cycles / self.mesh.clock_hz
        return self._analytic_noc.transfer_time_s(
            self.mem_position, self.aux_position, size_bytes
        )

    def inject_failure(self, *args, **kwargs) -> None:
        """Removed. Inject faults through the runtime fault model.

        The deprecation-era shim is gone; the replacement is::

            model = RuntimeFaultModel()
            model.inject(tile, mode, RuntimeFaultKind.BITSTREAM_CORRUPTION)
            platform = PrEspPlatform(
                runtime_options=RuntimeFaultOptions(faults=model)
            )
        """
        raise TypeError(
            "PrcDevice.inject_failure was removed; inject via "
            "RuntimeFaultModel.inject and pass RuntimeFaultOptions to the "
            "platform (or a prc_setup hook that sets prc.faults) instead"
        )

    def abort_transfer(self, tile_name: str, mode_name: str) -> bool:
        """Abort an in-flight transfer for (tile, mode) — DFXC reset.

        Called by the manager's watchdog when a transfer overruns its
        deadline; frees the ICAP immediately instead of waiting out the
        full stall. Returns True when a transfer was actually aborted.
        """
        abort = self._aborts.get((tile_name, mode_name))
        if abort is None or abort.triggered:
            return False
        abort.succeed()
        return True

    def reconfigure(self, tile_name: str, mode_name: str, size_bytes: int):
        """Process generator: stream one partial bitstream.

        Yields from a :class:`~repro.sim.process.Process`; returns the
        :class:`ReconfigurationRecord` once the completion interrupt
        fires. Serializes on the single ICAP. Fails (after the full
        transfer window) when a failure has been injected.
        """

        def body():
            yield self._lock.acquire()
            try:
                start = self.sim.now
                duration = self.transfer_seconds(size_bytes)
                fault = self.faults.transfer_fault(tile_name, mode_name)
                if fault is RuntimeFaultKind.STUCK_TRANSFER:
                    # The DFXC wedges: the ICAP is held until the
                    # watchdog aborts the transfer (or, unwatched, the
                    # stall finally times out on its own).
                    abort = self.sim.event()
                    self._aborts[(tile_name, mode_name)] = abort
                    stall = self.sim.timeout(duration * STUCK_STALL_FACTOR)
                    try:
                        yield self.sim.any_of([stall, abort])
                    finally:
                        # An aborted stall must not drag the clock out
                        # to its original 1000x expiry.
                        stall.cancel()
                        self._aborts.pop((tile_name, mode_name), None)
                    self._record_transfer_failure(
                        tile_name, mode_name, size_bytes, start, reason="stuck"
                    )
                    raise StuckTransferError(
                        f"{tile_name}/{mode_name}: transfer stuck "
                        f"(aborted after {self.sim.now - start:.6f}s)"
                    )
                yield self.sim.timeout(duration)
                self._count_fetch_traffic(size_bytes)
                if fault is RuntimeFaultKind.BITSTREAM_CORRUPTION:
                    self._record_transfer_failure(
                        tile_name, mode_name, size_bytes, start, reason="crc"
                    )
                    raise ReconfigurationError(
                        f"{tile_name}/{mode_name}: configuration CRC error"
                    )
                record = ReconfigurationRecord(
                    tile_name=tile_name,
                    mode_name=mode_name,
                    size_bytes=size_bytes,
                    start_s=start,
                    end_s=self.sim.now,
                )
                self.records.append(record)
                self.tracer.record(
                    f"{tile_name}/{mode_name}",
                    record.start_s,
                    record.end_s,
                    category="kernel.icap",
                    track="kernel/icap",
                    tile=tile_name,
                    mode=mode_name,
                    size_bytes=size_bytes,
                )
                self.metrics.counter(
                    "prc.transfers", "completed bitstream transfers"
                ).inc(tile=tile_name)
                self.metrics.counter(
                    "prc.icap_busy_s", "time the ICAP spent streaming"
                ).inc(record.duration_s)
                logger.debug(
                    "icap: streamed %s/%s (%d bytes) in %.6fs",
                    tile_name,
                    mode_name,
                    size_bytes,
                    record.duration_s,
                )
                return record
            finally:
                self._lock.release()

        return self.sim.process(body())

    def _record_transfer_failure(
        self, tile_name: str, mode_name: str, size_bytes: int, start: float,
        reason: str,
    ) -> None:
        """Account one failed transfer attempt (CRC error or abort)."""
        self.failed_transfers += 1
        self.metrics.counter(
            "prc.transfer_failures", "transfers ending in a CRC error"
        ).inc(tile=tile_name)
        self.tracer.record(
            f"{tile_name}/{mode_name}",
            start,
            self.sim.now,
            category="kernel.icap-error",
            track="kernel/icap",
            tile=tile_name,
            mode=mode_name,
            size_bytes=size_bytes,
            reason=reason,
        )

    def _count_fetch_traffic(self, size_bytes: int) -> None:
        """Account the DFXC fetch's NoC traffic (packets, flits, bytes).

        The fetch path crosses the NoC in maximum-size DMA bursts; the
        flit count mirrors :class:`~repro.noc.packet.Packet` accounting
        so the registry's NoC numbers are consistent across layers.
        """
        flits = HEADER_FLITS + math.ceil(size_bytes / FLIT_BYTES)
        self.metrics.counter("noc.bytes", "payload bytes crossing the NoC").inc(
            size_bytes, source="prc"
        )
        self.metrics.counter("noc.flits", "flits crossing the NoC").inc(
            flits, source="prc"
        )

    # ------------------------------------------------------------------
    @property
    def busy(self) -> bool:
        """True while a reconfiguration is streaming."""
        return self._lock.locked

    def total_reconfiguration_time_s(self) -> float:
        """Sum of all completed reconfiguration durations."""
        return sum(r.duration_s for r in self.records)
