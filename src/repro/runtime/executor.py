"""Multi-threaded application execution on a PR-ESP SoC.

The paper's evaluation software is "a multi-threaded Linux software,
with one thread per reconfigurable tile, to control the execution flow
of accelerators" (Sec. VI). The executor reproduces that structure on
the DES kernel: each tile thread walks its assigned tasks in dataflow
order, calling the user-space API (which reconfigures on demand);
stages without a hardware mapping run on the CPU thread in software.
Frames are processed without pipelining, as in the paper.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import ConfigurationError, SimulationError
from repro.runtime.api import DprUserApi, TileHandle
from repro.sim.kernel import Event, Simulator


@dataclass(frozen=True)
class StageTask:
    """One task of the application DAG."""

    name: str
    duration_s: float  # hardware execution time (or software time if unmapped)
    tile_name: Optional[str]  # None -> software on the CPU thread
    mode_name: Optional[str] = None  # accelerator to load (hardware tasks)
    deps: Tuple[str, ...] = ()

    def __post_init__(self) -> None:
        if self.duration_s < 0:
            raise ConfigurationError(f"task {self.name}: negative duration")
        if self.tile_name is not None and self.mode_name is None:
            raise ConfigurationError(
                f"task {self.name}: hardware task needs an accelerator mode"
            )


@dataclass(frozen=True)
class TimelineEvent:
    """One span on the execution timeline."""

    task: str
    worker: str  # tile name or "cpu"
    kind: str  # "exec" | "reconfig" | "sw"
    start_s: float
    end_s: float

    @property
    def duration_s(self) -> float:
        """Span length."""
        return self.end_s - self.start_s


@dataclass
class ExecutionTimeline:
    """All spans of one run plus aggregate figures."""

    events: List[TimelineEvent] = field(default_factory=list)
    makespan_s: float = 0.0

    def spans(self, kind: Optional[str] = None) -> List[TimelineEvent]:
        """Events, optionally filtered by kind."""
        if kind is None:
            return list(self.events)
        return [e for e in self.events if e.kind == kind]

    def busy_time(self, worker: str) -> float:
        """Total busy time of one worker."""
        return sum(e.duration_s for e in self.events if e.worker == worker)

    def reconfiguration_time(self) -> float:
        """Total time spent reconfiguring."""
        return sum(e.duration_s for e in self.events if e.kind == "reconfig")


class AppExecutor:
    """Runs a task DAG with one thread per reconfigurable tile."""

    def __init__(
        self,
        sim: Simulator,
        api: DprUserApi,
        tasks: Sequence[StageTask],
        cpu_worker: str = "cpu",
        blank_after_frame: bool = False,
    ) -> None:
        """``blank_after_frame`` enables the power-gating policy: each
        tile thread erases its region (greybox bitstream) once its last
        task of the frame completes, trading extra reconfiguration
        traffic for dark silicon while the rest of the frame drains.
        Requires blanking images in the bitstream store."""
        names = [t.name for t in tasks]
        if len(set(names)) != len(names):
            raise ConfigurationError("task names must be unique")
        by_name = {t.name: t for t in tasks}
        for task in tasks:
            for dep in task.deps:
                if dep not in by_name:
                    raise ConfigurationError(
                        f"task {task.name} depends on unknown task {dep!r}"
                    )
        self.sim = sim
        self.api = api
        self.tasks = list(tasks)
        self.cpu_worker = cpu_worker
        self.blank_after_frame = blank_after_frame
        self._handles: Dict[str, TileHandle] = {}

    # ------------------------------------------------------------------
    def _topo_order(self) -> List[StageTask]:
        """Deterministic topological order of the task DAG."""
        by_name = {t.name: t for t in self.tasks}
        depth: Dict[str, int] = {}

        def compute(name: str, stack: Tuple[str, ...] = ()) -> int:
            if name in depth:
                return depth[name]
            if name in stack:
                raise ConfigurationError(f"task dependency cycle through {name!r}")
            task = by_name[name]
            depth[name] = 1 + max(
                (compute(d, stack + (name,)) for d in task.deps), default=-1
            )
            return depth[name]

        for task in self.tasks:
            compute(task.name)
        return sorted(self.tasks, key=lambda t: (depth[t.name], t.name))

    # ------------------------------------------------------------------
    def run(self, frames: int = 1, pipelined: bool = False) -> ExecutionTimeline:
        """Execute the DAG ``frames`` times.

        ``pipelined=False`` (the paper's mode: "all SoCs process
        individual frames without pipelining") runs frames back to back
        with a barrier between them. ``pipelined=True`` overlaps
        frames: frame k+1's stages start as soon as their own
        dependencies allow, subject only to per-tile serialization and
        a same-stage frame ordering (each stage consumes its own
        previous-frame state). Returns the merged timeline.
        """
        if frames <= 0:
            raise ConfigurationError("need at least one frame")
        if pipelined and self.blank_after_frame:
            raise ConfigurationError(
                "blank-after-frame power gating and pipelining are exclusive: "
                "a region is never idle at a frame boundary when pipelined"
            )
        timeline = ExecutionTimeline()
        start = self.sim.now
        if pipelined:
            self._run_pipelined(timeline, frames)
        else:
            for _ in range(frames):
                self._run_one_frame(timeline)
        timeline.makespan_s = self.sim.now - start
        return timeline

    def _run_pipelined(self, timeline: ExecutionTimeline, frames: int) -> None:
        """All frames' task instances in flight at once."""
        ordered = self._topo_order()
        instances: List[Tuple[str, StageTask, Tuple[str, ...]]] = []
        for frame in range(frames):
            for task in ordered:
                name = f"f{frame}:{task.name}"
                deps = tuple(f"f{frame}:{d}" for d in task.deps)
                if frame > 0:
                    # A stage consumes its own state from the previous
                    # frame (GMM model, warp parameters, ...).
                    deps = deps + (f"f{frame - 1}:{task.name}",)
                instances.append((name, task, deps))
        self._execute_instances(timeline, instances)

    def _run_one_frame(self, timeline: ExecutionTimeline) -> None:
        ordered = self._topo_order()
        instances = [(t.name, t, t.deps) for t in ordered]
        self._execute_instances(timeline, instances, blank=self.blank_after_frame)

    def _execute_instances(
        self,
        timeline: ExecutionTimeline,
        instances: List[Tuple[str, StageTask, Tuple[str, ...]]],
        blank: bool = False,
    ) -> None:
        done: Dict[str, Event] = {
            name: self.sim.event() for name, _task, _deps in instances
        }

        # Partition instances onto workers: one thread per tile + one
        # CPU thread; queue order (list order) is a topological order.
        queues: Dict[str, List[Tuple[str, StageTask, Tuple[str, ...]]]] = {}
        for name, task, deps in instances:
            worker = task.tile_name if task.tile_name is not None else self.cpu_worker
            queues.setdefault(worker, []).append((name, task, deps))

        def thread_body(worker: str, assigned):
            for name, task, deps in assigned:
                if deps:
                    yield self.sim.all_of([done[d] for d in deps])
                if task.tile_name is None:
                    sw_start = self.sim.now
                    yield self.sim.timeout(task.duration_s)
                    timeline.events.append(
                        TimelineEvent(
                            task=name,
                            worker=worker,
                            kind="sw",
                            start_s=sw_start,
                            end_s=self.sim.now,
                        )
                    )
                else:
                    handle = self._handle_for(task.tile_name)
                    result = self.api.esp_run(
                        handle, task.mode_name, exec_time_s=task.duration_s
                    )
                    record = yield result.process
                    if record.reconfig_s > 0:
                        timeline.events.append(
                            TimelineEvent(
                                task=name,
                                worker=worker,
                                kind="reconfig",
                                start_s=record.start_exec_s - record.reconfig_s,
                                end_s=record.start_exec_s,
                            )
                        )
                    timeline.events.append(
                        TimelineEvent(
                            task=name,
                            worker=worker,
                            kind="exec",
                            start_s=record.start_exec_s,
                            end_s=record.end_exec_s,
                        )
                    )
                done[name].succeed()
            if blank and worker != self.cpu_worker:
                blank_start = self.sim.now
                yield self.api.esp_blank(self._handle_for(worker))
                if self.sim.now > blank_start:
                    timeline.events.append(
                        TimelineEvent(
                            task=f"{worker}_blank",
                            worker=worker,
                            kind="reconfig",
                            start_s=blank_start,
                            end_s=self.sim.now,
                        )
                    )

        threads = [
            self.sim.process(thread_body(worker, assigned))
            for worker, assigned in sorted(queues.items())
        ]
        barrier = self.sim.all_of(threads)
        self.sim.run()
        if not barrier.processed:
            raise SimulationError(
                "frame execution deadlocked (circular tile dependencies?)"
            )
        for thread in threads:
            if thread.exception is not None:
                raise thread.exception

    def _handle_for(self, tile_name: str) -> TileHandle:
        if tile_name not in self._handles:
            self._handles[tile_name] = self.api.open_tile(tile_name)
        return self._handles[tile_name]
