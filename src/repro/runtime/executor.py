"""Multi-threaded application execution on a PR-ESP SoC.

The paper's evaluation software is "a multi-threaded Linux software,
with one thread per reconfigurable tile, to control the execution flow
of accelerators" (Sec. VI). The executor reproduces that structure on
the DES kernel: each tile thread walks its assigned tasks in dataflow
order, calling the user-space API (which reconfigures on demand);
stages without a hardware mapping run on the CPU thread in software.
Frames are processed without pipelining, as in the paper.

When the runtime fault model is active the executor also performs
scheduler failover: an instance whose tile has been quarantined by the
reconfiguration manager is re-planned onto a surviving reconfigurable
tile holding the same partial bitstream, or — when no tile can serve
it — onto the CPU in software (``StageTask.sw_duration_s``), so the
application completes degraded instead of deadlocking.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import (
    ConfigurationError,
    ReconfigurationError,
    SimulationError,
    TileQuarantinedError,
)
from repro.obs import events as ev
from repro.obs.events import NULL_EVENTS
from repro.runtime.api import DprUserApi, TileHandle
from repro.sim.kernel import Event, Simulator


@dataclass(frozen=True)
class StageTask:
    """One task of the application DAG."""

    name: str
    duration_s: float  # hardware execution time (or software time if unmapped)
    tile_name: Optional[str]  # None -> software on the CPU thread
    mode_name: Optional[str] = None  # accelerator to load (hardware tasks)
    deps: Tuple[str, ...] = ()
    #: Software execution time of a *hardware* task — the failover
    #: fallback when every tile that could serve it is quarantined.
    sw_duration_s: Optional[float] = None

    def __post_init__(self) -> None:
        if self.duration_s < 0:
            raise ConfigurationError(f"task {self.name}: negative duration")
        if self.tile_name is not None and self.mode_name is None:
            raise ConfigurationError(
                f"task {self.name}: hardware task needs an accelerator mode"
            )
        if self.sw_duration_s is not None and self.sw_duration_s < 0:
            raise ConfigurationError(
                f"task {self.name}: negative software fallback duration"
            )


@dataclass(frozen=True)
class TimelineEvent:
    """One span on the execution timeline."""

    task: str
    worker: str  # tile name or "cpu"
    kind: str  # "exec" | "reconfig" | "sw"
    start_s: float
    end_s: float

    @property
    def duration_s(self) -> float:
        """Span length."""
        return self.end_s - self.start_s


@dataclass
class ExecutionTimeline:
    """All spans of one run plus aggregate figures."""

    events: List[TimelineEvent] = field(default_factory=list)
    makespan_s: float = 0.0

    def spans(self, kind: Optional[str] = None) -> List[TimelineEvent]:
        """Events, optionally filtered by kind."""
        if kind is None:
            return list(self.events)
        return [e for e in self.events if e.kind == kind]

    def busy_time(self, worker: str) -> float:
        """Total busy time of one worker."""
        return sum(e.duration_s for e in self.events if e.worker == worker)

    def reconfiguration_time(self) -> float:
        """Total time spent reconfiguring."""
        return sum(e.duration_s for e in self.events if e.kind == "reconfig")


class AppExecutor:
    """Runs a task DAG with one thread per reconfigurable tile."""

    def __init__(
        self,
        sim: Simulator,
        api: DprUserApi,
        tasks: Sequence[StageTask],
        cpu_worker: str = "cpu",
        blank_after_frame: bool = False,
        events=NULL_EVENTS,
    ) -> None:
        """``blank_after_frame`` enables the power-gating policy: each
        tile thread erases its region (greybox bitstream) once its last
        task of the frame completes, trading extra reconfiguration
        traffic for dark silicon while the rest of the frame drains.
        Requires blanking images in the bitstream store."""
        names = [t.name for t in tasks]
        if len(set(names)) != len(names):
            raise ConfigurationError("task names must be unique")
        by_name = {t.name: t for t in tasks}
        for task in tasks:
            for dep in task.deps:
                if dep not in by_name:
                    raise ConfigurationError(
                        f"task {task.name} depends on unknown task {dep!r}"
                    )
        self.sim = sim
        self.api = api
        self.tasks = list(tasks)
        self.cpu_worker = cpu_worker
        self.blank_after_frame = blank_after_frame
        self.events = events
        #: Instances re-planned off a quarantined tile this run.
        self.failovers = 0
        self._handles: Dict[str, TileHandle] = {}

    # ------------------------------------------------------------------
    def _topo_order(self) -> List[StageTask]:
        """Deterministic topological order of the task DAG."""
        by_name = {t.name: t for t in self.tasks}
        depth: Dict[str, int] = {}

        def compute(name: str, stack: Tuple[str, ...] = ()) -> int:
            if name in depth:
                return depth[name]
            if name in stack:
                raise ConfigurationError(f"task dependency cycle through {name!r}")
            task = by_name[name]
            depth[name] = 1 + max(
                (compute(d, stack + (name,)) for d in task.deps), default=-1
            )
            return depth[name]

        for task in self.tasks:
            compute(task.name)
        return sorted(self.tasks, key=lambda t: (depth[t.name], t.name))

    # ------------------------------------------------------------------
    def run(self, frames: int = 1, pipelined: bool = False) -> ExecutionTimeline:
        """Execute the DAG ``frames`` times.

        ``pipelined=False`` (the paper's mode: "all SoCs process
        individual frames without pipelining") runs frames back to back
        with a barrier between them. ``pipelined=True`` overlaps
        frames: frame k+1's stages start as soon as their own
        dependencies allow, subject only to per-tile serialization and
        a same-stage frame ordering (each stage consumes its own
        previous-frame state). Returns the merged timeline.
        """
        if frames <= 0:
            raise ConfigurationError("need at least one frame")
        if pipelined and self.blank_after_frame:
            raise ConfigurationError(
                "blank-after-frame power gating and pipelining are exclusive: "
                "a region is never idle at a frame boundary when pipelined"
            )
        timeline = ExecutionTimeline()
        start = self.sim.now
        if pipelined:
            self._run_pipelined(timeline, frames)
        else:
            for _ in range(frames):
                self._run_one_frame(timeline)
        timeline.makespan_s = self.sim.now - start
        return timeline

    def _run_pipelined(self, timeline: ExecutionTimeline, frames: int) -> None:
        """All frames' task instances in flight at once."""
        ordered = self._topo_order()
        instances: List[Tuple[str, StageTask, Tuple[str, ...]]] = []
        for frame in range(frames):
            for task in ordered:
                name = f"f{frame}:{task.name}"
                deps = tuple(f"f{frame}:{d}" for d in task.deps)
                if frame > 0:
                    # A stage consumes its own state from the previous
                    # frame (GMM model, warp parameters, ...).
                    deps = deps + (f"f{frame - 1}:{task.name}",)
                instances.append((name, task, deps))
        self._execute_instances(timeline, instances)

    def _run_one_frame(self, timeline: ExecutionTimeline) -> None:
        ordered = self._topo_order()
        instances = [(t.name, t, t.deps) for t in ordered]
        self._execute_instances(timeline, instances, blank=self.blank_after_frame)

    def _execute_instances(
        self,
        timeline: ExecutionTimeline,
        instances: List[Tuple[str, StageTask, Tuple[str, ...]]],
        blank: bool = False,
    ) -> None:
        done: Dict[str, Event] = {
            name: self.sim.event() for name, _task, _deps in instances
        }

        # Partition instances onto workers: one thread per tile + one
        # CPU thread; queue order (list order) is a topological order.
        queues: Dict[str, List[Tuple[str, StageTask, Tuple[str, ...]]]] = {}
        for name, task, deps in instances:
            worker = task.tile_name if task.tile_name is not None else self.cpu_worker
            queues.setdefault(worker, []).append((name, task, deps))

        def thread_body(worker: str, assigned):
            for name, task, deps in assigned:
                if deps:
                    yield self.sim.all_of([done[d] for d in deps])
                if task.tile_name is None:
                    sw_start = self.sim.now
                    yield self.sim.timeout(task.duration_s)
                    timeline.events.append(
                        TimelineEvent(
                            task=name,
                            worker=worker,
                            kind="sw",
                            start_s=sw_start,
                            end_s=self.sim.now,
                        )
                    )
                else:
                    yield from self._run_hw_instance(timeline, name, task)
                done[name].succeed()
            if blank and worker != self.cpu_worker:
                blank_start = self.sim.now
                yield self.api.esp_blank(self._handle_for(worker))
                if self.sim.now > blank_start:
                    timeline.events.append(
                        TimelineEvent(
                            task=f"{worker}_blank",
                            worker=worker,
                            kind="reconfig",
                            start_s=blank_start,
                            end_s=self.sim.now,
                        )
                    )

        threads = [
            self.sim.process(thread_body(worker, assigned))
            for worker, assigned in self._worker_queues(queues)
        ]
        barrier = self.sim.all_of(threads)
        self.sim.run()
        if not barrier.processed:
            raise SimulationError(
                "frame execution deadlocked (circular tile dependencies?)"
            )
        for thread in threads:
            if thread.exception is not None:
                raise thread.exception

    def _worker_queues(self, queues):
        """Thread spawn order (deterministic: sorted by worker name).

        Seam for tests that stress worker orderings: per-tile behaviour
        must not depend on which thread the kernel spawns first.
        """
        return sorted(queues.items())

    # ------------------------------------------------------------------
    # failover
    # ------------------------------------------------------------------
    def _run_hw_instance(self, timeline: "ExecutionTimeline", name: str, task: StageTask):
        """Run one hardware instance, re-planning around quarantines.

        Generator sub-routine of a worker thread. Retries an abandoned
        invocation on its own tile while the fault model may still
        recover it (bounded by the quarantine budget), re-plans onto a
        surviving tile once the tile is quarantined, and finally falls
        back to software when no tile can serve the mode.
        """
        tile = task.tile_name
        if self.api.tile_quarantined(tile):
            tile = self._replan(name, task, from_tile=tile)
        retries = 0
        while tile is not None:
            handle = self._handle_for(tile)
            result = self.api.esp_run(
                handle, task.mode_name, exec_time_s=task.duration_s
            )
            try:
                record = yield result.process
            except TileQuarantinedError:
                tile = self._replan(name, task, from_tile=tile)
                continue
            except ReconfigurationError:
                if self.api.tile_quarantined(tile):
                    tile = self._replan(name, task, from_tile=tile)
                    continue
                # The tile survives (dark or fallen back); retry the
                # mode while the quarantine budget bounds the loop.
                retries += 1
                if (
                    not self.api.faults_enabled
                    or retries > self.api.recovery.quarantine_after
                ):
                    raise
                continue
            if record.reconfig_s > 0:
                timeline.events.append(
                    TimelineEvent(
                        task=name,
                        worker=tile,
                        kind="reconfig",
                        start_s=record.start_exec_s - record.reconfig_s,
                        end_s=record.start_exec_s,
                    )
                )
            timeline.events.append(
                TimelineEvent(
                    task=name,
                    worker=tile,
                    kind="exec",
                    start_s=record.start_exec_s,
                    end_s=record.end_exec_s,
                )
            )
            return
        # Software failover: no surviving tile can serve the mode.
        sw_start = self.sim.now
        yield self.sim.timeout(task.sw_duration_s)
        timeline.events.append(
            TimelineEvent(
                task=name,
                worker=self.cpu_worker,
                kind="sw",
                start_s=sw_start,
                end_s=self.sim.now,
            )
        )

    def _replan(
        self, name: str, task: StageTask, from_tile: str
    ) -> Optional[str]:
        """Pick the failover target for one instance.

        Surviving tiles (sorted, skipping quarantined ones and the tile
        that failed) holding the mode's bitstream win; otherwise the
        software fallback (None) when the task has one. Emits
        ``sched.failover`` either way; raises when the instance cannot
        be placed at all.
        """
        target: Optional[str] = None
        for candidate in self.api.reconfigurable_tiles():
            if candidate == from_tile or self.api.tile_quarantined(candidate):
                continue
            if self.api.has_image(candidate, task.mode_name):
                target = candidate
                break
        if target is None and task.sw_duration_s is None:
            raise TileQuarantinedError(
                f"{name}: tile {from_tile!r} is quarantined, no surviving "
                f"tile holds {task.mode_name!r} and the stage has no "
                "software fallback"
            )
        self.failovers += 1
        self.events.emit(
            ev.SCHED_FAILOVER,
            time=self.sim.now,
            source=from_tile,
            task=name,
            mode=task.mode_name,
            to=target if target is not None else self.cpu_worker,
        )
        return target

    def _handle_for(self, tile_name: str) -> TileHandle:
        if tile_name not in self._handles:
            self._handles[tile_name] = self.api.open_tile(tile_name)
        return self._handles[tile_name]
