"""A deterministic runtime fault model with watchdog/recovery policy.

The DES-side mirror of :mod:`repro.vivado.faults`: where the CAD model
loses Vivado jobs, this one loses *runtime* operations — corrupted
partial bitstreams, wedged DFXC transfers and hung accelerators — the
failure modes a deployed DPR SoC actually sees. Everything is modelled
deterministically on the simulated clock:

* :class:`RuntimeFaultModel` — seeded per-:class:`RuntimeFaultKind`
  failure probabilities plus targeted :meth:`~RuntimeFaultModel.inject`
  arming. Every stochastic draw is a pure hash of ``(seed, kind, tile,
  mode, attempt)``, so the fault timeline of a deployment depends only
  on the seed and the operation identities — never on executor thread
  order, ICAP queueing, or how many frames ran before.
* :class:`RecoveryPolicy` — the watchdog: per-operation deadlines,
  bounded retries with exponential backoff (charged in simulated
  seconds), last-known-good bitstream fallback, and the quarantine
  threshold after which a persistently failing tile is taken dark.
* :class:`RuntimeFaultOptions` — the ``BuildOptions``-style bundle
  ``repro.api.deploy``/``monitor`` accept.

``NO_RUNTIME_FAULTS`` is the always-healthy shared model instrumented
code defaults to; like ``NO_FAULTS`` on the CAD side it refuses
injection so a test cannot accidentally poison every other run.
"""

from __future__ import annotations

import enum
import hashlib
from dataclasses import dataclass, field
from typing import Dict, Mapping, Optional, Tuple

from repro.errors import ReconfigurationError

#: Injection count meaning "every attempt fails until the tile is
#: quarantined" — the CLI's default for ``--inject-runtime-fault``.
PERSISTENT = -1


class RuntimeFaultKind(enum.Enum):
    """The three runtime failure modes the model can draw."""

    #: The partial bitstream arrives corrupted: the transfer runs its
    #: full window, then the modelled CRC check at the ICAP write fails.
    BITSTREAM_CORRUPTION = "crc"
    #: The DFXC wedges mid-transfer: the ICAP is held far past the
    #: nominal window until the watchdog aborts the transfer.
    STUCK_TRANSFER = "stuck"
    #: The accelerator never raises its completion interrupt; the
    #: invocation burns the watchdog deadline instead of its exec time.
    KERNEL_HANG = "hang"


#: Kinds drawn per *transfer* attempt (stacked: at most one fires).
TRANSFER_KINDS = (
    RuntimeFaultKind.BITSTREAM_CORRUPTION,
    RuntimeFaultKind.STUCK_TRANSFER,
)


def _unit_draw(*parts: object) -> float:
    """A deterministic uniform draw in [0, 1) keyed by ``parts``.

    SHA-256 over the joined key gives order-independence: the same
    (seed, kind, tile, mode, attempt) tuple draws the same number
    whichever executor thread asks first, in whatever frame.
    """
    key = "|".join(str(p) for p in parts).encode("utf-8")
    digest = hashlib.sha256(key).digest()
    return int.from_bytes(digest[:8], "big") / float(1 << 64)


class RuntimeFaultModel:
    """Seeded, order-independent runtime operation failures.

    ``rates`` maps a :class:`RuntimeFaultKind` to its per-attempt
    failure probability (absent kinds never fail stochastically). The
    two transfer kinds are stacked into one draw per attempt, so their
    rates must sum below 1.

    Attempts are numbered per ``(tile, mode, operation)`` by an
    internal counter — the per-tile lock already serializes operations
    on one tile, so the counter is deterministic regardless of
    cross-tile interleaving. Targeted injections are consumed in
    attempt order: ``inject(count=n)`` makes the next ``n`` attempts
    fail; :data:`PERSISTENT` makes every attempt fail.

    The counters make a model instance single-deployment state; use
    :meth:`fresh` (the platform does) to re-run the same fault
    *specification* from attempt one.
    """

    def __init__(
        self,
        seed: int = 0,
        rates: Optional[Mapping[RuntimeFaultKind, float]] = None,
    ) -> None:
        for kind, rate in (rates or {}).items():
            if not isinstance(kind, RuntimeFaultKind):
                raise ReconfigurationError(
                    f"fault rates must be keyed by RuntimeFaultKind, got {kind!r}"
                )
            if not 0.0 <= rate < 1.0:
                raise ReconfigurationError(
                    f"failure probability for {kind.value} must be in [0, 1), "
                    f"got {rate}"
                )
        self.seed = seed
        self.rates: Dict[RuntimeFaultKind, float] = dict(rates or {})
        transfer_total = sum(self.rates.get(k, 0.0) for k in TRANSFER_KINDS)
        if transfer_total >= 1.0:
            raise ReconfigurationError(
                "crc + stuck rates are stacked into one transfer draw and "
                f"must sum below 1, got {transfer_total}"
            )
        self._injected: Dict[Tuple[str, str, RuntimeFaultKind], int] = {}
        self._attempts: Dict[Tuple[str, str, str], int] = {}
        #: Faults this model produced, by kind (shared accounting for
        #: both the stochastic draws and the targeted injections).
        self.drawn: Dict[RuntimeFaultKind, int] = {k: 0 for k in RuntimeFaultKind}

    # ------------------------------------------------------------------
    @property
    def enabled(self) -> bool:
        """True when any stochastic rate or injection is armed."""
        return any(r > 0.0 for r in self.rates.values()) or bool(self._injected)

    def inject(
        self,
        tile_name: str,
        mode_name: str,
        kind: RuntimeFaultKind = RuntimeFaultKind.BITSTREAM_CORRUPTION,
        count: int = 1,
    ) -> None:
        """Arm ``count`` deterministic faults for (tile, mode, kind).

        ``count=PERSISTENT`` arms the fault on every attempt — the way
        to force a tile into quarantine.
        """
        if not isinstance(kind, RuntimeFaultKind):
            raise ReconfigurationError(
                f"kind must be a RuntimeFaultKind, got {kind!r}"
            )
        if count != PERSISTENT and count <= 0:
            raise ReconfigurationError(
                f"fault count must be positive (or PERSISTENT), got {count}"
            )
        key = (tile_name, mode_name, kind)
        if count == PERSISTENT or self._injected.get(key, 0) == PERSISTENT:
            self._injected[key] = PERSISTENT
        else:
            self._injected[key] = self._injected.get(key, 0) + count

    def injected_count(
        self, tile_name: str, mode_name: str, kind: RuntimeFaultKind
    ) -> int:
        """Armed targeted faults for (tile, mode, kind); -1 = persistent."""
        return self._injected.get((tile_name, mode_name, kind), 0)

    # ------------------------------------------------------------------
    def _next_attempt(self, tile_name: str, mode_name: str, op: str) -> int:
        key = (tile_name, mode_name, op)
        self._attempts[key] = self._attempts.get(key, 0) + 1
        return self._attempts[key]

    def _covered(self, tile_name: str, mode_name: str, kind: RuntimeFaultKind,
                 attempt: int, offset: int = 0) -> bool:
        armed = self._injected.get((tile_name, mode_name, kind), 0)
        if armed == PERSISTENT:
            return True
        return attempt - offset <= armed

    def transfer_fault(
        self, tile_name: str, mode_name: str
    ) -> Optional[RuntimeFaultKind]:
        """Outcome of the next transfer attempt for (tile, mode).

        Targeted injections fire first (corruption before stuck, each
        consuming attempts in order), then one stacked stochastic draw
        decides between corruption, stuck, and healthy.
        """
        attempt = self._next_attempt(tile_name, mode_name, "transfer")
        crc_armed = self._injected.get(
            (tile_name, mode_name, RuntimeFaultKind.BITSTREAM_CORRUPTION), 0
        )
        if self._covered(
            tile_name, mode_name, RuntimeFaultKind.BITSTREAM_CORRUPTION, attempt
        ):
            self.drawn[RuntimeFaultKind.BITSTREAM_CORRUPTION] += 1
            return RuntimeFaultKind.BITSTREAM_CORRUPTION
        if self._covered(
            tile_name,
            mode_name,
            RuntimeFaultKind.STUCK_TRANSFER,
            attempt,
            offset=max(0, crc_armed),
        ):
            self.drawn[RuntimeFaultKind.STUCK_TRANSFER] += 1
            return RuntimeFaultKind.STUCK_TRANSFER
        draw = _unit_draw(self.seed, "transfer", tile_name, mode_name, attempt)
        threshold = 0.0
        for kind in TRANSFER_KINDS:
            threshold += self.rates.get(kind, 0.0)
            if draw < threshold:
                self.drawn[kind] += 1
                return kind
        return None

    def invoke_fault(self, tile_name: str, mode_name: str) -> bool:
        """True when the next invocation attempt for (tile, mode) hangs."""
        attempt = self._next_attempt(tile_name, mode_name, "invoke")
        if self._covered(
            tile_name, mode_name, RuntimeFaultKind.KERNEL_HANG, attempt
        ):
            self.drawn[RuntimeFaultKind.KERNEL_HANG] += 1
            return True
        rate = self.rates.get(RuntimeFaultKind.KERNEL_HANG, 0.0)
        if rate <= 0.0:
            return False
        if _unit_draw(self.seed, "invoke", tile_name, mode_name, attempt) < rate:
            self.drawn[RuntimeFaultKind.KERNEL_HANG] += 1
            return True
        return False

    # ------------------------------------------------------------------
    def fresh(self) -> "RuntimeFaultModel":
        """A copy of this fault *specification* with virgin counters.

        The platform calls this once per deployment, so repeated
        same-seed deploys replay the identical fault timeline instead
        of continuing a shared attempt numbering.
        """
        model = RuntimeFaultModel(seed=self.seed, rates=dict(self.rates))
        model._injected.update(self._injected)
        return model

    def fingerprint(self) -> Dict:
        """Everything that can change a deployment's fault timeline."""
        return {
            "seed": self.seed,
            "rates": {
                kind.value: rate
                for kind, rate in sorted(
                    self.rates.items(), key=lambda kv: kv[0].value
                )
            },
            "injected": {
                f"{tile}/{mode}/{kind.value}": count
                for (tile, mode, kind), count in sorted(
                    self._injected.items(),
                    key=lambda kv: (kv[0][0], kv[0][1], kv[0][2].value),
                )
            },
        }


class _NoRuntimeFaults(RuntimeFaultModel):
    """The always-healthy model instrumented code defaults to.

    Draw methods are overridden to skip even the attempt bookkeeping,
    so the shared instance carries no cross-run state at all.
    """

    def inject(self, tile_name, mode_name, kind=RuntimeFaultKind.BITSTREAM_CORRUPTION, count=1):
        raise ReconfigurationError(
            "cannot inject faults into the shared NO_RUNTIME_FAULTS model; "
            "construct a RuntimeFaultModel instead"
        )

    def transfer_fault(self, tile_name, mode_name):
        return None

    def invoke_fault(self, tile_name, mode_name):
        return False


#: Shared disabled model: no runtime operation ever fails.
NO_RUNTIME_FAULTS = _NoRuntimeFaults()


@dataclass(frozen=True)
class RecoveryPolicy:
    """The manager's watchdog and recovery parameters.

    Retries of a failed transfer back off exponentially on the
    *simulated* clock: the wait before attempt ``n`` (n >= 2) is
    ``min(backoff_s * factor**(n - 2), cap_s) * (1 + j)`` with ``j`` a
    seeded jitter draw in ``[0, jitter]``. ``max_attempts=2`` keeps the
    manager's historical retry-once contract.
    """

    #: Transfer attempts before a reconfiguration is abandoned.
    max_attempts: int = 2
    backoff_s: float = 0.002
    factor: float = 2.0
    cap_s: float = 0.05
    jitter: float = 0.25
    #: Watchdog deadline for one bitstream transfer; a transfer still
    #: in flight past this is aborted as stuck (only armed when the
    #: fault model is enabled, so healthy runs pay zero overhead).
    reconfig_deadline_s: float = 0.25
    #: A kernel invocation is declared hung after
    #: ``exec_deadline_factor`` times its nominal execution time.
    exec_deadline_factor: float = 4.0
    #: Hung-kernel restarts before the invocation is abandoned.
    hang_max_attempts: int = 2
    #: Reload the tile's last-known-good bitstream when a newer one is
    #: abandoned (repeated CRC failures).
    fallback_to_last_good: bool = True
    #: Abandoned operations on one tile before it is quarantined
    #: (taken dark and blanked; schedulers must re-plan around it).
    quarantine_after: int = 3

    def __post_init__(self) -> None:
        if self.max_attempts < 1 or self.hang_max_attempts < 1:
            raise ReconfigurationError("recovery needs >= 1 attempt per operation")
        if self.backoff_s < 0 or self.cap_s < 0:
            raise ReconfigurationError("backoff and cap must be non-negative")
        if self.factor < 1.0:
            raise ReconfigurationError(
                f"backoff factor must be >= 1, got {self.factor}"
            )
        if not 0.0 <= self.jitter <= 1.0:
            raise ReconfigurationError(f"jitter must be in [0, 1], got {self.jitter}")
        if self.reconfig_deadline_s <= 0:
            raise ReconfigurationError("reconfiguration deadline must be positive")
        if self.exec_deadline_factor <= 1.0:
            raise ReconfigurationError(
                "exec deadline factor must exceed 1 (the nominal exec time)"
            )
        if self.quarantine_after < 1:
            raise ReconfigurationError("quarantine threshold must be >= 1")

    @property
    def max_backoff_s(self) -> float:
        """Upper bound of any single backoff wait."""
        return self.cap_s * (1.0 + self.jitter)

    def backoff_before(
        self, attempt: int, seed: int, tile_name: str, mode_name: str
    ) -> float:
        """Backoff seconds charged before ``attempt`` (1-based).

        Attempt 1 starts immediately; attempt ``n`` waits the capped
        exponential plus the seeded jitter for (seed, tile, mode, n) —
        order-independent like the fault draws themselves.
        """
        if attempt <= 1:
            return 0.0
        base = min(self.backoff_s * self.factor ** (attempt - 2), self.cap_s)
        jitter = self.jitter * _unit_draw(
            seed, "rbackoff", tile_name, mode_name, attempt
        )
        return base * (1.0 + jitter)


#: The default watchdog: retry-once with 2 ms backoff, 250 ms transfer
#: deadline, 4x exec deadline, fallback on, quarantine after 3.
DEFAULT_RECOVERY = RecoveryPolicy()


@dataclass
class RuntimeFaultOptions:
    """The deploy-side options bundle (mirror of ``BuildOptions``).

    ``faults`` is a fault *specification*: the platform re-instantiates
    it per deployment (:meth:`RuntimeFaultModel.fresh`), so one options
    object can drive many identical runs.
    """

    faults: RuntimeFaultModel = field(default_factory=lambda: NO_RUNTIME_FAULTS)
    recovery: RecoveryPolicy = field(default_factory=lambda: DEFAULT_RECOVERY)

    def __post_init__(self) -> None:
        if not isinstance(self.faults, RuntimeFaultModel):
            raise ReconfigurationError(
                f"faults must be a RuntimeFaultModel, got {type(self.faults).__name__}"
            )
        if not isinstance(self.recovery, RecoveryPolicy):
            raise ReconfigurationError(
                f"recovery must be a RecoveryPolicy, got {type(self.recovery).__name__}"
            )
