"""DPR floorplanning (the paper adapts the FLORA tool [17]).

Given the resource demand of each reconfigurable partition and the
device's column geometry, produce legal, non-overlapping pblocks that
satisfy the DFX technological constraints. The packer enumerates
clock-region-aligned rectangular candidates column by column and picks
the smallest legal one per RP (largest RPs first), with a routability
headroom so regions are never packed to 100%.
"""

from repro.floorplan.flora import FloraFloorplanner, Floorplan, RegionAssignment
from repro.floorplan.constraints import validate_floorplan, FloorplanReport

__all__ = [
    "FloraFloorplanner",
    "Floorplan",
    "RegionAssignment",
    "validate_floorplan",
    "FloorplanReport",
]
