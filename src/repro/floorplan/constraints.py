"""Floorplan-level validation of the DFX technological constraints."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

from repro.fabric.device import Device
from repro.fabric.pblock import check_pblock
from repro.fabric.resources import ResourceVector, total_resources
from repro.floorplan.flora import Floorplan


@dataclass
class FloorplanReport:
    """Aggregated legality report for a floorplan."""

    floorplan: Floorplan
    violations: List[str] = field(default_factory=list)
    static_headroom: ResourceVector = ResourceVector.zero()

    @property
    def legal(self) -> bool:
        """True when no constraint is violated."""
        return not self.violations


def validate_floorplan(
    device: Device,
    floorplan: Floorplan,
    static_demand: ResourceVector = ResourceVector.zero(),
) -> FloorplanReport:
    """Check every pblock plus the static-part headroom.

    Per-pblock checks: geometry, forbidden columns, resource coverage,
    pairwise non-overlap. Globally, what remains of the device outside
    the reconfigurable regions must still hold the static part.
    """
    report = FloorplanReport(floorplan=floorplan)
    pblocks = floorplan.pblocks()
    for assignment in floorplan.assignments:
        result = check_pblock(device, assignment.pblock, assignment.demand, others=pblocks)
        for violation in result.violations:
            report.violations.append(f"{assignment.rp_name}: {violation}")

    reserved = total_resources(pb.resources(device) for pb in pblocks)
    remaining = device.capacity() - reserved if reserved.fits_in(device.capacity()) else None
    if remaining is None:
        report.violations.append("reconfigurable regions exceed the device capacity")
    else:
        report.static_headroom = remaining
        if not static_demand.fits_in(remaining):
            report.violations.append(
                f"static part {static_demand} does not fit outside the "
                f"reconfigurable regions (remaining {remaining})"
            )
    return report
