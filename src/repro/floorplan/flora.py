"""The FLORA-style pblock packer.

FLORA formulates DPR floorplanning as an optimization over column-
granular rectangles; this adaptation keeps its essential structure —
column-aware candidate enumeration, per-resource coverage, forbidden
column avoidance, non-overlap — with a deterministic best-fit heuristic
in place of the MILP (the flow only needs *a* legal floorplan; pblock
geometry does not feed the runtime model).

The candidate search is fully vectorized over the column axis: the
fabric's per-resource column prefix sums turn "does window [lo, hi]
cover the demand" into an O(1) subtraction, and for a fixed clock-region
band the *minimal* satisfying ``col_hi`` for every anchor column is one
``np.searchsorted`` per resource kind (prefix sums are non-decreasing,
so the minimal window is a binary search, not a scan). Occupancy is a
boolean column x region-row grid, so blocking a band is a single
``any(axis=1)`` reduction instead of a per-cell tuple-set probe.

:class:`ReferenceFloraFloorplanner` keeps the original scalar
per-window search as the executable specification; the equivalence
tests pin the vectorized planner to it bit for bit.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property
from typing import Dict, List, Optional, Sequence, Set, Tuple, Union

import numpy as np

from repro.errors import FloorplanError
from repro.fabric.device import Device
from repro.fabric.pblock import Pblock
from repro.fabric.resources import ResourceKind, ResourceVector

#: Either occupancy representation ``_place_one`` accepts: the planner's
#: boolean (column, region_row) grid or a legacy set of (col, row) cells.
Occupancy = Union[np.ndarray, Set[Tuple[int, int]]]


@dataclass(frozen=True)
class RegionAssignment:
    """One RP's placement with its demand and provided resources."""

    rp_name: str
    pblock: Pblock
    demand: ResourceVector
    provided: ResourceVector

    @property
    def lut_utilization(self) -> float:
        """Demanded over provided LUTs."""
        return self.demand.lut / max(self.provided.lut, 1)


@dataclass(frozen=True)
class Floorplan:
    """A complete floorplan: one assignment per RP."""

    device_name: str
    assignments: Tuple[RegionAssignment, ...]

    def pblocks(self) -> List[Pblock]:
        """All pblocks in assignment order."""
        return [a.pblock for a in self.assignments]

    @cached_property
    def _by_name(self) -> Dict[str, RegionAssignment]:
        return {assignment.rp_name: assignment for assignment in self.assignments}

    def assignment_for(self, rp_name: str) -> RegionAssignment:
        """Assignment lookup by RP name (cached name->assignment map)."""
        assignment = self._by_name.get(rp_name)
        if assignment is None:
            raise FloorplanError(f"no assignment for RP {rp_name!r}")
        return assignment


def _unblocked_runs(blocked: np.ndarray) -> List[Tuple[int, int]]:
    """Maximal inclusive [lo, hi] runs of False in a boolean mask."""
    runs: List[Tuple[int, int]] = []
    start: Optional[int] = None
    for index, is_blocked in enumerate(blocked):
        if not is_blocked and start is None:
            start = index
        elif is_blocked and start is not None:
            runs.append((start, index - 1))
            start = None
    if start is not None:
        runs.append((start, len(blocked) - 1))
    return runs


class FloraFloorplanner:
    """Deterministic best-fit floorplanner over a device."""

    def __init__(
        self,
        device: Device,
        target_utilization: float = 0.7,
        max_height_regions: Optional[int] = None,
    ) -> None:
        if not 0.1 <= target_utilization <= 1.0:
            raise FloorplanError(
                f"target utilization must be in [0.1, 1.0], got {target_utilization}"
            )
        self.device = device
        self.target_utilization = target_utilization
        self.max_height = max_height_regions or device.region_rows
        self._forbidden: Set[int] = set(device.forbidden_columns())
        self._forbidden_mask = np.zeros(device.num_columns, dtype=bool)
        for x in self._forbidden:
            self._forbidden_mask[x] = True
        # Per-resource prefix sums over column segments: prefix[x][k] is
        # the sum of resource k over columns [0, x) — owned and cached
        # by the device, shared across every planner instance.
        kinds = list(ResourceKind)
        self._prefix = device.resource_prefix()
        # Contiguous per-kind views: searchsorted needs 1-D sorted input.
        self._prefix_by_kind = [
            np.ascontiguousarray(self._prefix[:, k]) for k in range(len(kinds))
        ]
        self._kinds = kinds
        self._column_indices = np.arange(device.num_columns, dtype=np.int64)

    # ------------------------------------------------------------------
    def plan(self, demands: Sequence[Tuple[str, ResourceVector]]) -> Floorplan:
        """Place every RP; raises :class:`FloorplanError` if any fails.

        RPs are placed in descending LUT-demand order (hardest first),
        but the returned assignments preserve the caller's order.
        """
        if not demands:
            raise FloorplanError("nothing to floorplan")
        names = [name for name, _ in demands]
        if len(set(names)) != len(names):
            raise FloorplanError("RP names must be unique")

        occupied = self._empty_occupancy()
        placed: Dict[str, RegionAssignment] = {}
        order = sorted(demands, key=lambda item: (-item[1].lut, item[0]))
        for rp_name, demand in order:
            assignment = self._place_with_relaxation(rp_name, demand, occupied)
            placed[rp_name] = assignment
            self._mark_occupied(occupied, assignment.pblock)
        return Floorplan(
            device_name=self.device.name,
            assignments=tuple(placed[name] for name in names),
        )

    # ------------------------------------------------------------------
    # occupancy representation (the reference planner overrides these)
    # ------------------------------------------------------------------
    def _empty_occupancy(self) -> Occupancy:
        return np.zeros((self.device.num_columns, self.device.region_rows), dtype=bool)

    def _mark_occupied(self, occupied: Occupancy, pb: Pblock) -> None:
        occupied[pb.col_lo : pb.col_hi + 1, pb.row_lo : pb.row_hi + 1] = True

    def _occupancy_grid(self, occupied: Occupancy) -> np.ndarray:
        """Normalize either occupancy representation to the boolean grid."""
        if isinstance(occupied, np.ndarray):
            return occupied
        grid = np.zeros((self.device.num_columns, self.device.region_rows), dtype=bool)
        for col, row in occupied:
            grid[col, row] = True
        return grid

    # ------------------------------------------------------------------
    def _place_with_relaxation(
        self,
        rp_name: str,
        demand: ResourceVector,
        occupied: Occupancy,
    ) -> RegionAssignment:
        """Place one RP, relaxing the routability headroom if needed.

        Dense designs (the paper's SOC_4 puts ~80% of the device into
        reconfigurable regions) cannot afford the full slack on every
        region; like FLORA, the planner degrades gracefully to tighter
        packing before giving up.
        """
        last_error: Optional[FloorplanError] = None
        for utilization in self._relaxation_ladder():
            try:
                return self._place_one(rp_name, demand, occupied, utilization)
            except FloorplanError as error:
                last_error = error
        assert last_error is not None
        raise last_error

    def _relaxation_ladder(self) -> List[float]:
        ladder = [self.target_utilization]
        for step in (0.8, 0.9, 0.97):
            if step > ladder[-1]:
                ladder.append(step)
        return ladder

    def _inflated(
        self, demand: ResourceVector, utilization: Optional[float] = None
    ) -> ResourceVector:
        """Demand inflated by the routability headroom (LUT/FF only;
        BRAM/DSP are column-quantized and need no slack)."""
        utilization = utilization or self.target_utilization
        return ResourceVector(
            lut=int(np.ceil(demand.lut / utilization)),
            ff=int(np.ceil(demand.ff / utilization)),
            bram=demand.bram,
            dsp=demand.dsp,
        )

    def _window_satisfies(
        self, need: np.ndarray, col_lo: int, col_hi: int, height: int
    ) -> bool:
        window = (self._prefix[col_hi + 1] - self._prefix[col_lo]) * height
        return bool(np.all(window >= need))

    def _place_one(
        self,
        rp_name: str,
        demand: ResourceVector,
        occupied: Occupancy,
        utilization: Optional[float] = None,
    ) -> RegionAssignment:
        """Smallest legal rectangle covering the inflated demand.

        Ties on area prefer the leftmost, bottom-most anchor so regions
        pack densely instead of fragmenting the fabric; area ties
        between band heights resolve to the shorter band (the scan goes
        height-ascending and only strictly better keys replace).
        """
        inflated = self._inflated(demand, utilization)
        need = np.array([inflated.get(kind) for kind in self._kinds], dtype=np.int64)
        device = self.device
        grid = self._occupancy_grid(occupied)
        num_columns = device.num_columns
        columns = self._column_indices
        best: Optional[Pblock] = None
        best_key: Optional[Tuple[int, int, int]] = None

        for height in range(1, self.max_height + 1):
            # Any candidate of this height has area >= height (width is
            # at least one column), so once a best key exists no taller
            # band can beat or tie it — identical results, less work.
            if best_key is not None and height > best_key[0]:
                break
            # A window of this height satisfies resource k iff its
            # column sum reaches ceil(need_k / height) — both sides of
            # "window * height >= need" are integers.
            thresholds = -(-need // height)
            for row_lo in range(0, device.region_rows - height + 1):
                blocked = self._forbidden_mask | grid[:, row_lo : row_lo + height].any(
                    axis=1
                )
                anchors = np.nonzero(~blocked)[0]
                if anchors.size == 0:
                    continue
                # Minimal satisfying col_hi per anchor: one binary
                # search per resource kind over the prefix sums.
                hi = anchors.copy()
                feasible = np.ones(anchors.size, dtype=bool)
                for k, threshold in enumerate(thresholds):
                    if threshold <= 0:
                        continue
                    prefix_k = self._prefix_by_kind[k]
                    hi_plus1 = np.searchsorted(
                        prefix_k, prefix_k[anchors] + threshold, side="left"
                    )
                    feasible &= hi_plus1 <= num_columns
                    np.maximum(hi, hi_plus1 - 1, out=hi)
                # The window may not cross a blocked column: col_hi must
                # stay below the next blocked index at/after the anchor.
                # A fully unblocked band needs no run bookkeeping.
                if anchors.size < num_columns:
                    next_blocked = np.minimum.accumulate(
                        np.where(blocked, columns, num_columns)[::-1]
                    )[::-1]
                    feasible &= hi < next_blocked[anchors]
                if not feasible.any():
                    continue
                anchor_ok = anchors[feasible]
                hi_ok = hi[feasible]
                area = (hi_ok - anchor_ok + 1) * height
                pick = np.lexsort((anchor_ok, area))[0]
                key = (int(area[pick]), int(anchor_ok[pick]), row_lo)
                if best_key is None or key < best_key:
                    best = Pblock(
                        name=f"pblock_{rp_name}",
                        col_lo=int(anchor_ok[pick]),
                        col_hi=int(hi_ok[pick]),
                        row_lo=row_lo,
                        row_hi=row_lo + height - 1,
                    )
                    best_key = key

        if best is None:
            raise FloorplanError(
                f"cannot place RP {rp_name!r}: demand {demand} (inflated "
                f"{inflated}) does not fit the remaining fabric of {device.name}"
            )
        return RegionAssignment(
            rp_name=rp_name,
            pblock=best,
            demand=demand,
            provided=best.resources(self.device),
        )


class ReferenceFloraFloorplanner(FloraFloorplanner):
    """The original scalar per-window search, kept as the spec.

    Enumerates every candidate window with a two-pointer sweep and an
    O(1) prefix-sum check per step. Orders of magnitude slower than the
    vectorized planner but trivially auditable; the equivalence tests
    assert both produce identical :class:`Floorplan`s (relaxation
    ladder included) on seeded random demand sets.
    """

    def _empty_occupancy(self) -> Occupancy:
        return set()

    def _mark_occupied(self, occupied: Occupancy, pb: Pblock) -> None:
        for col in range(pb.col_lo, pb.col_hi + 1):
            for row in range(pb.row_lo, pb.row_hi + 1):
                occupied.add((col, row))

    def _place_one(
        self,
        rp_name: str,
        demand: ResourceVector,
        occupied: Occupancy,
        utilization: Optional[float] = None,
    ) -> RegionAssignment:
        inflated = self._inflated(demand, utilization)
        need = np.array([inflated.get(kind) for kind in self._kinds], dtype=np.int64)
        device = self.device
        best: Optional[Pblock] = None
        best_key: Optional[Tuple[int, int, int]] = None

        for height in range(1, self.max_height + 1):
            for row_lo in range(0, device.region_rows - height + 1):
                row_hi = row_lo + height - 1
                blocked = np.array(
                    [
                        (x in self._forbidden)
                        or any((x, row) in occupied for row in range(row_lo, row_hi + 1))
                        for x in range(device.num_columns)
                    ]
                )
                # Two-pointer sweep within each maximal unblocked run.
                for run_lo, run_hi in _unblocked_runs(blocked):
                    col_hi = run_lo
                    for col_lo in range(run_lo, run_hi + 1):
                        col_hi = max(col_hi, col_lo)
                        while col_hi <= run_hi and not self._window_satisfies(
                            need, col_lo, col_hi, height
                        ):
                            col_hi += 1
                        if col_hi > run_hi:
                            break  # even the full run cannot satisfy the need
                        area = (col_hi - col_lo + 1) * height
                        key = (area, col_lo, row_lo)
                        if best_key is None or key < best_key:
                            best = Pblock(
                                name=f"pblock_{rp_name}",
                                col_lo=col_lo,
                                col_hi=col_hi,
                                row_lo=row_lo,
                                row_hi=row_hi,
                            )
                            best_key = key

        if best is None:
            raise FloorplanError(
                f"cannot place RP {rp_name!r}: demand {demand} (inflated "
                f"{inflated}) does not fit the remaining fabric of {device.name}"
            )
        return RegionAssignment(
            rp_name=rp_name,
            pblock=best,
            demand=demand,
            provided=best.resources(self.device),
        )
