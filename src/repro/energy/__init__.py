"""Power and energy modelling for the runtime evaluation (Fig. 4).

The paper measures Joules/frame on the VC707; the reproduction replaces
the power rails with an area/activity model: static leakage + clock
power proportional to configured area, per-accelerator dynamic power
while computing, CPU power for software stages, and ICAP/PRC power
during reconfiguration windows.
"""

from repro.energy.power import PowerModel, DEFAULT_POWER_MODEL
from repro.energy.measure import EnergyReport, measure_energy

__all__ = ["PowerModel", "DEFAULT_POWER_MODEL", "EnergyReport", "measure_energy"]
