"""Energy accounting over an execution timeline."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Optional

from repro.errors import ConfigurationError
from repro.energy.power import DEFAULT_POWER_MODEL, PowerModel
from repro.runtime.executor import ExecutionTimeline


@dataclass(frozen=True)
class EnergyReport:
    """Energy breakdown of one run."""

    frames: int
    makespan_s: float
    baseline_j: float  # static + configured-region + board energy
    dynamic_j: float  # accelerator activity
    software_j: float  # CPU software stages
    reconfig_j: float  # PRC/ICAP windows

    @property
    def total_j(self) -> float:
        """Total energy of the run."""
        return self.baseline_j + self.dynamic_j + self.software_j + self.reconfig_j

    @property
    def joules_per_frame(self) -> float:
        """The paper's Fig. 4 energy-efficiency metric."""
        return self.total_j / self.frames

    @property
    def seconds_per_frame(self) -> float:
        """The paper's Fig. 4 performance metric."""
        return self.makespan_s / self.frames

    @property
    def average_power_w(self) -> float:
        """Mean power over the run."""
        return self.total_j / self.makespan_s if self.makespan_s > 0 else 0.0


def measure_energy(
    timeline: ExecutionTimeline,
    frames: int,
    static_kluts: float,
    region_kluts: Mapping[str, float],
    mode_power_w: Mapping[str, float],
    task_modes: Mapping[str, str],
    model: PowerModel = DEFAULT_POWER_MODEL,
    configured_fraction: Optional[Mapping[str, float]] = None,
) -> EnergyReport:
    """Integrate the power model over a timeline.

    ``region_kluts`` maps each reconfigurable tile to its floorplanned
    region area; ``mode_power_w`` maps accelerator names to dynamic
    power; ``task_modes`` maps task names to the accelerator they ran
    (software tasks may be absent). ``configured_fraction`` (power
    gating) scales each region's clock/leakage power by the share of
    time it actually held a configuration — 1.0 when absent.
    """
    if frames <= 0:
        raise ConfigurationError("frames must be positive")
    if timeline.makespan_s <= 0:
        raise ConfigurationError("timeline has no duration")

    effective_region = 0.0
    for tile, kluts in region_kluts.items():
        fraction = 1.0
        if configured_fraction is not None:
            fraction = configured_fraction.get(tile, 1.0)
            if not 0.0 <= fraction <= 1.0:
                raise ConfigurationError(
                    f"{tile}: configured fraction {fraction} outside [0, 1]"
                )
        effective_region += kluts * fraction
    baseline_power = model.baseline_power_w(static_kluts, effective_region)
    baseline_j = baseline_power * timeline.makespan_s

    dynamic_j = 0.0
    software_j = 0.0
    reconfig_j = 0.0
    for event in timeline.events:
        if event.kind == "exec":
            # Pipelined timelines prefix instances with "f<k>:".
            base_task = event.task.split(":", 1)[-1]
            mode = task_modes.get(event.task, task_modes.get(base_task))
            if mode is None:
                raise ConfigurationError(
                    f"hardware task {event.task!r} has no mode mapping"
                )
            if mode not in mode_power_w:
                raise ConfigurationError(f"no dynamic power for mode {mode!r}")
            dynamic_j += mode_power_w[mode] * event.duration_s
        elif event.kind == "sw":
            software_j += model.cpu_active_w * event.duration_s
        elif event.kind == "reconfig":
            reconfig_j += model.reconfig_w * event.duration_s
        else:  # pragma: no cover - executor only emits the three kinds
            raise ConfigurationError(f"unknown timeline event kind {event.kind!r}")

    return EnergyReport(
        frames=frames,
        makespan_s=timeline.makespan_s,
        baseline_j=baseline_j,
        dynamic_j=dynamic_j,
        software_j=software_j,
        reconfig_j=reconfig_j,
    )
