"""The SoC power model.

Calibrated qualitatively against Fig. 4's orderings: the two-tile SoC_X
is the most energy-efficient (fewest/smallest powered reconfigurable
regions) while the four-tile SoC_Z is the fastest but least efficient
(more configured area burning clock/leakage power for the whole frame,
more accelerators active concurrently). Absolute watts are plausible
for a Virtex-7 design at 78 MHz but are not board measurements.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class PowerModel:
    """Power coefficients of the energy account."""

    #: Leakage + clock power of the static part, W per kLUT of static logic.
    static_w_per_klut: float = 0.012
    #: Clock/leakage power of a *configured* reconfigurable region,
    #: W per kLUT of region area. Charged for the whole frame — a loaded
    #: region burns clock power even while idle (no clock gating across
    #: the DFX boundary in the PR-ESP wrapper).
    region_w_per_klut: float = 0.035
    #: Fixed board overhead (DDR, clocking, I/O), W.
    board_w: float = 1.8
    #: CPU tile power while executing software stages, W.
    cpu_active_w: float = 2.4
    #: PRC + ICAP power during a reconfiguration window, W.
    reconfig_w: float = 0.9

    def __post_init__(self) -> None:
        for field_name in (
            "static_w_per_klut",
            "region_w_per_klut",
            "board_w",
            "cpu_active_w",
            "reconfig_w",
        ):
            if getattr(self, field_name) < 0:
                raise ValueError(f"{field_name} must be non-negative")

    def baseline_power_w(self, static_kluts: float, region_kluts_total: float) -> float:
        """Always-on power of a configured SoC (no accelerator active)."""
        return (
            self.board_w
            + self.static_w_per_klut * static_kluts
            + self.region_w_per_klut * region_kluts_total
        )


#: The model used by the benchmarks.
DEFAULT_POWER_MODEL = PowerModel()
