"""Unit helpers shared across the library.

The paper mixes units freely: CAD runtimes in minutes, reconfiguration
latencies in microseconds, bitstream sizes in KB, clock frequencies in
MHz. Internally the library standardizes on:

* time   — seconds (float)
* size   — bytes (int)
* clock  — hertz (float)

and converts at the edges with the helpers below.
"""

from __future__ import annotations

KIB = 1024
MIB = 1024 * KIB

US = 1e-6
MS = 1e-3
MINUTE = 60.0
HOUR = 3600.0

MHZ = 1e6


def minutes(value: float) -> float:
    """Convert minutes to seconds."""
    return value * MINUTE


def to_minutes(seconds: float) -> float:
    """Convert seconds to minutes."""
    return seconds / MINUTE


def kib(value: float) -> int:
    """Convert KiB to bytes (rounded to the nearest byte)."""
    return int(round(value * KIB))


def to_kib(num_bytes: int) -> float:
    """Convert bytes to KiB."""
    return num_bytes / KIB


def mhz(value: float) -> float:
    """Convert MHz to Hz."""
    return value * MHZ


def cycles_to_seconds(cycles: float, clock_hz: float) -> float:
    """Duration of ``cycles`` clock cycles at ``clock_hz``."""
    if clock_hz <= 0:
        raise ValueError(f"clock frequency must be positive, got {clock_hz}")
    return cycles / clock_hz


def seconds_to_cycles(seconds: float, clock_hz: float) -> int:
    """Number of whole clock cycles covering ``seconds`` at ``clock_hz``."""
    if clock_hz <= 0:
        raise ValueError(f"clock frequency must be positive, got {clock_hz}")
    return int(round(seconds * clock_hz))


def fmt_duration(seconds: float) -> str:
    """Human-readable duration: picks µs/ms/s/min as appropriate."""
    if seconds < 0:
        return "-" + fmt_duration(-seconds)
    if seconds < 1e-3:
        return f"{seconds / US:.1f}us"
    if seconds < 1.0:
        return f"{seconds / MS:.2f}ms"
    if seconds < 120.0:
        return f"{seconds:.2f}s"
    return f"{seconds / MINUTE:.1f}min"


def fmt_size(num_bytes: int) -> str:
    """Human-readable size in B/KB/MB."""
    if num_bytes < 0:
        return "-" + fmt_size(-num_bytes)
    if num_bytes < KIB:
        return f"{num_bytes}B"
    if num_bytes < MIB:
        return f"{num_bytes / KIB:.0f}KB"
    return f"{num_bytes / MIB:.2f}MB"
