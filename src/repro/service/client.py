"""Thin stdlib HTTP client for the service daemon.

The client the ``repro.api`` service verbs and the ``repro jobs`` CLI
ride: plain ``urllib`` requests, every body checked against the
versioned envelope before it is returned, HTTP failures surfaced as
typed exceptions (:class:`ServiceError` carries the status and the
machine-readable ``reason`` token — a 429 quota rejection is
``error.status == 429``, ``error.reason in ("tenant_queued", ...)``).
No third-party HTTP stack, matching the daemon's stdlib server.
"""

from __future__ import annotations

import hashlib
import json
import time
import urllib.error
import urllib.request
from typing import Callable, Dict, Optional, TypeVar
from urllib.parse import urlencode

from repro.errors import PrEspError
from repro.service.schema import check_envelope

#: Job states the poll loop treats as finished. ``dead`` is terminal
#: too: a dead-lettered job will never progress without an explicit
#: operator requeue, so waiting on it would only time out.
_TERMINAL = ("succeeded", "failed", "cancelled", "dead")

_T = TypeVar("_T")


def _retry_jitter(seed: int, attempt: int) -> float:
    """Deterministic jitter fraction in [0, 0.25) for one retry."""
    digest = hashlib.sha256(f"{seed}|client-retry|{attempt}".encode()).digest()
    return 0.25 * (int.from_bytes(digest[:8], "big") / 2**64)


class ServiceUnavailable(PrEspError):
    """The daemon could not be reached at all (connection refused...)."""


class ServiceError(PrEspError):
    """The daemon answered with an error envelope."""

    def __init__(self, status: int, reason: str, message: str) -> None:
        super().__init__(f"HTTP {status} ({reason}): {message}")
        self.status = status
        self.reason = reason


class ServiceClient:
    """Talks to one daemon at ``http://host:port``."""

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 8321,
        timeout: float = 30.0,
        retries: int = 3,
        retry_backoff_s: float = 0.05,
        seed: int = 0,
    ) -> None:
        self.base_url = f"http://{host}:{port}"
        self.timeout = timeout
        #: Transient-failure budget for the idempotent verbs (wait's
        #: polls, healthz): a daemon mid-restart refuses connections
        #: for a moment, which should read as "poll again", not crash
        #: the caller. Non-idempotent verbs (submit, cancel, requeue)
        #: never retry — a resend could double-apply.
        self.retries = retries
        self.retry_backoff_s = retry_backoff_s
        self.seed = int(seed)

    def _with_retries(self, call: Callable[[], _T]) -> _T:
        """Run an idempotent call, retrying transient unreachability.

        Seeded exponential backoff between attempts — deterministic
        like every other delay the platform draws, so two runs with
        the same seed retry at the same cadence.
        """
        attempt = 0
        while True:
            try:
                return call()
            except ServiceUnavailable:
                if attempt >= self.retries:
                    raise
                delay = self.retry_backoff_s * (2**attempt)
                time.sleep(delay * (1.0 + _retry_jitter(self.seed, attempt)))
                attempt += 1

    # ------------------------------------------------------------------
    # transport
    # ------------------------------------------------------------------
    def _request(
        self,
        method: str,
        path: str,
        payload: Optional[Dict] = None,
        kind: Optional[str] = None,
    ) -> Dict:
        body = None
        headers = {"Accept": "application/json"}
        if payload is not None:
            body = json.dumps(payload).encode("utf-8")
            headers["Content-Type"] = "application/json"
        request = urllib.request.Request(
            self.base_url + path, data=body, headers=headers, method=method
        )
        try:
            with urllib.request.urlopen(request, timeout=self.timeout) as response:
                document = json.loads(response.read())
        except urllib.error.HTTPError as error:
            raise self._service_error(error) from error
        except (urllib.error.URLError, OSError, TimeoutError) as error:
            raise ServiceUnavailable(
                f"cannot reach the service at {self.base_url}: {error}"
            ) from error
        return check_envelope(document, kind=kind)

    @staticmethod
    def _service_error(error: urllib.error.HTTPError) -> ServiceError:
        reason, message = "error", str(error)
        try:
            detail = json.loads(error.read()).get("error", {})
            reason = detail.get("reason", reason)
            message = detail.get("message", message)
        except (ValueError, AttributeError, OSError):
            pass
        return ServiceError(error.code, reason, message)

    # ------------------------------------------------------------------
    # verbs
    # ------------------------------------------------------------------
    def submit(
        self,
        config: str,
        kind: str = "build",
        tenant: str = "default",
        priority: int = 0,
        strategy: Optional[str] = None,
        frames: int = 1,
        deadline_s: Optional[float] = None,
        max_attempts: Optional[int] = None,
    ) -> Dict:
        """Submit one job; returns the accepted job record payload."""
        payload = {
            "schema_version": 1,
            "kind": "submit",
            "config": config,
            "job_kind": kind,
            "tenant": tenant,
            "priority": priority,
            "strategy": strategy,
            "frames": frames,
            "deadline_s": deadline_s,
            "max_attempts": max_attempts,
        }
        return self._request("POST", "/v1/jobs", payload=payload, kind="job")

    def status(self, job_id: str) -> Dict:
        return self._request("GET", f"/v1/jobs/{job_id}", kind="job")

    def jobs(
        self, tenant: Optional[str] = None, state: Optional[str] = None
    ) -> Dict:
        query = {}
        if tenant is not None:
            query["tenant"] = tenant
        if state is not None:
            query["state"] = state
        path = "/v1/jobs" + (f"?{urlencode(query)}" if query else "")
        return self._request("GET", path, kind="jobs")

    def cancel(self, job_id: str) -> Dict:
        return self._request("POST", f"/v1/jobs/{job_id}/cancel", kind="job")

    def requeue(self, job_id: str) -> Dict:
        """Revive one dead-lettered job (409 ``not_dead`` otherwise)."""
        return self._request("POST", f"/v1/jobs/{job_id}/requeue", kind="job")

    def result(self, job_id: str) -> Dict:
        return self._request("GET", f"/v1/jobs/{job_id}/result", kind="result")

    def artifacts(self, job_id: str) -> Dict:
        return self._request("GET", f"/v1/jobs/{job_id}/artifacts", kind="artifacts")

    def healthz(self) -> Dict:
        """The health envelope; a 503 verdict is returned, not raised.

        A critical daemon answers 503 *with* a full health body, so
        the 503 is decoded like the 200 instead of raised. Transient
        unreachability (a daemon mid-restart) is retried with seeded
        backoff before :class:`ServiceUnavailable` escapes.
        """
        return self._with_retries(self._healthz_once)

    def _healthz_once(self) -> Dict:
        request = urllib.request.Request(
            self.base_url + "/healthz", headers={"Accept": "application/json"}
        )
        try:
            with urllib.request.urlopen(request, timeout=self.timeout) as response:
                document = json.loads(response.read())
        except urllib.error.HTTPError as error:
            if error.code != 503:
                raise self._service_error(error) from error
            try:
                document = json.loads(error.read())
            except ValueError:
                raise self._service_error(error) from error
        except (urllib.error.URLError, OSError, TimeoutError) as error:
            raise ServiceUnavailable(
                f"cannot reach the service at {self.base_url}: {error}"
            ) from error
        return check_envelope(document, kind="health")

    def metrics(self) -> str:
        """The raw Prometheus text page."""
        request = urllib.request.Request(
            self.base_url + "/metrics", headers={"Accept": "text/plain"}
        )
        try:
            with urllib.request.urlopen(request, timeout=self.timeout) as response:
                return response.read().decode("utf-8")
        except (urllib.error.URLError, OSError, TimeoutError) as error:
            raise ServiceUnavailable(
                f"cannot reach the service at {self.base_url}: {error}"
            ) from error

    # ------------------------------------------------------------------
    def wait(
        self, job_id: str, timeout: float = 120.0, poll_s: float = 0.05
    ) -> Dict:
        """Poll until the job reaches a terminal state; returns it.

        Raises :class:`ServiceUnavailable` on timeout — from the
        caller's seat an unresponsive job and an unreachable daemon
        call for the same remedy. Each poll retries transient
        connection failures with seeded backoff, so a daemon restart
        mid-wait doesn't abort the wait.
        """
        deadline = time.monotonic() + timeout
        while True:
            record = self._with_retries(lambda: self.status(job_id))
            if record.get("state") in _TERMINAL:
                return record
            if time.monotonic() >= deadline:
                raise ServiceUnavailable(
                    f"job {job_id} still {record.get('state')!r} after "
                    f"{timeout:g}s"
                )
            time.sleep(poll_s)
