"""The multi-tenant build/deploy service daemon.

The paper's flow is invoke-per-process: every ``repro.api`` verb
constructs a platform, warms the flow cache and the worker pool, runs
once and exits. This package turns the platform into a long-running
*service*: a priority job queue with per-tenant admission control
(:mod:`repro.service.queue`), a supervisor feeding the persistent
:class:`~repro.flow.batch.BatchBuilder` warm pool and one shared
:class:`~repro.flow.cache.FlowCache` (:mod:`repro.service.supervisor`),
and an HTTP/JSON API (:mod:`repro.service.httpd`) whose request and
response bodies are governed by the versioned schemas of
:mod:`repro.service.schema`. :mod:`repro.service.client` is the thin
HTTP client the ``repro.api`` verbs and the ``repro jobs`` CLI ride.

Jobs are crash-safe: every build job writes through the flow
checkpointer, so a SIGKILLed daemon restarted on the same state
directory requeues its in-flight jobs and resumes them byte-
identically.
"""

from repro.service.client import ServiceClient, ServiceUnavailable
from repro.service.daemon import BuildService, ServiceConfig
from repro.service.jobs import JobRecord, JobSpec, JobState
from repro.service.queue import AdmissionError, JobQueue, TenantQuota
from repro.service.schema import SCHEMA_VERSION, SchemaError, envelope

__all__ = [
    "AdmissionError",
    "BuildService",
    "JobQueue",
    "JobRecord",
    "JobSpec",
    "JobState",
    "SCHEMA_VERSION",
    "SchemaError",
    "ServiceClient",
    "ServiceConfig",
    "ServiceUnavailable",
    "TenantQuota",
    "envelope",
]
