"""The multi-tenant build/deploy service daemon.

The paper's flow is invoke-per-process: every ``repro.api`` verb
constructs a platform, warms the flow cache and the worker pool, runs
once and exits. This package turns the platform into a long-running
*service*: a priority job queue with per-tenant admission control
(:mod:`repro.service.queue`), a supervisor feeding the persistent
:class:`~repro.flow.batch.BatchBuilder` warm pool and one shared
:class:`~repro.flow.cache.FlowCache` (:mod:`repro.service.supervisor`),
and an HTTP/JSON API (:mod:`repro.service.httpd`) whose request and
response bodies are governed by the versioned schemas of
:mod:`repro.service.schema`. :mod:`repro.service.client` is the thin
HTTP client the ``repro.api`` verbs and the ``repro jobs`` CLI ride.

Jobs are crash-safe: every build job writes through the flow
checkpointer, so a SIGKILLed daemon restarted on the same state
directory requeues its in-flight jobs and resumes them byte-
identically.

The service is also *self-healing*: a seeded fault model
(:mod:`repro.service.faults`) injects worker crashes, hangs, store IO
errors and torn writes; a deadline watchdog requeues timed-out
attempts with seeded backoff; jobs that exhaust their attempt budget
dead-letter into a terminal ``dead`` state awaiting a manual requeue;
and a circuit breaker (:mod:`repro.service.breaker`) sheds admissions
while the backend's failure rate burns past its threshold.
"""

from repro.service.breaker import BreakerPolicy, BreakerState, CircuitBreaker
from repro.service.client import ServiceClient, ServiceError, ServiceUnavailable
from repro.service.daemon import BuildService, ServiceConfig
from repro.service.faults import (
    NO_SERVICE_FAULTS,
    ServiceFaultError,
    ServiceFaultKind,
    ServiceFaultModel,
)
from repro.service.jobs import JobRecord, JobSpec, JobState
from repro.service.queue import AdmissionError, JobQueue, TenantQuota
from repro.service.schema import SCHEMA_VERSION, SchemaError, envelope

__all__ = [
    "AdmissionError",
    "BreakerPolicy",
    "BreakerState",
    "BuildService",
    "CircuitBreaker",
    "JobQueue",
    "JobRecord",
    "JobSpec",
    "JobState",
    "NO_SERVICE_FAULTS",
    "SCHEMA_VERSION",
    "SchemaError",
    "ServiceClient",
    "ServiceConfig",
    "ServiceError",
    "ServiceFaultError",
    "ServiceFaultKind",
    "ServiceFaultModel",
    "ServiceUnavailable",
    "TenantQuota",
    "envelope",
]
