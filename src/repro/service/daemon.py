"""The daemon: one supervisor + one HTTP server, as a unit.

:class:`BuildService` is what ``repro serve`` runs and what the
integration tests embed: construct with a :class:`ServiceConfig`,
``start()`` (recovers persisted jobs, binds the port, spins the worker
and acceptor threads), ``stop()`` (drains and releases everything).
``port=0`` binds an ephemeral port — read the real one from
``service.port`` — so tests and parallel daemons never collide.

Shutdown comes in two shapes. A SIGKILL (or power loss) is the crash
path PR 9 built for: write-through records + checkpoints replay on the
next start. ``serve_forever`` adds the *graceful* path for SIGTERM:
stop admitting, give in-flight jobs the drain deadline to finish, then
checkpoint-and-requeue whatever is still running — so an orchestrator's
routine restart never burns an attempt budget or loses a client's job.
"""

from __future__ import annotations

import signal
import threading
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Optional, Union

from repro.obs.logconfig import get_logger
from repro.service.breaker import BreakerPolicy
from repro.service.faults import NO_SERVICE_FAULTS, ServiceFaultModel
from repro.service.httpd import ServiceHTTPServer
from repro.service.queue import TenantQuota
from repro.service.supervisor import Supervisor

logger = get_logger("service.daemon")


@dataclass
class ServiceConfig:
    """Everything a daemon run needs, as one value.

    ``state_dir`` holds the durable world: job records, per-job
    checkpoint directories and the flow cache's disk tier — point a
    restarted daemon at the same directory and it resumes where the
    killed one stopped. ``workers`` is the number of supervisor threads
    draining the queue; ``jobs`` the warm build pool's process count.
    ``quotas`` maps tenant names onto admission limits (missing tenants
    get ``default_quota``).

    The resilience knobs: ``faults`` injects seeded service-tier
    faults (worker crashes, hangs, store IO errors, torn writes);
    ``default_deadline_s``/``tenant_deadlines`` bound each attempt
    (``None`` = no watchdog); ``default_max_attempts`` is the retry
    budget before a job dead-letters; ``breaker`` shapes the admission
    circuit breaker; ``drain_s`` is how long a SIGTERM waits for
    in-flight jobs before checkpoint-and-requeueing them.
    """

    state_dir: Union[str, Path]
    host: str = "127.0.0.1"
    port: int = 8321
    workers: int = 2
    jobs: int = 2
    seed: int = 0
    queue_capacity: Optional[int] = None
    quotas: Dict[str, TenantQuota] = field(default_factory=dict)
    default_quota: TenantQuota = field(default_factory=TenantQuota)
    cache_entries: int = 256
    faults: ServiceFaultModel = NO_SERVICE_FAULTS
    default_deadline_s: Optional[float] = None
    tenant_deadlines: Dict[str, float] = field(default_factory=dict)
    default_max_attempts: int = 3
    breaker: BreakerPolicy = field(default_factory=BreakerPolicy)
    drain_s: float = 10.0


class BuildService:
    """The runnable daemon (also a context manager)."""

    def __init__(self, config: ServiceConfig) -> None:
        self.config = config
        self.supervisor = Supervisor(
            state_dir=config.state_dir,
            workers=config.workers,
            jobs=config.jobs,
            seed=config.seed,
            queue_capacity=config.queue_capacity,
            quotas=config.quotas,
            default_quota=config.default_quota,
            cache_entries=config.cache_entries,
            faults=config.faults,
            default_deadline_s=config.default_deadline_s,
            tenant_deadlines=config.tenant_deadlines,
            default_max_attempts=config.default_max_attempts,
            breaker_policy=config.breaker,
        )
        self._server: Optional[ServiceHTTPServer] = None
        self._acceptor: Optional[threading.Thread] = None
        self._terminated = threading.Event()

    # ------------------------------------------------------------------
    @property
    def port(self) -> int:
        """The bound port (resolves ``port=0`` to the real one)."""
        if self._server is None:
            return self.config.port
        return self._server.server_address[1]

    @property
    def url(self) -> str:
        return f"http://{self.config.host}:{self.port}"

    def start(self) -> "BuildService":
        """Recover state, start the workers, bind and serve."""
        if self._server is not None:
            return self
        self.supervisor.start()
        self._server = ServiceHTTPServer(
            (self.config.host, self.config.port), self.supervisor
        )
        self._acceptor = threading.Thread(
            target=self._server.serve_forever,
            name="service-http",
            daemon=True,
        )
        self._acceptor.start()
        return self

    def stop(self, timeout: float = 10.0, drain: bool = False) -> None:
        """Stop accepting, drain the workers, shut the pool down.

        With ``drain`` the HTTP door closes first (no new admissions),
        in-flight jobs get ``timeout`` seconds to finish, and any still
        running are flipped back to ``queued`` with their checkpoints —
        the next ``start()`` resumes them byte-identically.
        """
        server, self._server = self._server, None
        if server is not None:
            server.shutdown()
            server.server_close()
        if self._acceptor is not None:
            self._acceptor.join(timeout=timeout)
            self._acceptor = None
        self.supervisor.stop(timeout=timeout, drain=drain)

    def serve_forever(self) -> None:
        """Blocking run (the ``repro serve`` path): serve until
        KeyboardInterrupt or SIGTERM, then drain gracefully."""
        self.start()
        assert self._acceptor is not None

        def on_sigterm(signum, frame) -> None:
            logger.info("SIGTERM: draining (deadline %.1fs)", self.config.drain_s)
            self._terminated.set()

        previous = None
        try:
            previous = signal.signal(signal.SIGTERM, on_sigterm)
        except ValueError:
            # Not the main thread (embedded run): SIGTERM handling is
            # the embedder's job; stop() still drains on request.
            previous = None
        try:
            while self._acceptor.is_alive() and not self._terminated.is_set():
                self._acceptor.join(timeout=0.5)
        except KeyboardInterrupt:
            pass
        finally:
            if previous is not None:
                signal.signal(signal.SIGTERM, previous)
            self.stop(timeout=self.config.drain_s, drain=True)

    def __enter__(self) -> "BuildService":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()
