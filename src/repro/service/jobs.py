"""The service's job model: specs, records, IDs and the durable store.

A *job* is one unit of admitted work — a DPR-flow build or a WAMI
deployment of a named SoC design — owned by a tenant and carrying a
priority. The model is deliberately plain data:

* :class:`JobSpec` — what the client asked for (immutable);
* :class:`JobRecord` — what happened to it (state machine + outcome);
* :class:`JobStore` — one atomically-written JSON file per job under
  ``<state_dir>/jobs/``, so a SIGKILLed daemon reloads every record on
  restart and requeues the in-flight ones.

Job IDs are deterministic and seeded, never wall-clock or random:
:class:`JobIdMinter` wraps one
:class:`~repro.obs.context.RequestIdFactory` per tenant
(``job-<hash8>-<n>``), and on restart advances each factory past the
highest persisted sequence so recovered daemons keep minting unique,
reproducible IDs.
"""

from __future__ import annotations

import enum
import json
import os
import re
import threading
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Tuple

from repro.errors import PrEspError
from repro.obs.context import RequestIdFactory, TelemetryContext
from repro.obs.logconfig import get_logger
from repro.service.faults import (
    NO_SERVICE_FAULTS,
    ServiceFaultKind,
    ServiceFaultModel,
)

logger = get_logger("service.jobs")

#: Job kinds the supervisor knows how to execute.
JOB_KINDS = ("build", "deploy")

#: File-name shape of a persisted record (also an ID sanity filter).
_JOB_FILE = re.compile(r"^(?P<job_id>job-[0-9a-f]{8}-\d{4,})\.json$")


class JobError(PrEspError):
    """Misuse of the job model (bad spec, bad transition, bad store)."""


class JobState(enum.Enum):
    """Lifecycle of one job.

    ``QUEUED -> RUNNING -> SUCCEEDED | FAILED``, with ``CANCELLED``
    reachable only from ``QUEUED`` (a running build is not preempted;
    cancellation of running work is recorded as *requested* and
    reported, never forged into a terminal state). ``DEAD`` is the
    dead-letter state: a job whose attempts (crash reruns, watchdog
    timeouts) exhausted its budget. It is terminal for clients — but
    unlike the other terminal states it has one deliberate exit, the
    operator's ``POST /v1/jobs/<id>/requeue``, which revives it back
    to ``QUEUED`` with a fresh attempt budget.
    """

    QUEUED = "queued"
    RUNNING = "running"
    SUCCEEDED = "succeeded"
    FAILED = "failed"
    CANCELLED = "cancelled"
    DEAD = "dead"

    @property
    def terminal(self) -> bool:
        return self in (
            JobState.SUCCEEDED,
            JobState.FAILED,
            JobState.CANCELLED,
            JobState.DEAD,
        )


#: Legal state transitions (anything else is a supervisor bug).
#: ``RUNNING -> QUEUED`` is crash/timeout requeue; ``QUEUED -> DEAD``
#: is recovery refusing a poison job; ``DEAD -> QUEUED`` is the manual
#: dead-letter revive.
_TRANSITIONS = {
    JobState.QUEUED: {JobState.RUNNING, JobState.CANCELLED, JobState.DEAD},
    JobState.RUNNING: {
        JobState.SUCCEEDED,
        JobState.FAILED,
        JobState.QUEUED,
        JobState.DEAD,
    },
    JobState.SUCCEEDED: set(),
    JobState.FAILED: set(),
    JobState.CANCELLED: set(),
    JobState.DEAD: {JobState.QUEUED},
}


@dataclass(frozen=True)
class JobSpec:
    """What one submit asked for.

    ``config`` is a paper design name or an ``.esp_config`` path the
    daemon can read; ``priority`` orders the queue (higher first,
    FIFO within a priority); ``frames`` only applies to deploy jobs.
    ``deadline_s`` bounds one execution attempt (``None`` falls back
    to the daemon's per-tenant, then global default); ``max_attempts``
    bounds executions including crash reruns before the job is
    dead-lettered (``None`` = the daemon default).
    """

    config: str
    kind: str = "build"
    tenant: str = "default"
    priority: int = 0
    strategy: Optional[str] = None
    frames: int = 1
    deadline_s: Optional[float] = None
    max_attempts: Optional[int] = None

    def __post_init__(self) -> None:
        if self.kind not in JOB_KINDS:
            raise JobError(
                f"unknown job kind {self.kind!r}; choose from {', '.join(JOB_KINDS)}"
            )
        if not self.config:
            raise JobError("job spec needs a config name")
        if not self.tenant:
            raise JobError("job spec needs a tenant")
        if self.frames <= 0:
            raise JobError(f"frames must be positive, got {self.frames}")
        if self.deadline_s is not None and self.deadline_s <= 0:
            raise JobError(f"deadline must be positive, got {self.deadline_s}")
        if self.max_attempts is not None and self.max_attempts < 1:
            raise JobError(
                f"max_attempts must be >= 1, got {self.max_attempts}"
            )

    def to_dict(self) -> Dict:
        return {
            "config": self.config,
            "kind": self.kind,
            "tenant": self.tenant,
            "priority": self.priority,
            "strategy": self.strategy,
            "frames": self.frames,
            "deadline_s": self.deadline_s,
            "max_attempts": self.max_attempts,
        }

    @classmethod
    def from_dict(cls, raw: Dict) -> "JobSpec":
        try:
            deadline = raw.get("deadline_s")
            max_attempts = raw.get("max_attempts")
            return cls(
                config=raw["config"],
                kind=raw.get("kind", "build"),
                tenant=raw.get("tenant", "default"),
                priority=int(raw.get("priority", 0)),
                strategy=raw.get("strategy"),
                frames=int(raw.get("frames", 1)),
                deadline_s=None if deadline is None else float(deadline),
                max_attempts=None if max_attempts is None else int(max_attempts),
            )
        except (KeyError, TypeError, ValueError) as error:
            raise JobError(f"malformed job spec: {error}") from error


@dataclass
class JobRecord:
    """One job's full history, as persisted and as served by the API.

    ``submit_seq`` is the daemon-global admission order (the FIFO tie
    break inside a priority class); ``start_seq`` is assigned when a
    worker picks the job up — the observable scheduling order the
    priority tests assert on. ``attempts`` counts executions including
    crash-recovery reruns. ``elapsed_s`` is wall time of the *latest*
    attempt (operational, never part of a determinism contract);
    ``result`` is the modelled outcome summary, which *is* byte-stable
    for same-seed runs — that is what the resume-equality checks
    compare.
    """

    job_id: str
    spec: JobSpec
    state: JobState = JobState.QUEUED
    submit_seq: int = 0
    start_seq: Optional[int] = None
    attempts: int = 0
    timeouts: int = 0
    requeues: int = 0
    cancel_requested: bool = False
    cached: bool = False
    resumed_stages: Tuple[str, ...] = ()
    elapsed_s: float = 0.0
    result: Optional[Dict] = None
    error: Optional[Dict] = None

    def transition(self, state: JobState) -> None:
        if state not in _TRANSITIONS[self.state]:
            raise JobError(
                f"job {self.job_id}: illegal transition "
                f"{self.state.value} -> {state.value}"
            )
        self.state = state

    def context(self) -> TelemetryContext:
        """The telemetry context the job's execution runs under."""
        return TelemetryContext(
            request_id=self.job_id,
            tenant=self.spec.tenant,
            attrs={"verb": "job", "job_kind": self.spec.kind},
        )

    def to_dict(self) -> Dict:
        payload: Dict = {
            "job_id": self.job_id,
            "spec": self.spec.to_dict(),
            "state": self.state.value,
            "submit_seq": self.submit_seq,
            "start_seq": self.start_seq,
            "attempts": self.attempts,
            "timeouts": self.timeouts,
            "requeues": self.requeues,
            "cancel_requested": self.cancel_requested,
            "cached": self.cached,
            "resumed_stages": list(self.resumed_stages),
            "elapsed_s": self.elapsed_s,
        }
        if self.result is not None:
            payload["result"] = self.result
        if self.error is not None:
            payload["error"] = self.error
        return payload

    @classmethod
    def from_dict(cls, raw: Dict) -> "JobRecord":
        try:
            return cls(
                job_id=raw["job_id"],
                spec=JobSpec.from_dict(raw["spec"]),
                state=JobState(raw["state"]),
                submit_seq=int(raw.get("submit_seq", 0)),
                start_seq=raw.get("start_seq"),
                attempts=int(raw.get("attempts", 0)),
                timeouts=int(raw.get("timeouts", 0)),
                requeues=int(raw.get("requeues", 0)),
                cancel_requested=bool(raw.get("cancel_requested", False)),
                cached=bool(raw.get("cached", False)),
                resumed_stages=tuple(raw.get("resumed_stages", ())),
                elapsed_s=float(raw.get("elapsed_s", 0.0)),
                result=raw.get("result"),
                error=raw.get("error"),
            )
        except (KeyError, TypeError, ValueError) as error:
            raise JobError(f"malformed job record: {error}") from error


class JobIdMinter:
    """Deterministic per-tenant job IDs on the RequestIdFactory scheme.

    One seeded factory per tenant keeps ID sequences disjoint across
    tenants and reproducible across daemon runs; :meth:`advance_past`
    fast-forwards a tenant's counter beyond its persisted jobs so a
    restarted daemon never re-mints a used ID.
    """

    def __init__(self, seed: int = 0) -> None:
        self.seed = int(seed)
        self._factories: Dict[str, RequestIdFactory] = {}
        self._lock = threading.Lock()

    def _factory(self, tenant: str) -> RequestIdFactory:
        factory = self._factories.get(tenant)
        if factory is None:
            factory = self._factories[tenant] = RequestIdFactory(
                seed=self.seed, tenant=tenant
            )
        return factory

    def mint(self, tenant: str) -> str:
        with self._lock:
            return self._factory(tenant).mint("job").request_id

    def advance_past(self, records: List[JobRecord]) -> None:
        """Skip every sequence number already used by ``records``."""
        highest: Dict[str, int] = {}
        for record in records:
            sequence = _job_sequence(record.job_id)
            if sequence is None:
                continue
            tenant = record.spec.tenant
            highest[tenant] = max(highest.get(tenant, 0), sequence)
        with self._lock:
            for tenant, top in highest.items():
                factory = self._factory(tenant)
                while factory.minted < top:
                    factory.mint("job")


def _job_sequence(job_id: str) -> Optional[int]:
    tail = job_id.rsplit("-", 1)[-1]
    return int(tail) if tail.isdigit() else None


class JobStore:
    """Durable job records: one atomic JSON file per job.

    Writes go through tmp-then-rename with a writer-unique tmp name, so
    a SIGKILL can never leave a torn record, and concurrent worker
    threads can persist different jobs without coordination. A file
    that fails to parse on load is skipped with a warning — one corrupt
    record must not brick the daemon.

    ``faults`` wires the seeded :class:`~repro.service.faults.
    ServiceFaultModel` into the write path: a ``STORE_IO`` draw raises
    a plain transient :class:`OSError`; a ``TORN_WRITE`` draw leaves a
    truncated ``*.tmp`` file behind (never renamed — the published
    record cannot be the torn artifact) and then raises. Callers
    retry via :meth:`save_retrying`.
    """

    def __init__(
        self, directory, faults: ServiceFaultModel = NO_SERVICE_FAULTS
    ) -> None:
        self.directory = Path(directory)
        self.faults = faults
        self._lock = threading.Lock()
        self._tmp_count = 0

    def path_for(self, job_id: str) -> Path:
        return self.directory / f"{job_id}.json"

    def save(self, record: JobRecord) -> None:
        payload = json.dumps(record.to_dict(), indent=2, sort_keys=True)
        path = self.path_for(record.job_id)
        path.parent.mkdir(parents=True, exist_ok=True)
        with self._lock:
            self._tmp_count += 1
            tmp = path.with_name(f".{path.name}.{os.getpid()}.{self._tmp_count}.tmp")
        fault = self.faults.store_fault(record.job_id)
        if fault is ServiceFaultKind.STORE_IO:
            raise OSError(f"injected IO error saving {record.job_id}")
        if fault is ServiceFaultKind.TORN_WRITE:
            # The write dies mid-flight: half the payload reaches the
            # tmp file, the rename never happens.
            tmp.write_text(payload[: max(1, len(payload) // 2)])
            raise OSError(f"injected torn write saving {record.job_id}")
        tmp.write_text(payload + "\n")
        os.replace(tmp, path)

    def save_retrying(
        self, record: JobRecord, attempts: int = 4, backoff_s: float = 0.01
    ) -> bool:
        """Persist with bounded retries of transient IO errors.

        Returns True when the record reached disk. After the retry
        budget the failure is *logged*, not raised — the in-memory
        table still holds the truth and a later transition will try
        again; losing durability for one transition must not take a
        worker thread (or the daemon) down with it.
        """
        for attempt in range(1, attempts + 1):
            try:
                self.save(record)
                return True
            except OSError as error:
                if attempt == attempts:
                    logger.error(
                        "giving up persisting %s after %d attempts: %s",
                        record.job_id,
                        attempts,
                        error,
                    )
                    return False
                time.sleep(backoff_s * 2 ** (attempt - 1))
        return False

    def load(self, job_id: str) -> Optional[JobRecord]:
        try:
            raw = json.loads(self.path_for(job_id).read_text())
        except (OSError, ValueError):
            return None
        try:
            return JobRecord.from_dict(raw)
        except JobError:
            return None

    def load_all(self) -> List[JobRecord]:
        """Every readable record, admission order."""
        records: List[JobRecord] = []
        if not self.directory.is_dir():
            return records
        for path in sorted(self.directory.glob("*.json")):
            if _JOB_FILE.match(path.name) is None:
                continue
            try:
                record = JobRecord.from_dict(json.loads(path.read_text()))
            except (OSError, ValueError, JobError) as error:
                logger.warning("skipping unreadable job record %s: %s", path, error)
                continue
            records.append(record)
        records.sort(key=lambda record: (record.submit_seq, record.job_id))
        return records
