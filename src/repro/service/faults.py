"""A deterministic fault model for the service tier itself.

The CAD layer loses Vivado jobs (:mod:`repro.vivado.faults`) and the
runtime loses reconfigurations (:mod:`repro.runtime.faults`); this
module models what the *daemon's own machinery* loses — crashed worker
threads, workers that wedge and never return, job-store writes that
hit transient IO errors, and writes torn mid-flight. Same discipline
as its two siblings:

* every stochastic draw is a pure SHA-256 hash of ``(seed, kind,
  job_id, attempt)``, so the fault timeline of a daemon run depends
  only on the seed and the job identities — never on worker-thread
  interleaving, queue order, or how many restarts came before;
* targeted :meth:`ServiceFaultModel.inject` arming consumes counts in
  attempt order, for tests and the ``--inject-service-fault`` CLI;
* :data:`NO_SERVICE_FAULTS` is the always-healthy shared model that
  refuses injection so one test cannot poison every other run.

The supervisor consults the model at the top of each job attempt
(``WORKER_CRASH`` / ``SLOW_WORKER``) and the :class:`~repro.service.
jobs.JobStore` consults it per save (``STORE_IO`` / ``TORN_WRITE``).
A torn write deliberately leaves a truncated ``*.tmp`` file behind —
the atomic tmp-then-rename protocol means the durable record is never
the corrupted artifact, and recovery must shrug the junk off.
"""

from __future__ import annotations

import enum
import hashlib
import threading
from typing import Dict, Mapping, Optional, Tuple

from repro.errors import PrEspError


class ServiceFaultError(PrEspError):
    """An injected (or drawn) service-tier fault fired.

    ``kind`` is the :class:`ServiceFaultKind` value token; the
    supervisor treats these as *retryable* infrastructure failures
    (requeue with backoff, dead-letter at the attempt cap) — unlike an
    application error, which fails the job outright.
    """

    def __init__(self, kind: "ServiceFaultKind", message: str) -> None:
        super().__init__(message)
        self.kind = kind


class ServiceFaultKind(enum.Enum):
    """The four service-tier failure modes the model can draw."""

    #: The worker executing the job dies mid-attempt: the attempt is
    #: lost, the job must be requeued and re-run from its checkpoint.
    WORKER_CRASH = "crash"
    #: The worker wedges: it neither finishes nor fails until the
    #: supervisor's deadline watchdog abandons the attempt.
    SLOW_WORKER = "slow"
    #: A job-store write fails with a transient IO error (full disk,
    #: EIO, a flaky network mount) and must be retried.
    STORE_IO = "io"
    #: A job-store write is torn mid-flight: a truncated tmp file is
    #: left on disk and the write reports failure. The atomic rename
    #: protocol guarantees the *published* record is never the torn
    #: artifact.
    TORN_WRITE = "torn"


#: Kinds the supervisor draws per job attempt (stacked: at most one
#: fires per attempt, like the runtime transfer kinds).
EXECUTION_KINDS = (ServiceFaultKind.WORKER_CRASH, ServiceFaultKind.SLOW_WORKER)

#: Kinds the job store draws per save.
STORE_KINDS = (ServiceFaultKind.STORE_IO, ServiceFaultKind.TORN_WRITE)


def _unit_draw(*parts: object) -> float:
    """A deterministic uniform draw in [0, 1) keyed by ``parts``.

    SHA-256 over the joined key gives order-independence: the same
    (seed, kind, job_id, attempt) tuple draws the same number
    whichever worker thread asks first, before or after any restart.
    """
    key = "|".join(str(p) for p in parts).encode("utf-8")
    digest = hashlib.sha256(key).digest()
    return int.from_bytes(digest[:8], "big") / float(1 << 64)


class ServiceFaultModel:
    """Seeded, order-independent service-tier failures.

    ``rates`` maps a :class:`ServiceFaultKind` to its per-attempt (or
    per-save) failure probability; absent kinds never fail
    stochastically. The two execution kinds are stacked into one draw
    per attempt and the two store kinds into one draw per save, so
    each pair's rates must sum below 1.

    Execution draws are keyed by the job's *attempt number* (persisted
    on the record), store draws by a per-job save counter — both
    identities survive a daemon restart, so a replayed run re-draws
    the same faults. Targeted injections are consumed in arming order:
    ``inject(kind, count=n)`` makes the next ``n`` consultations of
    that kind fire deterministically, regardless of the rates.
    """

    def __init__(
        self,
        seed: int = 0,
        rates: Optional[Mapping[ServiceFaultKind, float]] = None,
        hang_s: float = 30.0,
    ) -> None:
        for kind, rate in (rates or {}).items():
            if not isinstance(kind, ServiceFaultKind):
                raise PrEspError(
                    f"fault rates must be keyed by ServiceFaultKind, got {kind!r}"
                )
            if not 0.0 <= rate < 1.0:
                raise PrEspError(
                    f"failure probability for {kind.value} must be in [0, 1), "
                    f"got {rate}"
                )
        if hang_s <= 0:
            raise PrEspError(f"hang_s must be positive, got {hang_s}")
        self.seed = int(seed)
        self.rates: Dict[ServiceFaultKind, float] = dict(rates or {})
        for pair, label in ((EXECUTION_KINDS, "crash + slow"), (STORE_KINDS, "io + torn")):
            total = sum(self.rates.get(k, 0.0) for k in pair)
            if total >= 1.0:
                raise PrEspError(
                    f"{label} rates are stacked into one draw and must sum "
                    f"below 1, got {total}"
                )
        #: How long a SLOW_WORKER fault wedges before giving up on its
        #: own (the watchdog normally abandons it much earlier).
        self.hang_s = float(hang_s)
        self._injected: Dict[ServiceFaultKind, int] = {}
        self._save_counts: Dict[str, int] = {}
        self._lock = threading.Lock()
        #: Faults this model produced, by kind value (shared accounting
        #: for stochastic draws and targeted injections).
        self.fired: Dict[str, int] = {}

    @property
    def enabled(self) -> bool:
        """True when any stochastic rate or injection is armed."""
        return bool(self.rates) or bool(self._injected)

    # ------------------------------------------------------------------
    def inject(self, kind: ServiceFaultKind, count: int = 1) -> None:
        """Arm ``count`` deterministic faults of ``kind``.

        Execution kinds fire on the next ``count`` job attempts (any
        job); store kinds on the next ``count`` saves.
        """
        if not isinstance(kind, ServiceFaultKind):
            raise PrEspError(f"inject needs a ServiceFaultKind, got {kind!r}")
        if count <= 0:
            raise PrEspError(f"fault count must be positive, got {count}")
        with self._lock:
            self._injected[kind] = self._injected.get(kind, 0) + count

    def injected_count(self, kind: ServiceFaultKind) -> int:
        with self._lock:
            return self._injected.get(kind, 0)

    def _consume_injection(self, kinds: Tuple[ServiceFaultKind, ...]):
        for kind in kinds:
            if self._injected.get(kind, 0) > 0:
                self._injected[kind] -= 1
                if self._injected[kind] == 0:
                    del self._injected[kind]
                return kind
        return None

    def _record(self, kind: ServiceFaultKind) -> ServiceFaultKind:
        self.fired[kind.value] = self.fired.get(kind.value, 0) + 1
        return kind

    def _stacked_draw(
        self,
        kinds: Tuple[ServiceFaultKind, ...],
        *key: object,
    ) -> Optional[ServiceFaultKind]:
        """One draw shared by ``kinds``: at most one fires."""
        draw = _unit_draw(self.seed, "/".join(k.value for k in kinds), *key)
        threshold = 0.0
        for kind in kinds:
            threshold += self.rates.get(kind, 0.0)
            if draw < threshold:
                return kind
        return None

    # ------------------------------------------------------------------
    def execution_fault(
        self, job_id: str, attempt: int
    ) -> Optional[ServiceFaultKind]:
        """The fault (if any) hitting ``attempt`` (1-based) of a job."""
        with self._lock:
            injected = self._consume_injection(EXECUTION_KINDS)
            if injected is not None:
                return self._record(injected)
            drawn = self._stacked_draw(EXECUTION_KINDS, job_id, attempt)
            if drawn is not None:
                return self._record(drawn)
            return None

    def store_fault(self, job_id: str) -> Optional[ServiceFaultKind]:
        """The fault (if any) hitting the next save of ``job_id``."""
        with self._lock:
            save = self._save_counts.get(job_id, 0) + 1
            self._save_counts[job_id] = save
            injected = self._consume_injection(STORE_KINDS)
            if injected is not None:
                return self._record(injected)
            drawn = self._stacked_draw(STORE_KINDS, job_id, save)
            if drawn is not None:
                return self._record(drawn)
            return None

    # ------------------------------------------------------------------
    def backoff_s(
        self, job_id: str, attempt: int, base_s: float, cap_s: float
    ) -> float:
        """Seeded exponential backoff before requeueing ``attempt``.

        ``min(base * 2**(attempt-1), cap)`` stretched by a seeded
        jitter in [1, 1.25) — the service-tier mirror of the CAD
        retry policy, in real seconds.
        """
        base = min(base_s * 2.0 ** max(0, attempt - 1), cap_s)
        jitter = 0.25 * _unit_draw(self.seed, "backoff", job_id, attempt)
        return base * (1.0 + jitter)

    def fingerprint(self) -> Dict:
        """JSON form of everything that can change a run's timeline."""
        with self._lock:
            return {
                "seed": self.seed,
                "rates": {
                    kind.value: rate
                    for kind, rate in sorted(
                        self.rates.items(), key=lambda kv: kv[0].value
                    )
                },
                "injected": {
                    kind.value: count
                    for kind, count in sorted(
                        self._injected.items(), key=lambda kv: kv[0].value
                    )
                },
                "hang_s": self.hang_s,
            }


class _NoServiceFaults(ServiceFaultModel):
    """The always-healthy model the service defaults to."""

    def __init__(self) -> None:
        super().__init__(seed=0, rates=None)

    def inject(self, kind: ServiceFaultKind, count: int = 1) -> None:
        raise PrEspError(
            "cannot inject faults into the shared NO_SERVICE_FAULTS model; "
            "construct a ServiceFaultModel instead"
        )


#: Shared disabled model: no worker ever crashes, no save ever tears.
NO_SERVICE_FAULTS = _NoServiceFaults()
