"""A health-driven circuit breaker in front of job admission.

Static quotas (:mod:`repro.service.queue`) bound how much work each
tenant may park on the daemon; they say nothing about whether the
backend is *succeeding*. The breaker closes that gap: it watches the
outcome of every executed job and, when the recent failure rate burns
past the threshold, flips OPEN — submits are rejected at the door with
``429 breaker_open`` before they can pile onto a burning backend.

Classic three-state machine:

* **CLOSED** — normal admission; outcomes fill a sliding window.
* **OPEN** — every submit rejected. After ``cooldown_s`` the next
  :meth:`CircuitBreaker.allow` moves to HALF_OPEN.
* **HALF_OPEN** — up to ``probes`` jobs are admitted as canaries. If
  all of them succeed the breaker re-closes (window cleared); one
  failure re-opens it and restarts the cooldown.

The clock is injected (defaults to ``time.monotonic``) so tests drive
state transitions without sleeping; callbacks let the supervisor put
``service.breaker_opened`` / ``service.breaker_closed`` on the event
bus for the health monitor to fold into findings.
"""

from __future__ import annotations

import enum
import threading
import time
from collections import deque
from dataclasses import dataclass
from typing import Callable, Deque, Dict, Optional

from repro.errors import PrEspError


class BreakerState(enum.Enum):
    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half_open"


@dataclass(frozen=True)
class BreakerPolicy:
    """When to open, how long to shed, how to probe.

    ``window`` caps the outcome history the failure rate is computed
    over; ``min_samples`` keeps one unlucky first job from tripping an
    idle daemon; ``threshold`` is the failure fraction that opens;
    ``cooldown_s`` is the shed period before probing; ``probes`` is
    the number of canary jobs a HALF_OPEN breaker admits (all must
    succeed to re-close).
    """

    window: int = 20
    min_samples: int = 5
    threshold: float = 0.5
    cooldown_s: float = 30.0
    probes: int = 1

    def __post_init__(self) -> None:
        if self.window < 1:
            raise PrEspError(f"breaker window must be >= 1, got {self.window}")
        if not 1 <= self.min_samples <= self.window:
            raise PrEspError(
                f"min_samples must be in [1, window], got {self.min_samples}"
            )
        if not 0.0 < self.threshold <= 1.0:
            raise PrEspError(
                f"breaker threshold must be in (0, 1], got {self.threshold}"
            )
        if self.cooldown_s < 0:
            raise PrEspError(f"cooldown must be >= 0, got {self.cooldown_s}")
        if self.probes < 1:
            raise PrEspError(f"breaker needs >= 1 probe, got {self.probes}")


class CircuitBreaker:
    """Thread-safe failure-rate breaker with half-open probing."""

    def __init__(
        self,
        policy: BreakerPolicy = BreakerPolicy(),
        clock: Callable[[], float] = time.monotonic,
        on_open: Optional[Callable[[str], None]] = None,
        on_close: Optional[Callable[[], None]] = None,
    ) -> None:
        self.policy = policy
        self._clock = clock
        self._on_open = on_open
        self._on_close = on_close
        self._state = BreakerState.CLOSED
        self._outcomes: Deque[bool] = deque(maxlen=policy.window)
        self._opened_at = 0.0
        self._probes_issued = 0
        self._probe_successes = 0
        self._lock = threading.Lock()
        #: Cumulative open transitions, for /metrics and snapshots.
        self.opened_total = 0

    # ------------------------------------------------------------------
    @property
    def state(self) -> BreakerState:
        with self._lock:
            return self._state

    def _failure_rate(self) -> float:
        if not self._outcomes:
            return 0.0
        return sum(1 for ok in self._outcomes if not ok) / len(self._outcomes)

    def _open(self, reason: str) -> None:
        self._state = BreakerState.OPEN
        self._opened_at = self._clock()
        self._probes_issued = 0
        self._probe_successes = 0
        self.opened_total += 1
        if self._on_open is not None:
            self._on_open(reason)

    def _close(self) -> None:
        self._state = BreakerState.CLOSED
        self._outcomes.clear()
        self._probes_issued = 0
        self._probe_successes = 0
        if self._on_close is not None:
            self._on_close()

    # ------------------------------------------------------------------
    def allow(self) -> bool:
        """May one submit pass admission right now?

        OPEN past its cooldown transitions to HALF_OPEN here; a
        HALF_OPEN breaker admits at most ``probes`` jobs until their
        outcomes decide the state.
        """
        with self._lock:
            if self._state is BreakerState.CLOSED:
                return True
            if self._state is BreakerState.OPEN:
                if self._clock() - self._opened_at < self.policy.cooldown_s:
                    return False
                self._state = BreakerState.HALF_OPEN
                self._probes_issued = 0
                self._probe_successes = 0
            if self._probes_issued < self.policy.probes:
                self._probes_issued += 1
                return True
            return False

    def release_probe(self) -> None:
        """Hand back a half-open probe whose outcome will never arrive.

        A submit can pass :meth:`allow` and still die before execution
        (quota rejection, persistence failure, cancel while queued).
        Without this, each such loss wedges one probe slot forever and
        a ``probes=1`` breaker could never close again.
        """
        with self._lock:
            if self._state is BreakerState.HALF_OPEN and self._probes_issued > 0:
                self._probes_issued -= 1

    def trip(self, reason: str = "manual") -> None:
        """Force the breaker open (operator action, SLO-burn hook)."""
        with self._lock:
            if self._state is not BreakerState.OPEN:
                self._open(reason)

    def record(self, success: bool) -> None:
        """Fold one executed job's outcome into the state machine."""
        with self._lock:
            if self._state is BreakerState.HALF_OPEN:
                if not success:
                    self._open("probe job failed")
                    return
                self._probe_successes += 1
                if self._probe_successes >= self.policy.probes:
                    self._close()
                return
            if self._state is BreakerState.OPEN:
                # A straggler from before the trip; nothing to decide.
                return
            self._outcomes.append(success)
            if (
                len(self._outcomes) >= self.policy.min_samples
                and self._failure_rate() >= self.policy.threshold
            ):
                self._open(
                    f"failure rate {self._failure_rate():.0%} over the last "
                    f"{len(self._outcomes)} jobs (threshold "
                    f"{self.policy.threshold:.0%})"
                )

    # ------------------------------------------------------------------
    def snapshot(self) -> Dict:
        """State for /healthz and the queue listing."""
        with self._lock:
            return {
                "state": self._state.value,
                "failure_rate": round(self._failure_rate(), 6),
                "window": len(self._outcomes),
                "opened_total": self.opened_total,
            }
