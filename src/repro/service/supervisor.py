"""The supervisor: worker threads draining the queue into the platform.

One :class:`Supervisor` owns the long-lived platform state the whole
daemon shares — one :class:`~repro.flow.cache.FlowCache` with a disk
tier under the state directory, one :class:`~repro.flow.batch.
BatchBuilder` warm process pool, one metrics registry / event bus /
telemetry store — plus the durable job table. Worker threads block on
the priority queue and push each job through
:meth:`~repro.flow.batch.BatchBuilder.build_one` (build jobs, with a
per-job checkpoint directory) or :meth:`~repro.core.platform.
PrEspPlatform.deploy_wami` (deploy jobs, under the PR-5 recovery
ladder).

Crash safety is a replay, not a transaction log: every state change of
a job is persisted to its own JSON file *before* it becomes externally
observable, and :meth:`Supervisor.start` requeues any job found
``queued`` or ``running`` on disk. A requeued build resumes from its
checkpoint directory (completed stages restore byte-identically; the
result summary of a resumed build equals the uninterrupted one), and
the daemon reports itself ``recovering`` — HTTP 503 — until the
requeued backlog drains.
"""

from __future__ import annotations

import threading
import time
from pathlib import Path
from typing import Dict, List, Optional, Tuple

from repro.core.designs import resolve_config
from repro.core.platform import PrEspPlatform
from repro.core.strategy import ImplementationStrategy
from repro.errors import PrEspError
from repro.flow.batch import BuildRequest
from repro.flow.cache import FlowCache
from repro.flow.options import BuildOptions
from repro.obs.context import activate
from repro.obs.events import EventBus
from repro.obs.health import HealthMonitor, Verdict, _worst
from repro.obs.instrumentation import Instrumentation
from repro.obs.logconfig import get_logger
from repro.obs.metrics import MetricsRegistry
from repro.obs.slo import SloTracker
from repro.obs.tsdb import TelemetryStore
from repro.service.jobs import (
    JobIdMinter,
    JobRecord,
    JobSpec,
    JobState,
    JobStore,
)
from repro.service.queue import JobQueue, TenantQuota

logger = get_logger("service.supervisor")

#: Service event kinds (the job lifecycle on the daemon's bus).
JOB_SUBMITTED = "service.job_submitted"
JOB_STARTED = "service.job_started"
JOB_FINISHED = "service.job_finished"
JOB_CANCELLED = "service.job_cancelled"
JOB_REQUEUED = "service.job_requeued"


class Supervisor:
    """Owns the shared platform state and the worker threads."""

    def __init__(
        self,
        state_dir,
        workers: int = 2,
        jobs: int = 2,
        seed: int = 0,
        queue_capacity: Optional[int] = None,
        quotas: Optional[Dict[str, TenantQuota]] = None,
        default_quota: TenantQuota = TenantQuota(),
        cache_entries: int = 256,
    ) -> None:
        if workers <= 0:
            raise PrEspError(f"supervisor needs at least one worker, got {workers}")
        self.state_dir = Path(state_dir)
        self.workers = workers
        self.seed = int(seed)

        # One observability plane for every tenant's jobs.
        self.registry = MetricsRegistry()
        self.events = EventBus(capacity=4096)
        self.telemetry = TelemetryStore()
        self.health = HealthMonitor(self.events)
        self.slo = SloTracker(self.telemetry)

        # One warm pool + one shared two-tier cache, via the platform.
        self.cache = FlowCache(
            max_entries=cache_entries,
            disk_dir=self.state_dir / "cache",
            metrics=self.registry,
        )
        self.platform = PrEspPlatform(
            options=BuildOptions(cache=self.cache, jobs=jobs),
            instrumentation=Instrumentation(
                metrics=self.registry, events=self.events
            ),
        )
        self.batch = self.platform.batch

        self.store = JobStore(self.state_dir / "jobs")
        self.queue = JobQueue(
            capacity=queue_capacity, quotas=quotas, default_quota=default_quota
        )
        self.minter = JobIdMinter(seed=self.seed)

        self._table: Dict[str, JobRecord] = {}
        self._table_lock = threading.Lock()
        self._submit_seq = 0
        self._start_seq = 0
        self._threads: List[threading.Thread] = []
        self._stopping = threading.Event()
        self._started = False
        #: Jobs requeued by crash recovery that have not finished yet;
        #: the daemon reports ``recovering`` (503) until this drains.
        self._recovering: set = set()
        self._recovering_lock = threading.Lock()

        self._jobs_counter = self.registry.counter(
            "service_jobs_total", "service jobs by terminal status"
        )
        self._submit_counter = self.registry.counter(
            "service_submits_total", "submit admissions and rejections"
        )
        self._queue_gauge = self.registry.gauge(
            "service_queue_depth", "jobs waiting in the priority queue"
        )
        self._job_seconds = self.registry.histogram(
            "service_job_seconds", "wall seconds per executed job"
        )

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def start(self) -> None:
        """Recover persisted jobs, then start the worker threads."""
        if self._started:
            return
        self._started = True
        recovered = self.store.load_all()
        self.minter.advance_past(recovered)
        # Jobs submitted in-process before start() are already queued;
        # recovery only concerns records a *previous* daemon persisted.
        with self._table_lock:
            live = set(self._table)
        recovered = [record for record in recovered if record.job_id not in live]
        for record in recovered:
            self._submit_seq = max(self._submit_seq, record.submit_seq + 1)
            if record.start_seq is not None:
                self._start_seq = max(self._start_seq, record.start_seq + 1)
            with self._table_lock:
                self._table[record.job_id] = record
            if record.state is JobState.RUNNING:
                # The previous daemon died mid-job; the checkpoint
                # directory holds its completed stages. Requeue and
                # re-run with resume.
                record.transition(JobState.QUEUED)
                self.store.save(record)
            if record.state is JobState.QUEUED:
                if record.cancel_requested:
                    record.transition(JobState.CANCELLED)
                    self.store.save(record)
                    continue
                with self._recovering_lock:
                    self._recovering.add(record.job_id)
                self.events.emit(
                    JOB_REQUEUED, source=record.job_id, tenant=record.spec.tenant
                )
                self.queue.submit(record)
        if recovered:
            logger.info(
                "recovered %d job records (%d requeued)",
                len(recovered),
                len(self._recovering),
            )
        for index in range(self.workers):
            thread = threading.Thread(
                target=self._worker_loop,
                name=f"service-worker-{index}",
                daemon=True,
            )
            thread.start()
            self._threads.append(thread)

    def stop(self, timeout: float = 10.0) -> None:
        """Stop admitting, drain the workers, shut the warm pool down."""
        self._stopping.set()
        self.queue.close()
        for thread in self._threads:
            thread.join(timeout=timeout)
        self._threads.clear()
        self.platform.close()

    # ------------------------------------------------------------------
    # the API surface the HTTP layer calls
    # ------------------------------------------------------------------
    def submit(self, spec: JobSpec) -> JobRecord:
        """Admit one job (or let :class:`AdmissionError` escape)."""
        # Validate the config eagerly: an unknown design must 400 at
        # submit, not fail a worker thread minutes later.
        resolve_config(spec.config)
        job_id = self.minter.mint(spec.tenant)
        with self._table_lock:
            record = JobRecord(job_id=job_id, spec=spec, submit_seq=self._submit_seq)
            self._submit_seq += 1
            self._table[job_id] = record
        try:
            # Persist before enqueueing: a job a client saw accepted
            # must survive a crash between submit and first run.
            self.store.save(record)
            self.queue.submit(record)
        except Exception:
            self._submit_counter.inc(status="rejected")
            with self._table_lock:
                self._table.pop(job_id, None)
            self.store.path_for(job_id).unlink(missing_ok=True)
            raise
        self._submit_counter.inc(status="admitted")
        self._queue_gauge.set(self.queue.depth())
        self.events.emit(JOB_SUBMITTED, source=job_id, tenant=spec.tenant)
        return record

    def get(self, job_id: str) -> Optional[JobRecord]:
        with self._table_lock:
            return self._table.get(job_id)

    def cancel(self, job_id: str) -> Optional[JobRecord]:
        """Cancel a queued job (terminal); flag a running one.

        Returns the record, or None for an unknown ID. A job already
        terminal is returned unchanged — cancel is idempotent.
        """
        record = self.get(job_id)
        if record is None:
            return None
        with self._table_lock:
            if record.state is JobState.QUEUED and self.queue.cancel(record):
                record.cancel_requested = True
                record.transition(JobState.CANCELLED)
            elif record.state is JobState.RUNNING:
                record.cancel_requested = True
        self.store.save(record)
        if record.state is JobState.CANCELLED:
            self._jobs_counter.inc(status="cancelled")
            self._finish_recovery(job_id)
            self.events.emit(
                JOB_CANCELLED, source=job_id, tenant=record.spec.tenant
            )
        self._queue_gauge.set(self.queue.depth())
        return record

    def jobs(
        self, tenant: Optional[str] = None, state: Optional[JobState] = None
    ) -> List[JobRecord]:
        """Records in admission order, optionally filtered."""
        with self._table_lock:
            records = sorted(
                self._table.values(), key=lambda r: (r.submit_seq, r.job_id)
            )
        if tenant is not None:
            records = [r for r in records if r.spec.tenant == tenant]
        if state is not None:
            records = [r for r in records if r.state is state]
        return records

    def recovering(self) -> int:
        """Requeued-by-recovery jobs still outstanding."""
        with self._recovering_lock:
            return len(self._recovering)

    def health_verdict(self) -> Tuple[str, Verdict]:
        """The live ``/healthz`` verdict.

        The worst of the event-driven health monitor and the SLO
        tracker, with a ``recovering`` state (reported as critical →
        503) while crash-recovered jobs are still draining: a client
        must not read results as current until the replay converges.
        """
        if self.recovering() > 0:
            return "recovering", Verdict.CRITICAL
        verdict = self.health.report().verdict
        if len(self.telemetry):
            verdict = _worst(verdict, self.slo.evaluate().verdict)
        return verdict.value, verdict

    # ------------------------------------------------------------------
    # workers
    # ------------------------------------------------------------------
    def _worker_loop(self) -> None:
        while not self._stopping.is_set():
            job_id = self.queue.pop(timeout=0.2)
            if job_id is None:
                if self._stopping.is_set():
                    return
                continue
            record = self.get(job_id)
            if record is None:  # persisted table and queue disagree
                logger.warning("popped unknown job %s", job_id)
                continue
            try:
                self._run_job(record)
            finally:
                self.queue.mark_done(record.spec.tenant)
                self._queue_gauge.set(self.queue.depth())
                self._finish_recovery(job_id)

    def _finish_recovery(self, job_id: str) -> None:
        with self._recovering_lock:
            self._recovering.discard(job_id)

    def _run_job(self, record: JobRecord) -> None:
        with self._table_lock:
            if record.cancel_requested and record.state is JobState.QUEUED:
                record.transition(JobState.CANCELLED)
                done = True
            else:
                record.transition(JobState.RUNNING)
                record.start_seq = self._start_seq
                self._start_seq += 1
                record.attempts += 1
                done = False
        self.store.save(record)
        if done:
            self._jobs_counter.inc(status="cancelled")
            self.events.emit(
                JOB_CANCELLED, source=record.job_id, tenant=record.spec.tenant
            )
            return

        self.events.emit(
            JOB_STARTED, source=record.job_id, tenant=record.spec.tenant
        )
        started = time.perf_counter()
        try:
            with activate(record.context()):
                if record.spec.kind == "build":
                    self._run_build(record)
                else:
                    self._run_deploy(record)
        except Exception as error:  # noqa: BLE001 - jobs never sink workers
            record.error = {"kind": type(error).__name__, "message": str(error)}
            record.transition(JobState.FAILED)
        record.elapsed_s = time.perf_counter() - started
        self._job_seconds.observe(record.elapsed_s, kind=record.spec.kind)
        self._jobs_counter.inc(status=record.state.value)
        self.store.save(record)
        self.telemetry.record(self.registry)
        self.events.emit(
            JOB_FINISHED,
            source=record.job_id,
            tenant=record.spec.tenant,
            state=record.state.value,
        )

    def checkpoint_dir(self, job_id: str) -> Path:
        return self.state_dir / "checkpoints" / job_id

    def _run_build(self, record: JobRecord) -> None:
        spec = record.spec
        config = resolve_config(spec.config)
        strategy = (
            ImplementationStrategy(spec.strategy) if spec.strategy else None
        )
        request = BuildRequest(config=config, strategy_override=strategy)
        outcome = self.batch.build_one(
            request,
            checkpoint_dir=self.checkpoint_dir(record.job_id),
            resume=True,
        )
        if outcome.error is not None:
            record.error = {
                "kind": outcome.error.kind,
                "message": outcome.error.message,
            }
            record.transition(JobState.FAILED)
            return
        assert outcome.result is not None
        record.cached = outcome.cached
        record.resumed_stages = tuple(outcome.result.resumed_stages)
        record.result = outcome.result.to_summary_dict()
        record.transition(JobState.SUCCEEDED)

    def _run_deploy(self, record: JobRecord) -> None:
        spec = record.spec
        config = resolve_config(spec.config)
        report = self.platform.deploy_wami(config, frames=spec.frames)
        record.result = report.to_summary_dict()
        record.transition(JobState.SUCCEEDED)
