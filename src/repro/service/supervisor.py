"""The supervisor: worker threads draining the queue into the platform.

One :class:`Supervisor` owns the long-lived platform state the whole
daemon shares — one :class:`~repro.flow.cache.FlowCache` with a disk
tier under the state directory, one :class:`~repro.flow.batch.
BatchBuilder` warm process pool, one metrics registry / event bus /
telemetry store — plus the durable job table. Worker threads block on
the priority queue and push each job through
:meth:`~repro.flow.batch.BatchBuilder.build_one` (build jobs, with a
per-job checkpoint directory) or :meth:`~repro.core.platform.
PrEspPlatform.deploy_wami` (deploy jobs, under the PR-5 recovery
ladder).

Crash safety is a replay, not a transaction log: every state change of
a job is persisted to its own JSON file *before* it becomes externally
observable, and :meth:`Supervisor.start` requeues any job found
``queued`` or ``running`` on disk. A requeued build resumes from its
checkpoint directory (completed stages restore byte-identically; the
result summary of a resumed build equals the uninterrupted one), and
the daemon reports itself ``recovering`` — HTTP 503 — until the
requeued backlog drains.

On top of that replay sits the resilience ladder this module owns:

* a **deadline watchdog** — each attempt runs in a body thread the
  worker joins against the job's deadline (``JobSpec.deadline_s``,
  then the tenant's, then the daemon default). A blown deadline
  abandons the attempt; whatever stages completed are already
  checkpointed, so the requeued rerun resumes instead of restarting.
* **bounded attempts with a dead letter** — retryable failures
  (worker crash, timeout, hang) requeue with seeded exponential
  backoff until ``max_attempts``, then the job lands in ``DEAD``:
  recovery never requeues it, only the operator's
  :meth:`Supervisor.requeue` revives it (with a fresh budget).
* a **circuit breaker** in front of admission — executed-job outcomes
  feed :class:`~repro.service.breaker.CircuitBreaker`; past the
  failure-rate threshold submits are shed with ``429 breaker_open``
  until half-open probes prove the backend recovered.
* **graceful drain** — ``stop(drain=True)`` stops admitting, waits
  out the drain deadline, then flips still-running jobs back to
  ``queued`` (checkpoints intact) so the next start resumes them
  byte-identically.

Faults are a model, not an accident: the seeded
:class:`~repro.service.faults.ServiceFaultModel` injects worker
crashes and wedged workers here, and store IO errors / torn writes in
:class:`~repro.service.jobs.JobStore` — same replayable SHA-256 draw
discipline as the CAD and runtime tiers.
"""

from __future__ import annotations

import threading
import time
from pathlib import Path
from typing import Dict, List, Optional, Tuple

from repro.core.designs import resolve_config
from repro.core.platform import PrEspPlatform
from repro.core.strategy import ImplementationStrategy
from repro.errors import PrEspError
from repro.flow.batch import BuildRequest
from repro.flow.cache import FlowCache
from repro.flow.options import BuildOptions
from repro.obs.context import activate
from repro.obs.events import (
    SERVICE_BREAKER_CLOSED,
    SERVICE_BREAKER_OPENED,
    SERVICE_JOB_DEAD,
    SERVICE_JOB_REQUEUED,
    SERVICE_JOB_TIMED_OUT,
    EventBus,
)
from repro.obs.health import HealthMonitor, Verdict, _worst
from repro.obs.instrumentation import Instrumentation
from repro.obs.logconfig import get_logger
from repro.obs.metrics import MetricsRegistry
from repro.obs.slo import SloTracker
from repro.obs.tsdb import TelemetryStore
from repro.service.breaker import BreakerPolicy, CircuitBreaker
from repro.service.faults import (
    NO_SERVICE_FAULTS,
    ServiceFaultError,
    ServiceFaultKind,
    ServiceFaultModel,
)
from repro.service.jobs import (
    JobError,
    JobIdMinter,
    JobRecord,
    JobSpec,
    JobState,
    JobStore,
)
from repro.service.queue import AdmissionError, JobQueue, TenantQuota

logger = get_logger("service.supervisor")

#: Service event kinds (the job lifecycle on the daemon's bus).
JOB_SUBMITTED = "service.job_submitted"
JOB_STARTED = "service.job_started"
JOB_FINISHED = "service.job_finished"
JOB_CANCELLED = "service.job_cancelled"
JOB_REQUEUED = SERVICE_JOB_REQUEUED
JOB_DEAD = SERVICE_JOB_DEAD
JOB_TIMED_OUT = SERVICE_JOB_TIMED_OUT


class _AttemptOutcome:
    """What one execution attempt produced (applied only if current)."""

    __slots__ = ("state", "result", "error", "cached", "resumed_stages")

    def __init__(
        self,
        state: JobState,
        result: Optional[Dict] = None,
        error: Optional[Dict] = None,
        cached: bool = False,
        resumed_stages: Tuple[str, ...] = (),
    ) -> None:
        self.state = state
        self.result = result
        self.error = error
        self.cached = cached
        self.resumed_stages = resumed_stages


class Supervisor:
    """Owns the shared platform state and the worker threads."""

    def __init__(
        self,
        state_dir,
        workers: int = 2,
        jobs: int = 2,
        seed: int = 0,
        queue_capacity: Optional[int] = None,
        quotas: Optional[Dict[str, TenantQuota]] = None,
        default_quota: TenantQuota = TenantQuota(),
        cache_entries: int = 256,
        faults: ServiceFaultModel = NO_SERVICE_FAULTS,
        default_deadline_s: Optional[float] = None,
        tenant_deadlines: Optional[Dict[str, float]] = None,
        default_max_attempts: int = 3,
        breaker_policy: BreakerPolicy = BreakerPolicy(),
        requeue_backoff_s: float = 0.05,
        requeue_backoff_cap_s: float = 2.0,
    ) -> None:
        if workers <= 0:
            raise PrEspError(f"supervisor needs at least one worker, got {workers}")
        if default_max_attempts < 1:
            raise PrEspError(
                f"default_max_attempts must be >= 1, got {default_max_attempts}"
            )
        self.state_dir = Path(state_dir)
        self.workers = workers
        self.seed = int(seed)
        self.faults = faults
        self.default_deadline_s = default_deadline_s
        self.tenant_deadlines = dict(tenant_deadlines or {})
        self.default_max_attempts = default_max_attempts
        self.requeue_backoff_s = requeue_backoff_s
        self.requeue_backoff_cap_s = requeue_backoff_cap_s

        # One observability plane for every tenant's jobs.
        self.registry = MetricsRegistry()
        self.events = EventBus(capacity=4096)
        self.telemetry = TelemetryStore()
        self.health = HealthMonitor(self.events)
        self.slo = SloTracker(self.telemetry)

        #: Admission breaker: executed-job outcomes open it, half-open
        #: probes close it; submit() consults it before the quotas.
        self.breaker = CircuitBreaker(
            policy=breaker_policy,
            on_open=self._on_breaker_open,
            on_close=self._on_breaker_close,
        )

        # One warm pool + one shared two-tier cache, via the platform.
        self.cache = FlowCache(
            max_entries=cache_entries,
            disk_dir=self.state_dir / "cache",
            metrics=self.registry,
        )
        self.platform = PrEspPlatform(
            options=BuildOptions(cache=self.cache, jobs=jobs),
            instrumentation=Instrumentation(
                metrics=self.registry, events=self.events
            ),
        )
        self.batch = self.platform.batch

        self.store = JobStore(self.state_dir / "jobs", faults=self.faults)
        self.queue = JobQueue(
            capacity=queue_capacity, quotas=quotas, default_quota=default_quota
        )
        self.minter = JobIdMinter(seed=self.seed)

        self._table: Dict[str, JobRecord] = {}
        self._table_lock = threading.Lock()
        self._submit_seq = 0
        self._start_seq = 0
        self._threads: List[threading.Thread] = []
        self._stopping = threading.Event()
        self._draining = threading.Event()
        self._started = False
        #: Jobs requeued by crash recovery that have not finished yet;
        #: the daemon reports ``recovering`` (503) until this drains.
        self._recovering: set = set()
        self._recovering_lock = threading.Lock()
        #: job_id -> abandon event of the attempt currently executing
        #: (the watchdog and the drain path flip these).
        self._live_attempts: Dict[str, threading.Event] = {}
        #: Pending seeded-backoff requeue timers, so stop() can cancel.
        self._timers: List[threading.Timer] = []
        self._timers_lock = threading.Lock()

        self._jobs_counter = self.registry.counter(
            "service_jobs_total", "service jobs by terminal status"
        )
        self._submit_counter = self.registry.counter(
            "service_submits_total", "submit admissions and rejections"
        )
        self._queue_gauge = self.registry.gauge(
            "service_queue_depth", "jobs waiting in the priority queue"
        )
        self._job_seconds = self.registry.histogram(
            "service_job_seconds", "wall seconds per executed job"
        )
        self._requeue_counter = self.registry.counter(
            "service_requeues_total", "watchdog/crash/manual requeues by reason"
        )
        self._fault_counter = self.registry.counter(
            "service_faults_total", "service-tier faults drawn or injected"
        )

    # ------------------------------------------------------------------
    # breaker hooks
    # ------------------------------------------------------------------
    def _on_breaker_open(self, reason: str) -> None:
        logger.warning("admission breaker opened: %s", reason)
        self.events.emit(SERVICE_BREAKER_OPENED, source="breaker", reason=reason)

    def _on_breaker_close(self) -> None:
        logger.info("admission breaker closed (probes succeeded)")
        self.events.emit(SERVICE_BREAKER_CLOSED, source="breaker")

    # ------------------------------------------------------------------
    # policy lookups
    # ------------------------------------------------------------------
    def deadline_for(self, spec: JobSpec) -> Optional[float]:
        """The attempt deadline: job, then tenant, then daemon default."""
        if spec.deadline_s is not None:
            return spec.deadline_s
        tenant = self.tenant_deadlines.get(spec.tenant)
        if tenant is not None:
            return tenant
        return self.default_deadline_s

    def max_attempts_for(self, spec: JobSpec) -> int:
        if spec.max_attempts is not None:
            return spec.max_attempts
        return self.default_max_attempts

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def start(self) -> None:
        """Recover persisted jobs, then start the worker threads."""
        if self._started:
            return
        self._started = True
        recovered = self.store.load_all()
        self.minter.advance_past(recovered)
        # Jobs submitted in-process before start() are already queued;
        # recovery only concerns records a *previous* daemon persisted.
        with self._table_lock:
            live = set(self._table)
        recovered = [record for record in recovered if record.job_id not in live]
        dead_lettered = 0
        for record in recovered:
            self._submit_seq = max(self._submit_seq, record.submit_seq + 1)
            if record.start_seq is not None:
                self._start_seq = max(self._start_seq, record.start_seq + 1)
            with self._table_lock:
                self._table[record.job_id] = record
            if record.state is JobState.RUNNING:
                # The previous daemon died mid-job. A job that already
                # burned its whole attempt budget is poison: requeueing
                # it would cycle it through crash recovery forever, so
                # it dead-letters instead.
                if record.attempts >= self.max_attempts_for(record.spec):
                    record.error = {
                        "kind": "DeadLetter",
                        "message": (
                            f"{record.attempts} attempts exhausted across "
                            "crash recoveries; requeue explicitly to retry"
                        ),
                    }
                    record.transition(JobState.DEAD)
                    self._persist(record)
                    self._jobs_counter.inc(status="dead")
                    dead_lettered += 1
                    self.events.emit(
                        JOB_DEAD,
                        source=record.job_id,
                        tenant=record.spec.tenant,
                        attempts=record.attempts,
                        reason="recovery",
                    )
                    continue
                # Otherwise the checkpoint directory holds its
                # completed stages: requeue and re-run with resume.
                record.transition(JobState.QUEUED)
                self._persist(record)
            if record.state is JobState.QUEUED:
                if record.cancel_requested:
                    record.transition(JobState.CANCELLED)
                    self._persist(record)
                    continue
                with self._recovering_lock:
                    self._recovering.add(record.job_id)
                self.events.emit(
                    JOB_REQUEUED,
                    source=record.job_id,
                    tenant=record.spec.tenant,
                    manual=False,
                )
                # Recovered work already passed admission once — a
                # momentarily tight quota must not drop it.
                self.queue.requeue(record)
        if recovered:
            logger.info(
                "recovered %d job records (%d requeued, %d dead-lettered)",
                len(recovered),
                len(self._recovering),
                dead_lettered,
            )
        for index in range(self.workers):
            thread = threading.Thread(
                target=self._worker_loop,
                name=f"service-worker-{index}",
                daemon=True,
            )
            thread.start()
            self._threads.append(thread)

    def stop(self, timeout: float = 10.0, drain: bool = False) -> int:
        """Stop admitting, join the workers, shut the warm pool down.

        The join budget is one shared deadline across all workers, not
        ``timeout`` per worker; workers still alive at expiry are
        counted, logged and returned. With ``drain`` the workers stop
        picking up new jobs (queued ones stay persisted for the next
        start) and every job still running at the deadline is flipped
        back to ``queued`` — checkpoints intact — so a restart resumes
        it.
        """
        self._stopping.set()
        if drain:
            self._draining.set()
        self.queue.close()
        with self._timers_lock:
            timers = list(self._timers)
            self._timers.clear()
        for timer in timers:
            timer.cancel()
        deadline = time.monotonic() + timeout
        survivors = 0
        for thread in self._threads:
            thread.join(timeout=max(0.0, deadline - time.monotonic()))
            if thread.is_alive():
                survivors += 1
        if survivors:
            logger.warning(
                "%d worker(s) still alive after the %.1fs stop deadline",
                survivors,
                timeout,
            )
        self._threads.clear()
        if drain:
            requeued = self._requeue_survivors()
            if requeued:
                logger.info(
                    "drain requeued %d in-flight job(s) for the next start",
                    requeued,
                )
        self.platform.close()
        return survivors

    def _requeue_survivors(self) -> int:
        """Flip still-running jobs back to QUEUED at drain expiry."""
        requeued = 0
        with self._table_lock:
            for record in self._table.values():
                if record.state is not JobState.RUNNING:
                    continue
                abandon = self._live_attempts.pop(record.job_id, None)
                if abandon is not None:
                    abandon.set()
                record.transition(JobState.QUEUED)
                record.requeues += 1
                requeued += 1
                records_tenant = record.spec.tenant
                self.events.emit(
                    JOB_REQUEUED,
                    source=record.job_id,
                    tenant=records_tenant,
                    manual=False,
                )
                self._requeue_counter.inc(reason="drain")
                self.store.save_retrying(record)
        return requeued

    # ------------------------------------------------------------------
    # persistence
    # ------------------------------------------------------------------
    def _persist(self, record: JobRecord) -> None:
        """Write-through with bounded retries of injected IO faults."""
        self.store.save_retrying(record)

    # ------------------------------------------------------------------
    # the API surface the HTTP layer calls
    # ------------------------------------------------------------------
    def submit(self, spec: JobSpec) -> JobRecord:
        """Admit one job (or let :class:`AdmissionError` escape)."""
        # Validate the config eagerly: an unknown design must 400 at
        # submit, not fail a worker thread minutes later.
        resolve_config(spec.config)
        if not self.breaker.allow():
            self._submit_counter.inc(status="rejected")
            raise AdmissionError(
                "admission breaker is open: the backend is failing; "
                "retry after the cooldown",
                reason="breaker_open",
            )
        job_id = self.minter.mint(spec.tenant)
        with self._table_lock:
            record = JobRecord(job_id=job_id, spec=spec, submit_seq=self._submit_seq)
            self._submit_seq += 1
            self._table[job_id] = record
        try:
            # Persist before enqueueing: a job a client saw accepted
            # must survive a crash between submit and first run.
            self.store.save_retrying(record)
            self.queue.submit(record)
        except Exception:
            self._submit_counter.inc(status="rejected")
            # A submit admitted through a half-open breaker but shed by
            # the quotas never produces an outcome; hand the probe back.
            self.breaker.release_probe()
            with self._table_lock:
                self._table.pop(job_id, None)
            self.store.path_for(job_id).unlink(missing_ok=True)
            raise
        self._submit_counter.inc(status="admitted")
        self._queue_gauge.set(self.queue.depth())
        self.events.emit(JOB_SUBMITTED, source=job_id, tenant=spec.tenant)
        return record

    def get(self, job_id: str) -> Optional[JobRecord]:
        with self._table_lock:
            return self._table.get(job_id)

    def cancel(self, job_id: str) -> Optional[JobRecord]:
        """Cancel a queued job (terminal); flag a running one.

        Returns the record, or None for an unknown ID. A job already
        terminal is returned unchanged — cancel is idempotent.
        """
        record = self.get(job_id)
        if record is None:
            return None
        with self._table_lock:
            if record.state is JobState.QUEUED and self.queue.cancel(record):
                record.cancel_requested = True
                record.transition(JobState.CANCELLED)
            elif record.state is JobState.RUNNING:
                record.cancel_requested = True
        self._persist(record)
        if record.state is JobState.CANCELLED:
            self._jobs_counter.inc(status="cancelled")
            # If this was a half-open probe it will never report an
            # outcome; hand the slot back so probing can continue.
            self.breaker.release_probe()
            self._finish_recovery(job_id)
            self.events.emit(
                JOB_CANCELLED, source=job_id, tenant=record.spec.tenant
            )
        self._queue_gauge.set(self.queue.depth())
        return record

    def requeue(self, job_id: str) -> Optional[JobRecord]:
        """Revive one dead-lettered job with a fresh attempt budget.

        Returns None for an unknown ID; raises :class:`JobError` when
        the job is not ``DEAD`` (the HTTP layer maps that to 409) —
        one POST revives the job exactly once, a second POST conflicts.
        """
        record = self.get(job_id)
        if record is None:
            return None
        with self._table_lock:
            if record.state is not JobState.DEAD:
                raise JobError(
                    f"job {job_id} is {record.state.value}; only dead jobs "
                    "can be requeued"
                )
            record.transition(JobState.QUEUED)
            record.attempts = 0
            record.timeouts = 0
            record.requeues += 1
            record.error = None
        self._persist(record)
        self.queue.requeue(record)
        self._requeue_counter.inc(reason="manual")
        self._queue_gauge.set(self.queue.depth())
        self.events.emit(
            JOB_REQUEUED, source=job_id, tenant=record.spec.tenant, manual=True
        )
        return record

    def jobs(
        self, tenant: Optional[str] = None, state: Optional[JobState] = None
    ) -> List[JobRecord]:
        """Records in admission order, optionally filtered."""
        with self._table_lock:
            records = sorted(
                self._table.values(), key=lambda r: (r.submit_seq, r.job_id)
            )
        if tenant is not None:
            records = [r for r in records if r.spec.tenant == tenant]
        if state is not None:
            records = [r for r in records if r.state is state]
        return records

    def recovering(self) -> int:
        """Requeued-by-recovery jobs still outstanding."""
        with self._recovering_lock:
            return len(self._recovering)

    def health_verdict(self) -> Tuple[str, Verdict]:
        """The live ``/healthz`` verdict.

        The worst of the event-driven health monitor and the SLO
        tracker, with a ``recovering`` state (reported as critical →
        503) while crash-recovered jobs are still draining: a client
        must not read results as current until the replay converges.
        """
        if self.recovering() > 0:
            return "recovering", Verdict.CRITICAL
        verdict = self.health.report().verdict
        if len(self.telemetry):
            verdict = _worst(verdict, self.slo.evaluate().verdict)
        return verdict.value, verdict

    # ------------------------------------------------------------------
    # workers
    # ------------------------------------------------------------------
    def _worker_loop(self) -> None:
        while not self._stopping.is_set():
            if self._draining.is_set():
                return
            job_id = self.queue.pop(timeout=0.2)
            if job_id is None:
                if self._stopping.is_set():
                    return
                continue
            if self._draining.is_set():
                # Popped after the drain flag flipped: leave the job
                # queued on disk for the next start instead of racing
                # the drain deadline.
                record = self.get(job_id)
                if record is not None:
                    self.queue.mark_done(record.spec.tenant)
                return
            record = self.get(job_id)
            if record is None:  # persisted table and queue disagree
                logger.warning("popped unknown job %s", job_id)
                continue
            try:
                self._run_job(record)
            finally:
                self.queue.mark_done(record.spec.tenant)
                self._queue_gauge.set(self.queue.depth())
                self._finish_recovery(job_id)

    def _finish_recovery(self, job_id: str) -> None:
        with self._recovering_lock:
            self._recovering.discard(job_id)

    # ------------------------------------------------------------------
    # one attempt under the watchdog
    # ------------------------------------------------------------------
    def _run_job(self, record: JobRecord) -> None:
        with self._table_lock:
            if record.cancel_requested and record.state is JobState.QUEUED:
                record.transition(JobState.CANCELLED)
                done = True
            else:
                record.transition(JobState.RUNNING)
                record.start_seq = self._start_seq
                self._start_seq += 1
                record.attempts += 1
                done = False
        self._persist(record)
        if done:
            self._jobs_counter.inc(status="cancelled")
            self.breaker.release_probe()
            self.events.emit(
                JOB_CANCELLED, source=record.job_id, tenant=record.spec.tenant
            )
            return

        self.events.emit(
            JOB_STARTED, source=record.job_id, tenant=record.spec.tenant
        )
        attempt = record.attempts
        deadline = self.deadline_for(record.spec)
        abandon = threading.Event()
        with self._table_lock:
            self._live_attempts[record.job_id] = abandon
        box: Dict[str, object] = {}

        def body() -> None:
            try:
                fault = (
                    self.faults.execution_fault(record.job_id, attempt)
                    if self.faults.enabled
                    else None
                )
                if fault is not None:
                    self._fault_counter.inc(kind=fault.value)
                if fault is ServiceFaultKind.WORKER_CRASH:
                    raise ServiceFaultError(
                        fault,
                        f"injected worker crash (attempt {attempt})",
                    )
                if fault is ServiceFaultKind.SLOW_WORKER:
                    # The worker wedges: nothing happens until the
                    # watchdog abandons the attempt (or the hang
                    # window expires and the attempt fails on its own).
                    if abandon.wait(timeout=self.faults.hang_s):
                        return
                    raise ServiceFaultError(
                        fault,
                        f"worker wedged past its {self.faults.hang_s:g}s "
                        "hang window",
                    )
                with activate(record.context()):
                    if record.spec.kind == "build":
                        box["outcome"] = self._run_build(record)
                    else:
                        box["outcome"] = self._run_deploy(record)
            except BaseException as error:  # noqa: BLE001 - routed to the worker
                box["error"] = error

        started = time.perf_counter()
        thread = threading.Thread(
            target=body, name=f"attempt-{record.job_id}-{attempt}", daemon=True
        )
        thread.start()
        thread.join(timeout=deadline)
        timed_out = thread.is_alive()
        if timed_out:
            abandon.set()
            self.events.emit(
                JOB_TIMED_OUT,
                source=record.job_id,
                tenant=record.spec.tenant,
                attempt=attempt,
                deadline_s=deadline,
            )
        elapsed = time.perf_counter() - started
        self._resolve_attempt(record, box, timed_out, elapsed)

    def _resolve_attempt(
        self,
        record: JobRecord,
        box: Dict[str, object],
        timed_out: bool,
        elapsed: float,
    ) -> None:
        error = box.get("error")
        outcome = box.get("outcome")
        retryable = timed_out or isinstance(error, ServiceFaultError)
        requeue_backoff: Optional[float] = None
        with self._table_lock:
            self._live_attempts.pop(record.job_id, None)
            if record.state is not JobState.RUNNING:
                # The drain path already requeued this attempt.
                return
            record.elapsed_s = elapsed
            if retryable:
                if timed_out:
                    record.timeouts += 1
                    reason = "timeout"
                else:
                    reason = error.kind.value  # type: ignore[union-attr]
                if record.attempts >= self.max_attempts_for(record.spec):
                    record.error = {
                        "kind": "DeadLetter",
                        "message": (
                            f"attempt {record.attempts}/"
                            f"{self.max_attempts_for(record.spec)} lost to "
                            f"{reason}; attempt budget exhausted"
                        ),
                    }
                    record.transition(JobState.DEAD)
                else:
                    record.transition(JobState.QUEUED)
                    record.requeues += 1
                    requeue_backoff = self.faults.backoff_s(
                        record.job_id,
                        record.attempts,
                        self.requeue_backoff_s,
                        self.requeue_backoff_cap_s,
                    )
            elif error is not None:
                record.error = {
                    "kind": type(error).__name__,
                    "message": str(error),
                }
                record.transition(JobState.FAILED)
            else:
                assert isinstance(outcome, _AttemptOutcome)
                record.cached = outcome.cached
                record.resumed_stages = outcome.resumed_stages
                record.result = outcome.result
                record.error = outcome.error
                record.transition(outcome.state)
            state = record.state
            reason_label = (
                ("timeout" if timed_out else error.kind.value)  # type: ignore[union-attr]
                if retryable
                else None
            )
        self._persist(record)
        self._job_seconds.observe(elapsed, kind=record.spec.kind)

        if state is JobState.QUEUED:
            # Retryable loss below the attempt cap: seeded backoff,
            # then back into the heap (quota-exempt — the job was
            # already admitted once).
            self.breaker.record(False)
            self._requeue_counter.inc(reason=reason_label)
            self.events.emit(
                JOB_REQUEUED,
                source=record.job_id,
                tenant=record.spec.tenant,
                manual=False,
            )
            logger.warning(
                "job %s lost attempt %d to %s; requeueing in %.3fs",
                record.job_id,
                record.attempts,
                reason_label,
                requeue_backoff,
            )
            self._requeue_later(record, requeue_backoff)
            return

        self._jobs_counter.inc(status=state.value)
        if state is JobState.DEAD:
            self.breaker.record(False)
            self.events.emit(
                JOB_DEAD,
                source=record.job_id,
                tenant=record.spec.tenant,
                attempts=record.attempts,
                reason=reason_label,
            )
        else:
            self.breaker.record(state is JobState.SUCCEEDED)
        self.telemetry.record(self.registry)
        self.events.emit(
            JOB_FINISHED,
            source=record.job_id,
            tenant=record.spec.tenant,
            state=state.value,
        )

    def _requeue_later(self, record: JobRecord, backoff_s: float) -> None:
        def fire() -> None:
            if self._stopping.is_set():
                # The record is persisted QUEUED; the next start's
                # recovery pass re-enters it.
                return
            try:
                self.queue.requeue(record)
            except AdmissionError:
                pass  # closed mid-flight: same story as stopping
            self._queue_gauge.set(self.queue.depth())

        timer = threading.Timer(backoff_s, fire)
        timer.daemon = True
        timer.start()
        with self._timers_lock:
            # Opportunistic cleanup so a long-lived daemon does not
            # hoard finished timers.
            self._timers = [t for t in self._timers if t.is_alive()]
            self._timers.append(timer)

    def checkpoint_dir(self, job_id: str) -> Path:
        return self.state_dir / "checkpoints" / job_id

    def _run_build(self, record: JobRecord) -> _AttemptOutcome:
        spec = record.spec
        config = resolve_config(spec.config)
        strategy = (
            ImplementationStrategy(spec.strategy) if spec.strategy else None
        )
        request = BuildRequest(config=config, strategy_override=strategy)
        outcome = self.batch.build_one(
            request,
            checkpoint_dir=self.checkpoint_dir(record.job_id),
            resume=True,
        )
        if outcome.error is not None:
            return _AttemptOutcome(
                state=JobState.FAILED,
                error={
                    "kind": outcome.error.kind,
                    "message": outcome.error.message,
                },
            )
        assert outcome.result is not None
        return _AttemptOutcome(
            state=JobState.SUCCEEDED,
            result=outcome.result.to_summary_dict(),
            cached=outcome.cached,
            resumed_stages=tuple(outcome.result.resumed_stages),
        )

    def _run_deploy(self, record: JobRecord) -> _AttemptOutcome:
        spec = record.spec
        config = resolve_config(spec.config)
        report = self.platform.deploy_wami(config, frames=spec.frames)
        return _AttemptOutcome(
            state=JobState.SUCCEEDED, result=report.to_summary_dict()
        )
