"""Versioned JSON envelopes and a dependency-free schema validator.

Every request and response body of the service API — and every CLI
``--json`` payload — travels inside the same envelope::

    {"schema_version": 1, "kind": "job", ...payload...}

``schema_version`` is bumped when a payload's shape changes
incompatibly; ``kind`` names the payload so one parser can dispatch
every verb the same way. The committed shape contracts live under
``tests/service/data/*.schema.json`` and are enforced by the
round-trip tests; :func:`validate` is the (deliberately small)
JSON-Schema-subset checker both the daemon and the tests run, so the
service never grows a dependency for its own wire format.

Supported schema keywords: ``type`` (including a list of types),
``properties``, ``required``, ``additionalProperties`` (boolean),
``items``, ``enum``, ``const``, ``anyOf``, ``minimum``, ``$defs`` and
local ``$ref`` (``#/$defs/<name>``). That subset covers every payload
the platform emits; an unknown keyword is ignored, matching
JSON-Schema's open-world default.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, List, Optional

from repro.errors import PrEspError

#: Bump on any incompatible change to a service or CLI JSON payload.
SCHEMA_VERSION = 1

#: JSON-type name -> accepted Python types. ``bool`` is excluded from
#: the numeric types (JSON booleans are not numbers).
_TYPES = {
    "object": (dict,),
    "array": (list,),
    "string": (str,),
    "integer": (int,),
    "number": (int, float),
    "boolean": (bool,),
    "null": (type(None),),
}


class SchemaError(PrEspError):
    """A payload violated its committed schema (or the envelope)."""


def envelope(kind: str, payload: Optional[Dict] = None, **extra) -> Dict:
    """Wrap ``payload`` in the versioned envelope.

    The envelope keys lead the document; payload keys keep their names
    (a payload must not carry ``schema_version``/``kind`` of its own).
    """
    document: Dict = {"schema_version": SCHEMA_VERSION, "kind": str(kind)}
    for source in (payload or {}, extra):
        for key, value in source.items():
            if key in ("schema_version", "kind"):
                raise SchemaError(f"payload may not carry the envelope key {key!r}")
            document[key] = value
    return document


def check_envelope(document: object, kind: Optional[str] = None) -> Dict:
    """Validate the envelope of a parsed document; returns it.

    ``kind`` pins the expected payload kind when the caller knows it.
    A version mismatch is an error, not a warning — clients negotiate
    by version, never by guessing shapes.
    """
    if not isinstance(document, dict):
        raise SchemaError(f"expected a JSON object, got {type(document).__name__}")
    version = document.get("schema_version")
    if version != SCHEMA_VERSION:
        raise SchemaError(
            f"unsupported schema_version {version!r} (this build speaks "
            f"{SCHEMA_VERSION})"
        )
    actual = document.get("kind")
    if not isinstance(actual, str) or not actual:
        raise SchemaError("envelope is missing its 'kind'")
    if kind is not None and actual != kind:
        raise SchemaError(f"expected a {kind!r} payload, got {actual!r}")
    return document


# ----------------------------------------------------------------------
# the validator
# ----------------------------------------------------------------------
def _type_ok(instance: object, name: str) -> bool:
    accepted = _TYPES.get(name)
    if accepted is None:
        raise SchemaError(f"schema names unknown type {name!r}")
    if isinstance(instance, bool) and name in ("integer", "number"):
        return False
    return isinstance(instance, accepted)


def _resolve_ref(ref: str, root: Dict) -> Dict:
    if not ref.startswith("#/"):
        raise SchemaError(f"only local $ref is supported, got {ref!r}")
    node: object = root
    for part in ref[2:].split("/"):
        if not isinstance(node, dict) or part not in node:
            raise SchemaError(f"unresolvable $ref {ref!r}")
        node = node[part]
    if not isinstance(node, dict):
        raise SchemaError(f"$ref {ref!r} does not point at a schema object")
    return node


def validate(
    instance: object,
    schema: Dict,
    root: Optional[Dict] = None,
    path: str = "$",
) -> List[str]:
    """All violations of ``schema`` by ``instance`` (empty = valid)."""
    root = root if root is not None else schema
    if "$ref" in schema:
        return validate(instance, _resolve_ref(schema["$ref"], root), root, path)
    errors: List[str] = []

    if "const" in schema and instance != schema["const"]:
        errors.append(f"{path}: expected const {schema['const']!r}, got {instance!r}")
    if "enum" in schema and instance not in schema["enum"]:
        errors.append(f"{path}: {instance!r} not in enum {schema['enum']!r}")

    declared = schema.get("type")
    if declared is not None:
        names = declared if isinstance(declared, list) else [declared]
        if not any(_type_ok(instance, name) for name in names):
            errors.append(
                f"{path}: expected {'/'.join(names)}, got {type(instance).__name__}"
            )
            return errors  # shape checks below would only cascade

    if "anyOf" in schema:
        candidates = [
            validate(instance, option, root, path) for option in schema["anyOf"]
        ]
        if not any(not errs for errs in candidates):
            flat = "; ".join(errs[0] for errs in candidates if errs)
            errors.append(f"{path}: no anyOf branch matched ({flat})")

    if isinstance(instance, dict):
        properties = schema.get("properties", {})
        for name in schema.get("required", []):
            if name not in instance:
                errors.append(f"{path}: missing required property {name!r}")
        for name, value in instance.items():
            if name in properties:
                errors.extend(
                    validate(value, properties[name], root, f"{path}.{name}")
                )
            elif schema.get("additionalProperties") is False:
                errors.append(f"{path}: unexpected property {name!r}")
    elif isinstance(instance, list) and "items" in schema:
        for index, item in enumerate(instance):
            errors.extend(validate(item, schema["items"], root, f"{path}[{index}]"))

    if isinstance(instance, (int, float)) and not isinstance(instance, bool):
        if "minimum" in schema and instance < schema["minimum"]:
            errors.append(
                f"{path}: {instance!r} below minimum {schema['minimum']!r}"
            )
    return errors


def ensure_valid(instance: object, schema: Dict, label: str = "payload") -> None:
    """Raise :class:`SchemaError` with every violation listed."""
    errors = validate(instance, schema)
    if errors:
        raise SchemaError(f"invalid {label}: " + "; ".join(errors))


def load_schema(path: Path) -> Dict:
    """Read one committed ``*.schema.json`` contract."""
    try:
        return json.loads(Path(path).read_text())
    except (OSError, ValueError) as error:
        raise SchemaError(f"unreadable schema {path}: {error}") from error


# ----------------------------------------------------------------------
# the submit-request contract (the one body the daemon must police)
# ----------------------------------------------------------------------
#: What a ``POST /v1/jobs`` body must look like. Response shapes are
#: pinned by the committed test contracts; the request shape is also
#: enforced live, because garbage in a submit must 400, not crash a
#: worker thread later.
SUBMIT_REQUEST_SCHEMA: Dict = {
    "type": "object",
    "required": ["schema_version", "kind", "config"],
    "additionalProperties": False,
    "properties": {
        "schema_version": {"const": SCHEMA_VERSION},
        "kind": {"const": "submit"},
        "config": {"type": "string"},
        "job_kind": {"enum": ["build", "deploy"]},
        "tenant": {"type": "string"},
        "priority": {"type": "integer"},
        "strategy": {"type": ["string", "null"]},
        "frames": {"type": "integer", "minimum": 1},
        "deadline_s": {"type": ["number", "null"], "minimum": 0},
        "max_attempts": {"type": ["integer", "null"], "minimum": 1},
    },
}
