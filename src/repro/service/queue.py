"""Priority job queue with per-tenant quotas and admission control.

Admission is decided *at submit time*: a tenant over any of its quotas
is rejected with :class:`AdmissionError` (the HTTP layer maps it to
429) and the job is **never queued** — a full queue must shed load at
the door, not grow an unbounded backlog the supervisor can't drain.

Scheduling order is strict priority (higher first), FIFO within a
priority class using the daemon-global admission sequence as the tie
break. The queue itself holds only ``(priority, seq, job_id)`` keys —
records live in the supervisor's table — so cancellation is a lazy
tombstone: cancelled IDs are skipped at pop time.
"""

from __future__ import annotations

import heapq
import threading
from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

from repro.errors import PrEspError
from repro.service.jobs import JobRecord


class AdmissionError(PrEspError):
    """The submit was rejected at the door (quota or closed queue).

    ``reason`` is a stable machine-readable token the API surfaces in
    the 429 body: ``queue_full``, ``tenant_queued``, ``tenant_active``
    or ``closed``.
    """

    def __init__(self, message: str, reason: str = "quota") -> None:
        super().__init__(message)
        self.reason = reason


@dataclass(frozen=True)
class TenantQuota:
    """Admission limits for one tenant (or the ``*`` default).

    ``max_queued`` bounds jobs waiting in the queue; ``max_active``
    bounds queued + running together — the tenant's total footprint on
    the daemon. Either may be ``None`` (unlimited).
    """

    max_queued: Optional[int] = None
    max_active: Optional[int] = None


#: Fallback quota applied to tenants without an explicit entry.
DEFAULT_QUOTA = TenantQuota(max_queued=None, max_active=None)


class JobQueue:
    """Bounded priority queue, thread-safe, with per-tenant accounting.

    The supervisor's worker threads block on :meth:`pop`; the HTTP
    handler threads call :meth:`submit`. ``capacity`` bounds the whole
    queue across tenants (``None`` = unbounded).
    """

    def __init__(
        self,
        capacity: Optional[int] = None,
        quotas: Optional[Dict[str, TenantQuota]] = None,
        default_quota: TenantQuota = DEFAULT_QUOTA,
    ) -> None:
        # A non-positive capacity is an operator configuration error,
        # not an admission decision — AdmissionError's reason tokens
        # are reserved for true 429 paths.
        if capacity is not None and capacity <= 0:
            raise ValueError(f"queue capacity must be positive: {capacity}")
        self.capacity = capacity
        self.quotas = dict(quotas or {})
        self.default_quota = default_quota
        self._heap: List[Tuple[int, int, str]] = []
        self._tenant_of: Dict[str, str] = {}
        self._queued_by_tenant: Dict[str, int] = {}
        self._running_by_tenant: Dict[str, int] = {}
        self._tombstones: Set[str] = set()
        self._queued = 0
        self._closed = False
        self._lock = threading.Lock()
        self._not_empty = threading.Condition(self._lock)
        #: Admission decisions, for /metrics and the status payload.
        self.admitted = 0
        self.rejected = 0

    # ------------------------------------------------------------------
    def quota_for(self, tenant: str) -> TenantQuota:
        return self.quotas.get(tenant, self.default_quota)

    def _check_admission(self, tenant: str) -> None:
        if self._closed:
            raise AdmissionError("queue is closed", reason="closed")
        if self.capacity is not None and self._queued >= self.capacity:
            raise AdmissionError(
                f"queue is full ({self._queued}/{self.capacity})",
                reason="queue_full",
            )
        quota = self.quota_for(tenant)
        queued = self._queued_by_tenant.get(tenant, 0)
        running = self._running_by_tenant.get(tenant, 0)
        if quota.max_queued is not None and queued >= quota.max_queued:
            raise AdmissionError(
                f"tenant {tenant!r} is over its queued-job quota "
                f"({queued}/{quota.max_queued})",
                reason="tenant_queued",
            )
        if quota.max_active is not None and queued + running >= quota.max_active:
            raise AdmissionError(
                f"tenant {tenant!r} is over its active-job quota "
                f"({queued + running}/{quota.max_active})",
                reason="tenant_active",
            )

    def submit(self, record: JobRecord) -> None:
        """Admit one queued record, or raise :class:`AdmissionError`."""
        tenant = record.spec.tenant
        with self._lock:
            try:
                self._check_admission(tenant)
            except AdmissionError:
                self.rejected += 1
                raise
            heapq.heappush(
                self._heap,
                (-record.spec.priority, record.submit_seq, record.job_id),
            )
            self._tenant_of[record.job_id] = tenant
            self._queued += 1
            self._queued_by_tenant[tenant] = self._queued_by_tenant.get(tenant, 0) + 1
            self.admitted += 1
            self._not_empty.notify()

    def requeue(self, record: JobRecord) -> None:
        """Re-enter a previously admitted record, skipping quotas.

        The watchdog's crash/timeout requeue and the dead-letter
        revive both put back work that already passed admission once;
        bouncing it off a momentarily full quota would drop a job the
        client was promised. Only a closed queue refuses.
        """
        tenant = record.spec.tenant
        with self._lock:
            if self._closed:
                self.rejected += 1
                raise AdmissionError("queue is closed", reason="closed")
            heapq.heappush(
                self._heap,
                (-record.spec.priority, record.submit_seq, record.job_id),
            )
            self._tenant_of[record.job_id] = tenant
            self._queued += 1
            self._queued_by_tenant[tenant] = self._queued_by_tenant.get(tenant, 0) + 1
            self._not_empty.notify()

    # ------------------------------------------------------------------
    def pop(self, timeout: Optional[float] = None) -> Optional[str]:
        """The next runnable job ID, or ``None`` on timeout/closed-empty.

        Tombstoned (cancelled) entries are discarded here; the caller
        must call :meth:`mark_done` once the job leaves RUNNING.
        """
        with self._not_empty:
            while True:
                while self._heap:
                    _, _, job_id = heapq.heappop(self._heap)
                    if job_id in self._tombstones:
                        self._tombstones.discard(job_id)
                        continue
                    tenant = self._tenant_of.pop(job_id, None)
                    if tenant is None:  # stale entry, already cancelled
                        continue
                    self._queued -= 1
                    count = self._queued_by_tenant.get(tenant, 1) - 1
                    if count:
                        self._queued_by_tenant[tenant] = count
                    else:
                        self._queued_by_tenant.pop(tenant, None)
                    self._running_by_tenant[tenant] = (
                        self._running_by_tenant.get(tenant, 0) + 1
                    )
                    return job_id
                if self._closed:
                    return None
                if not self._not_empty.wait(timeout=timeout):
                    return None

    def mark_done(self, tenant: str) -> None:
        """Release the running slot a popped job held for ``tenant``."""
        with self._lock:
            count = self._running_by_tenant.get(tenant, 0) - 1
            if count > 0:
                self._running_by_tenant[tenant] = count
            else:
                self._running_by_tenant.pop(tenant, None)

    def cancel(self, record: JobRecord) -> bool:
        """Tombstone a queued job; True if it will never be popped."""
        with self._lock:
            if record.job_id in self._tenant_of:
                self._tombstones.add(record.job_id)
                tenant = self._tenant_of.pop(record.job_id)
                self._queued -= 1
                count = self._queued_by_tenant.get(tenant, 1) - 1
                if count:
                    self._queued_by_tenant[tenant] = count
                else:
                    self._queued_by_tenant.pop(tenant, None)
                return True
            return False

    def close(self) -> None:
        """Stop admitting; wake every blocked :meth:`pop`."""
        with self._lock:
            self._closed = True
            self._not_empty.notify_all()

    # ------------------------------------------------------------------
    def depth(self) -> int:
        with self._lock:
            return self._queued

    def snapshot(self) -> Dict:
        """Queue/tenant occupancy for the status and metrics payloads."""
        with self._lock:
            tenants = sorted(
                set(self._queued_by_tenant) | set(self._running_by_tenant)
            )
            return {
                "queued": self._queued,
                "capacity": self.capacity,
                "admitted": self.admitted,
                "rejected": self.rejected,
                "tenants": {
                    tenant: {
                        "queued": self._queued_by_tenant.get(tenant, 0),
                        "running": self._running_by_tenant.get(tenant, 0),
                    }
                    for tenant in tenants
                },
            }
