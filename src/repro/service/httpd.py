"""The daemon's HTTP/JSON API (stdlib ``http.server``, no new deps).

Versioned routes, all bodies in the :mod:`repro.service.schema`
envelope::

    POST /v1/jobs               submit   (schema-validated; 202 / 400 / 429)
    GET  /v1/jobs               list     (?tenant=&state= filters)
    GET  /v1/jobs/<id>          status   (404 unknown)
    POST /v1/jobs/<id>/cancel   cancel   (idempotent)
    POST /v1/jobs/<id>/requeue  revive a dead-lettered job (409 unless dead)
    GET  /v1/jobs/<id>/result   result   (409 until terminal)
    GET  /v1/jobs/<id>/artifacts        checkpoint manifest + result
    GET  /healthz               live verdict (200 ok/degraded, 503 else)
    GET  /metrics               Prometheus text exposition

``ThreadingHTTPServer`` gives each request its own thread; everything
the handlers touch on the :class:`~repro.service.supervisor.Supervisor`
is lock-guarded there. Admission failures map to HTTP 429 with a
machine-readable ``reason`` — an over-quota submit is *rejected*, never
queued.
"""

from __future__ import annotations

import json
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Dict, Optional, Tuple
from urllib.parse import parse_qs, urlparse

from repro.errors import PrEspError
from repro.obs.export import prometheus_text
from repro.obs.logconfig import get_logger
from repro.service.jobs import JobError, JobSpec, JobState
from repro.service.queue import AdmissionError
from repro.service.schema import (
    SUBMIT_REQUEST_SCHEMA,
    SchemaError,
    envelope,
    validate,
)
from repro.service.supervisor import Supervisor

logger = get_logger("service.httpd")

#: The one API version this build serves.
API_PREFIX = "/v1"

#: Cap on request bodies: a submit is a small JSON document, so
#: anything bigger is garbage (or abuse) and is rejected before read.
MAX_BODY_BYTES = 64 * 1024


class ServiceHTTPServer(ThreadingHTTPServer):
    """A threading HTTP server carrying the supervisor reference."""

    daemon_threads = True
    allow_reuse_address = True

    def __init__(self, address, supervisor: Supervisor) -> None:
        super().__init__(address, ServiceHandler)
        self.supervisor = supervisor


class ServiceHandler(BaseHTTPRequestHandler):
    """Routes requests onto the supervisor; every body is an envelope."""

    protocol_version = "HTTP/1.1"
    server: ServiceHTTPServer

    # ------------------------------------------------------------------
    # plumbing
    # ------------------------------------------------------------------
    def log_message(self, format: str, *args) -> None:  # noqa: A002
        logger.debug("%s %s", self.address_string(), format % args)

    def _send_json(self, status: int, document: Dict) -> None:
        body = (json.dumps(document, sort_keys=True) + "\n").encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _send_error(
        self, status: int, message: str, reason: str = "error"
    ) -> None:
        self._send_json(
            status,
            envelope("error", {"error": {"reason": reason, "message": message}}),
        )

    def _read_body(self) -> Optional[Dict]:
        length = int(self.headers.get("Content-Length") or 0)
        if length <= 0:
            self._send_error(400, "request body required", reason="bad_request")
            return None
        if length > MAX_BODY_BYTES:
            self._send_error(
                413,
                f"body of {length} bytes exceeds the {MAX_BODY_BYTES}-byte cap",
                reason="too_large",
            )
            return None
        raw = self.rfile.read(length)
        try:
            document = json.loads(raw)
        except ValueError:
            self._send_error(400, "body is not valid JSON", reason="bad_request")
            return None
        if not isinstance(document, dict):
            self._send_error(400, "body must be a JSON object", reason="bad_request")
            return None
        return document

    def _route(self, path: str) -> Tuple[str, ...]:
        return tuple(part for part in path.split("/") if part)

    # ------------------------------------------------------------------
    # dispatch
    # ------------------------------------------------------------------
    def do_GET(self) -> None:  # noqa: N802 - stdlib naming
        url = urlparse(self.path)
        parts = self._route(url.path)
        try:
            if parts in ((), ("healthz",), ("v1", "healthz")):
                return self._get_healthz()
            if parts in (("metrics",), ("v1", "metrics")):
                return self._get_metrics()
            if parts == ("v1", "jobs"):
                return self._get_jobs(parse_qs(url.query))
            if len(parts) == 3 and parts[:2] == ("v1", "jobs"):
                return self._get_job(parts[2])
            if (
                len(parts) == 4
                and parts[:2] == ("v1", "jobs")
                and parts[3] in ("result", "artifacts")
            ):
                if parts[3] == "result":
                    return self._get_result(parts[2])
                return self._get_artifacts(parts[2])
            self._send_error(404, f"no route for GET {url.path}", reason="not_found")
        except Exception as error:  # noqa: BLE001 - a request never kills the daemon
            logger.exception("GET %s failed", self.path)
            self._send_error(500, str(error), reason="internal")

    def do_POST(self) -> None:  # noqa: N802 - stdlib naming
        url = urlparse(self.path)
        parts = self._route(url.path)
        try:
            if parts == ("v1", "jobs"):
                return self._post_submit()
            if len(parts) == 4 and parts[:2] == ("v1", "jobs") and parts[3] == "cancel":
                return self._post_cancel(parts[2])
            if len(parts) == 4 and parts[:2] == ("v1", "jobs") and parts[3] == "requeue":
                return self._post_requeue(parts[2])
            self._send_error(404, f"no route for POST {url.path}", reason="not_found")
        except Exception as error:  # noqa: BLE001
            logger.exception("POST %s failed", self.path)
            self._send_error(500, str(error), reason="internal")

    # ------------------------------------------------------------------
    # handlers
    # ------------------------------------------------------------------
    def _post_submit(self) -> None:
        document = self._read_body()
        if document is None:
            return
        errors = validate(document, SUBMIT_REQUEST_SCHEMA)
        if errors:
            self._send_error(
                400, "; ".join(errors), reason="schema_violation"
            )
            return
        try:
            spec = JobSpec(
                config=document["config"],
                kind=document.get("job_kind", "build"),
                tenant=document.get("tenant", "default"),
                priority=int(document.get("priority", 0)),
                strategy=document.get("strategy"),
                frames=int(document.get("frames", 1)),
                deadline_s=(
                    float(document["deadline_s"])
                    if document.get("deadline_s") is not None
                    else None
                ),
                max_attempts=(
                    int(document["max_attempts"])
                    if document.get("max_attempts") is not None
                    else None
                ),
            )
            record = self.server.supervisor.submit(spec)
        except AdmissionError as error:
            self._send_error(429, str(error), reason=error.reason)
            return
        except (JobError, SchemaError, PrEspError) as error:
            self._send_error(400, str(error), reason="bad_request")
            return
        self._send_json(202, envelope("job", record.to_dict()))

    def _get_jobs(self, query: Dict) -> None:
        tenant = (query.get("tenant") or [None])[0]
        state_name = (query.get("state") or [None])[0]
        state = None
        if state_name is not None:
            try:
                state = JobState(state_name)
            except ValueError:
                self._send_error(
                    400, f"unknown state {state_name!r}", reason="bad_request"
                )
                return
        records = self.server.supervisor.jobs(tenant=tenant, state=state)
        self._send_json(
            200,
            envelope(
                "jobs",
                {
                    "jobs": [record.to_dict() for record in records],
                    "queue": self.server.supervisor.queue.snapshot(),
                },
            ),
        )

    def _get_job(self, job_id: str) -> None:
        record = self.server.supervisor.get(job_id)
        if record is None:
            self._send_error(404, f"unknown job {job_id!r}", reason="not_found")
            return
        self._send_json(200, envelope("job", record.to_dict()))

    def _post_cancel(self, job_id: str) -> None:
        record = self.server.supervisor.cancel(job_id)
        if record is None:
            self._send_error(404, f"unknown job {job_id!r}", reason="not_found")
            return
        self._send_json(200, envelope("job", record.to_dict()))

    def _post_requeue(self, job_id: str) -> None:
        try:
            record = self.server.supervisor.requeue(job_id)
        except JobError as error:
            # Requeue revives a dead job exactly once: a second POST
            # (or one against a live job) is a state conflict, not a
            # bad request.
            self._send_error(409, str(error), reason="not_dead")
            return
        except AdmissionError as error:
            self._send_error(429, str(error), reason=error.reason)
            return
        if record is None:
            self._send_error(404, f"unknown job {job_id!r}", reason="not_found")
            return
        self._send_json(200, envelope("job", record.to_dict()))

    def _get_result(self, job_id: str) -> None:
        record = self.server.supervisor.get(job_id)
        if record is None:
            self._send_error(404, f"unknown job {job_id!r}", reason="not_found")
            return
        if not record.state.terminal:
            self._send_error(
                409,
                f"job {job_id} is {record.state.value}; result not ready",
                reason="not_ready",
            )
            return
        self._send_json(
            200,
            envelope(
                "result",
                {
                    "job_id": record.job_id,
                    "state": record.state.value,
                    "cached": record.cached,
                    "resumed_stages": list(record.resumed_stages),
                    "result": record.result,
                    "error": record.error,
                },
            ),
        )

    def _get_artifacts(self, job_id: str) -> None:
        supervisor = self.server.supervisor
        record = supervisor.get(job_id)
        if record is None:
            self._send_error(404, f"unknown job {job_id!r}", reason="not_found")
            return
        directory = supervisor.checkpoint_dir(job_id)
        files = []
        stages = []
        if directory.is_dir():
            for path in sorted(directory.rglob("*")):
                if path.is_file():
                    files.append(
                        {
                            "name": str(path.relative_to(directory)),
                            "bytes": path.stat().st_size,
                        }
                    )
            manifest = directory / "manifest.json"
            if manifest.is_file():
                try:
                    stages = [
                        entry["stage"]
                        for entry in json.loads(manifest.read_text()).get(
                            "stages", []
                        )
                    ]
                except (ValueError, KeyError, TypeError):
                    stages = []
        self._send_json(
            200,
            envelope(
                "artifacts",
                {
                    "job_id": record.job_id,
                    "state": record.state.value,
                    "checkpoint_stages": stages,
                    "files": files,
                    "result": record.result,
                },
            ),
        )

    def _get_healthz(self) -> None:
        supervisor = self.server.supervisor
        status, verdict = supervisor.health_verdict()
        http_status = 200 if verdict.exit_code < 2 else 503
        self._send_json(
            http_status,
            envelope(
                "health",
                {
                    "status": status,
                    "verdict": verdict.value,
                    "exit_code": verdict.exit_code,
                    "recovering": supervisor.recovering(),
                    "queue": supervisor.queue.snapshot(),
                    "breaker": supervisor.breaker.snapshot(),
                    "dead": len(supervisor.jobs(state=JobState.DEAD)),
                },
            ),
        )

    def _get_metrics(self) -> None:
        body = prometheus_text(self.server.supervisor.registry).encode("utf-8")
        self.send_response(200)
        self.send_header("Content-Type", "text/plain; version=0.0.4")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)
