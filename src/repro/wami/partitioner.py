"""Automatic accelerator-to-tile partitioning.

The paper maps the WAMI accelerators onto the reconfigurable tiles *by
hand* ("we manually partitioned the accelerators to reconfigurable
tiles in a way that most likely maximizes the performance", Sec. VI).
This module automates that step: it generates candidate allocations,
scores them with an analytic frame-time estimator (list scheduling over
the dataflow graph with per-tile serialization and reconfiguration
stalls), and returns the best. The Fig.4-style benches compare its
output against the paper's Table VI allocations on the full
discrete-event runtime.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import ConfigurationError
from repro.flow.grouping import balanced_groups
from repro.wami.accelerators import WAMI_ACCELERATORS, WamiAcceleratorProfile
from repro.wami.graph import WAMI_GRAPH, WamiGraph, WamiStage

#: Analytic reconfiguration-stall model: per-swap seconds as an affine
#: function of the tile's region size (driven by its largest mode).
#: Matches the runtime model at the default fetch rate: a ~40k-LUT
#: region's compressed pbs (~330 KB) streams in ~3.5 ms.
RECONFIG_BASE_S = 0.8e-3
RECONFIG_S_PER_KLUT = 0.07e-3


@dataclass(frozen=True)
class Allocation:
    """One candidate partitioning: a tuple of stage groups per tile."""

    tiles: Tuple[Tuple[WamiStage, ...], ...]

    def __post_init__(self) -> None:
        seen: set = set()
        for group in self.tiles:
            if not group:
                raise ConfigurationError("allocation contains an empty tile")
            for stage in group:
                if stage in seen:
                    raise ConfigurationError(f"stage {stage.name} allocated twice")
                seen.add(stage)

    @property
    def num_tiles(self) -> int:
        """Number of reconfigurable tiles used."""
        return len(self.tiles)

    def covered_stages(self) -> List[WamiStage]:
        """All mapped stages."""
        return [s for group in self.tiles for s in group]

    def tile_of(self) -> Dict[WamiStage, int]:
        """Stage -> tile index (unmapped stages absent)."""
        return {
            stage: index
            for index, group in enumerate(self.tiles)
            for stage in group
        }

    def indexes(self) -> Tuple[Tuple[int, ...], ...]:
        """Fig. 3 index view (the Table VI notation)."""
        return tuple(tuple(s.value for s in group) for group in self.tiles)


class WamiPartitioner:
    """Generates and scores allocations of the WAMI DAG."""

    def __init__(
        self,
        graph: WamiGraph = WAMI_GRAPH,
        profiles: Optional[Dict[WamiStage, WamiAcceleratorProfile]] = None,
    ) -> None:
        self.graph = graph
        self.profiles = dict(profiles or WAMI_ACCELERATORS)

    # ------------------------------------------------------------------
    # candidate generators
    # ------------------------------------------------------------------
    def lpt_allocation(self, num_tiles: int) -> Allocation:
        """Balance per-tile total execution time (LPT greedy)."""
        self._check_tiles(num_tiles)
        groups = balanced_groups(
            list(WamiStage),
            num_tiles,
            weight=lambda s: self.profiles[s].exec_time_s,
        )
        return Allocation(tiles=tuple(tuple(g) for g in groups))

    def chain_allocation(self, num_tiles: int) -> Allocation:
        """Cut the topological order into contiguous, time-balanced
        segments — preserves producer/consumer locality so a tile's
        reconfigurations interleave naturally with its successor's
        execution."""
        self._check_tiles(num_tiles)
        order = self.graph.topological_order()
        times = [self.profiles[s].exec_time_s for s in order]
        target = sum(times) / num_tiles
        groups: List[List[WamiStage]] = [[]]
        acc = 0.0
        for index, (stage, time) in enumerate(zip(order, times)):
            stages_left = len(order) - index  # including this one
            groups_left = num_tiles - len(groups)  # still to be opened
            can_split = len(groups) < num_tiles and stages_left > groups_left
            if groups[-1] and acc >= target and can_split:
                groups.append([])
                acc = 0.0
            groups[-1].append(stage)
            acc += time
        while len(groups) < num_tiles:
            # Under-split (possible with very uneven times): split the
            # largest group to reach the requested tile count.
            largest = max(range(len(groups)), key=lambda i: len(groups[i]))
            group = groups.pop(largest)
            half = max(1, len(group) // 2)
            groups.insert(largest, group[half:])
            groups.insert(largest, group[:half])
        return Allocation(tiles=tuple(tuple(g) for g in groups))

    def random_allocations(
        self, num_tiles: int, count: int, seed: int = 0
    ) -> List[Allocation]:
        """Random non-empty partitions (for search baselines)."""
        self._check_tiles(num_tiles)
        rng = np.random.default_rng(seed)
        stages = list(WamiStage)
        allocations = []
        for _ in range(count):
            while True:
                assignment = rng.integers(0, num_tiles, size=len(stages))
                if len(set(assignment.tolist())) == num_tiles:
                    break
            groups: List[List[WamiStage]] = [[] for _ in range(num_tiles)]
            for stage, tile in zip(stages, assignment):
                groups[tile].append(stage)
            allocations.append(Allocation(tiles=tuple(tuple(g) for g in groups)))
        return allocations

    def _check_tiles(self, num_tiles: int) -> None:
        if not 1 <= num_tiles <= len(WamiStage):
            raise ConfigurationError(
                f"tile count must be in [1, {len(WamiStage)}], got {num_tiles}"
            )

    # ------------------------------------------------------------------
    # scoring
    # ------------------------------------------------------------------
    def reconfig_stall_s(self, group: Sequence[WamiStage]) -> float:
        """Per-swap stall for a tile hosting ``group`` (region sized by
        its largest mode)."""
        region_kluts = max(self.profiles[s].luts for s in group) / 1000.0
        return RECONFIG_BASE_S + RECONFIG_S_PER_KLUT * region_kluts

    def estimate_frame_time(self, allocation: Allocation) -> float:
        """List-schedule one frame: every stage waits for its DAG
        predecessors and for its tile (which reconfigures before each
        stage — one accelerator resident at a time)."""
        tile_of = allocation.tile_of()
        tile_free = [0.0] * allocation.num_tiles
        finish: Dict[WamiStage, float] = {}
        for stage in self.graph.topological_order():
            profile = self.profiles[stage]
            deps_done = max(
                (finish[p] for p in self.graph.predecessors(stage)), default=0.0
            )
            if stage in tile_of:
                tile = tile_of[stage]
                stall = self.reconfig_stall_s(allocation.tiles[tile])
                start = max(deps_done, tile_free[tile]) + stall
                finish[stage] = start + profile.exec_time_s
                tile_free[tile] = finish[stage]
            else:
                finish[stage] = deps_done + profile.sw_time_s
        return max(finish.values())

    def best_allocation(
        self,
        num_tiles: int,
        random_candidates: int = 200,
        seed: int = 2023,
    ) -> Tuple[Allocation, float]:
        """The best of {LPT, chain, random search} under the estimator."""
        candidates = [
            self.lpt_allocation(num_tiles),
            self.chain_allocation(num_tiles),
        ] + self.random_allocations(num_tiles, random_candidates, seed=seed)
        scored = [(self.estimate_frame_time(a), a) for a in candidates]
        best_time, best = min(scored, key=lambda pair: pair[0])
        return best, best_time


def soc_from_allocation(name: str, allocation: Allocation, board: str = "vc707"):
    """Materialize an allocation as a deployable 3x3 SoC config."""
    from repro.soc.config import SocConfig
    from repro.soc.tiles import ReconfigurableTile, Tile, TileKind
    from repro.wami.accelerators import wami_accelerator

    tiles: List = [
        Tile(kind=TileKind.CPU, name="cpu0"),
        Tile(kind=TileKind.MEM, name="mem0"),
        Tile(kind=TileKind.AUX, name="aux0"),
    ]
    for index, group in enumerate(allocation.tiles, start=1):
        tiles.append(
            ReconfigurableTile(
                name=f"rt{index}",
                modes=[wami_accelerator(stage).as_ip() for stage in group],
            )
        )
    rows, cols = (3, 3) if len(tiles) <= 9 else (3, 4)
    return SocConfig.assemble(name, board=board, rows=rows, cols=cols, tiles=tiles)
