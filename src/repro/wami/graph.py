"""The WAMI-App dataflow graph (Fig. 3 of the paper).

Twelve accelerators: Debayer, Grayscale, nine Lucas-Kanade
sub-accelerators (the paper decomposed LK "to further parallelize its
execution"), and Change-Detection. Kernel indexes 1..12 are the ones
Tables IV and VI reference.
"""

from __future__ import annotations

import enum
from typing import Dict, List, Sequence, Tuple

import networkx as nx

from repro.errors import ConfigurationError


class WamiStage(enum.Enum):
    """The twelve WAMI accelerators, numbered as in Fig. 3."""

    DEBAYER = 1
    GRAYSCALE = 2
    GRADIENT = 3
    WARP = 4
    SUBTRACT = 5
    STEEPEST_DESCENT = 6
    SD_UPDATE = 7
    HESSIAN = 8
    MATRIX_SOLVE = 9
    LK_FLOW = 10
    INTERP = 11
    CHANGE_DETECTION = 12

    @property
    def kernel_name(self) -> str:
        """Catalog identifier (lower-case)."""
        return self.name.lower()

    @classmethod
    def from_index(cls, index: int) -> "WamiStage":
        """Stage with Fig. 3 index ``index`` (1..12)."""
        for stage in cls:
            if stage.value == index:
                return stage
        raise ConfigurationError(f"no WAMI stage with index {index}")


#: Dataflow edges of Fig. 3 (producer -> consumer).
WAMI_EDGES: Tuple[Tuple[WamiStage, WamiStage], ...] = (
    (WamiStage.DEBAYER, WamiStage.GRAYSCALE),
    (WamiStage.GRAYSCALE, WamiStage.GRADIENT),
    (WamiStage.GRAYSCALE, WamiStage.WARP),
    (WamiStage.GRADIENT, WamiStage.STEEPEST_DESCENT),
    (WamiStage.WARP, WamiStage.SUBTRACT),
    (WamiStage.STEEPEST_DESCENT, WamiStage.SD_UPDATE),
    (WamiStage.SUBTRACT, WamiStage.SD_UPDATE),
    (WamiStage.STEEPEST_DESCENT, WamiStage.HESSIAN),
    (WamiStage.HESSIAN, WamiStage.MATRIX_SOLVE),
    (WamiStage.SD_UPDATE, WamiStage.MATRIX_SOLVE),
    (WamiStage.MATRIX_SOLVE, WamiStage.LK_FLOW),
    (WamiStage.LK_FLOW, WamiStage.INTERP),
    (WamiStage.GRAYSCALE, WamiStage.INTERP),
    (WamiStage.INTERP, WamiStage.CHANGE_DETECTION),
)


class WamiGraph:
    """The application DAG with scheduling queries."""

    def __init__(self, edges: Sequence[Tuple[WamiStage, WamiStage]] = WAMI_EDGES) -> None:
        graph = nx.DiGraph()
        graph.add_nodes_from(WamiStage)
        graph.add_edges_from(edges)
        if not nx.is_directed_acyclic_graph(graph):
            raise ConfigurationError("WAMI dataflow must be acyclic")
        self._graph = graph

    @property
    def graph(self) -> nx.DiGraph:
        """The underlying networkx DAG."""
        return self._graph

    def predecessors(self, stage: WamiStage) -> List[WamiStage]:
        """Stages whose outputs ``stage`` consumes."""
        return sorted(self._graph.predecessors(stage), key=lambda s: s.value)

    def successors(self, stage: WamiStage) -> List[WamiStage]:
        """Stages consuming the output of ``stage``."""
        return sorted(self._graph.successors(stage), key=lambda s: s.value)

    def topological_order(self) -> List[WamiStage]:
        """A deterministic topological order (ties broken by index)."""
        return list(
            nx.lexicographical_topological_sort(self._graph, key=lambda s: s.value)
        )

    def levels(self) -> List[List[WamiStage]]:
        """ASAP levels: stages in the same level can run concurrently."""
        depth: Dict[WamiStage, int] = {}
        for stage in self.topological_order():
            preds = list(self._graph.predecessors(stage))
            depth[stage] = 1 + max((depth[p] for p in preds), default=-1)
        num_levels = max(depth.values()) + 1
        result: List[List[WamiStage]] = [[] for _ in range(num_levels)]
        for stage, level in depth.items():
            result[level].append(stage)
        for level in result:
            level.sort(key=lambda s: s.value)
        return result

    def critical_path(self, weights: Dict[WamiStage, float]) -> Tuple[List[WamiStage], float]:
        """Longest path under per-stage ``weights`` (execution times)."""
        finish: Dict[WamiStage, float] = {}
        parent: Dict[WamiStage, WamiStage] = {}
        for stage in self.topological_order():
            best = 0.0
            for pred in self._graph.predecessors(stage):
                if finish[pred] > best:
                    best = finish[pred]
                    parent[stage] = pred
            finish[stage] = best + weights[stage]
        end = max(finish, key=lambda s: finish[s])
        path = [end]
        while path[-1] in parent:
            path.append(parent[path[-1]])
        path.reverse()
        return path, finish[end]

    def max_width(self) -> int:
        """Largest number of concurrently runnable stages."""
        return max(len(level) for level in self.levels())


#: The canonical application graph.
WAMI_GRAPH = WamiGraph()
