"""Functional (golden-model) implementations of the 12 WAMI kernels.

The paper decomposes the WAMI-App into Debayer, Grayscale, a
Lucas-Kanade registration pipeline split into nine sub-accelerators,
and Change-Detection (Fig. 3). Each function below is the numerical
reference for one accelerator; ``lucas_kanade`` composes the nine LK
pieces into the full inverse-compositional registration loop.

Conventions: images are float64 numpy arrays indexed [row, col]; warp
parameters ``p`` are 6-vectors of an affine transform

    x' = (1 + p0) * x + p2 * y + p4
    y' = p1 * x + (1 + p3) * y + p5

with x = column, y = row (the classical Baker-Matthews parameterization).
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import Optional, Tuple

import numpy as np


@lru_cache(maxsize=8)
def _coordinate_grid(shape: Tuple[int, int]) -> Tuple[np.ndarray, np.ndarray]:
    """The (ys, xs) pixel-coordinate planes for ``shape``, cached.

    ``warp`` and ``steepest_descent`` both sample on the same integer
    grid; rebuilding it with ``np.mgrid`` on every Lucas-Kanade
    iteration (~20 per frame) dominated their runtime, so the grid is
    built once per shape. The returned arrays are marked read-only —
    callers derive new arrays from them and must never mutate them.
    """
    ys, xs = np.mgrid[0 : shape[0], 0 : shape[1]].astype(np.float64)
    ys.setflags(write=False)
    xs.setflags(write=False)
    return ys, xs


# ----------------------------------------------------------------------
# 1. Debayer
# ----------------------------------------------------------------------
def debayer(bayer: np.ndarray) -> np.ndarray:
    """Demosaic an RGGB Bayer frame into an (H, W, 3) RGB image.

    Bilinear interpolation, the scheme the PERFECT kernel uses. Edge
    pixels are handled by reflective padding.
    """
    if bayer.ndim != 2:
        raise ValueError(f"bayer frame must be 2-D, got shape {bayer.shape}")
    if bayer.shape[0] % 2 or bayer.shape[1] % 2:
        raise ValueError(f"bayer frame needs even dimensions, got {bayer.shape}")
    img = np.asarray(bayer, dtype=np.float64)
    height, width = img.shape

    red_mask = np.zeros_like(img, dtype=bool)
    green_mask = np.zeros_like(img, dtype=bool)
    blue_mask = np.zeros_like(img, dtype=bool)
    red_mask[0::2, 0::2] = True
    green_mask[0::2, 1::2] = True
    green_mask[1::2, 0::2] = True
    blue_mask[1::2, 1::2] = True

    padded = np.pad(img, 1, mode="reflect")

    def neighbor_mean(mask: np.ndarray) -> np.ndarray:
        """Average of the 3x3 neighbours that carry the masked colour."""
        padded_mask = np.pad(mask, 1, mode="reflect").astype(np.float64)
        acc = np.zeros_like(img)
        weight = np.zeros_like(img)
        for dr in (-1, 0, 1):
            for dc in (-1, 0, 1):
                window = padded[1 + dr : 1 + dr + height, 1 + dc : 1 + dc + width]
                wmask = padded_mask[1 + dr : 1 + dr + height, 1 + dc : 1 + dc + width]
                acc += window * wmask
                weight += wmask
        return acc / np.maximum(weight, 1.0)

    rgb = np.empty((height, width, 3), dtype=np.float64)
    red_plane = neighbor_mean(red_mask)
    green_plane = neighbor_mean(green_mask)
    blue_plane = neighbor_mean(blue_mask)
    red_plane[red_mask] = img[red_mask]
    green_plane[green_mask] = img[green_mask]
    blue_plane[blue_mask] = img[blue_mask]
    rgb[..., 0] = red_plane
    rgb[..., 1] = green_plane
    rgb[..., 2] = blue_plane
    return rgb


# ----------------------------------------------------------------------
# 2. Grayscale
# ----------------------------------------------------------------------
def grayscale(rgb: np.ndarray) -> np.ndarray:
    """ITU-R BT.601 luma from an (H, W, 3) RGB image."""
    if rgb.ndim != 3 or rgb.shape[2] != 3:
        raise ValueError(f"expected (H, W, 3) RGB image, got shape {rgb.shape}")
    weights = np.array([0.299, 0.587, 0.114])
    return np.asarray(rgb, dtype=np.float64) @ weights


# ----------------------------------------------------------------------
# 3. Gradient
# ----------------------------------------------------------------------
def gradient(img: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """Central-difference spatial gradients (d/dx = columns, d/dy = rows)."""
    if img.ndim != 2:
        raise ValueError(f"gradient needs a 2-D image, got shape {img.shape}")
    gy, gx = np.gradient(np.asarray(img, dtype=np.float64))
    return gx, gy


# ----------------------------------------------------------------------
# 4. Warp (and 11. Interp, which shares the sampling core)
# ----------------------------------------------------------------------
def _affine_grid(shape: Tuple[int, int], p: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """Sample coordinates (rows, cols) of the affine warp W(x; p)."""
    ys, xs = _coordinate_grid(tuple(shape))
    xw = (1.0 + p[0]) * xs + p[2] * ys + p[4]
    yw = p[1] * xs + (1.0 + p[3]) * ys + p[5]
    return yw, xw


def _bilinear_sample(img: np.ndarray, rows: np.ndarray, cols: np.ndarray) -> np.ndarray:
    """Bilinear sampling with edge clamping."""
    height, width = img.shape
    r0 = np.clip(np.floor(rows).astype(np.int64), 0, height - 1)
    c0 = np.clip(np.floor(cols).astype(np.int64), 0, width - 1)
    r1 = np.clip(r0 + 1, 0, height - 1)
    c1 = np.clip(c0 + 1, 0, width - 1)
    fr = np.clip(rows - r0, 0.0, 1.0)
    fc = np.clip(cols - c0, 0.0, 1.0)
    top = img[r0, c0] * (1.0 - fc) + img[r0, c1] * fc
    bottom = img[r1, c0] * (1.0 - fc) + img[r1, c1] * fc
    return top * (1.0 - fr) + bottom * fr


def warp(img: np.ndarray, p: np.ndarray) -> np.ndarray:
    """Warp ``img`` by the affine parameters ``p`` (bilinear sampling)."""
    p = np.asarray(p, dtype=np.float64).reshape(6)
    rows, cols = _affine_grid(img.shape, p)
    return _bilinear_sample(np.asarray(img, dtype=np.float64), rows, cols)


def interp(img: np.ndarray, p: np.ndarray) -> np.ndarray:
    """Final interpolation stage: resample the frame into the reference
    coordinate system (hardware-wise a second instance of the warp
    datapath, kept as its own accelerator in Fig. 3)."""
    return warp(img, p)


# ----------------------------------------------------------------------
# 5. Subtract
# ----------------------------------------------------------------------
def subtract(template: np.ndarray, warped: np.ndarray) -> np.ndarray:
    """Error image: template minus warped current frame."""
    template = np.asarray(template, dtype=np.float64)
    warped = np.asarray(warped, dtype=np.float64)
    if template.shape != warped.shape:
        raise ValueError(f"shape mismatch: {template.shape} vs {warped.shape}")
    return template - warped


# ----------------------------------------------------------------------
# 6. Steepest descent images
# ----------------------------------------------------------------------
def steepest_descent(gx: np.ndarray, gy: np.ndarray) -> np.ndarray:
    """The six steepest-descent images ∇T · dW/dp, shape (6, H, W).

    For the affine warp the Jacobian columns are
    [x*gx, x*gy, y*gx, y*gy, gx, gy].
    """
    if gx.shape != gy.shape or gx.ndim != 2:
        raise ValueError("gradients must be two equal-shape 2-D arrays")
    height, width = gx.shape
    ys, xs = _coordinate_grid((height, width))
    sd = np.empty((6, height, width), dtype=np.float64)
    sd[0] = xs * gx
    sd[1] = xs * gy
    sd[2] = ys * gx
    sd[3] = ys * gy
    sd[4] = gx
    sd[5] = gy
    return sd


# ----------------------------------------------------------------------
# 7. SD update (right-hand side accumulation)
# ----------------------------------------------------------------------
def sd_update(sd: np.ndarray, error: np.ndarray) -> np.ndarray:
    """b = Σ_pixels sd(x) * error(x), a 6-vector."""
    if sd.shape[0] != 6 or sd.shape[1:] != error.shape:
        raise ValueError(f"incompatible shapes: sd {sd.shape}, error {error.shape}")
    return np.tensordot(sd, error, axes=([1, 2], [0, 1]))


# ----------------------------------------------------------------------
# 8. Hessian
# ----------------------------------------------------------------------
def hessian(sd: np.ndarray) -> np.ndarray:
    """Gauss-Newton Hessian H = Σ_pixels sd(x) sd(x)^T, shape (6, 6)."""
    if sd.ndim != 3 or sd.shape[0] != 6:
        raise ValueError(f"expected (6, H, W) steepest-descent stack, got {sd.shape}")
    flat = sd.reshape(6, -1)
    return flat @ flat.T


# ----------------------------------------------------------------------
# 9. Matrix solve
# ----------------------------------------------------------------------
def matrix_solve(hess: np.ndarray, rhs: np.ndarray, ridge: float = 1e-8) -> np.ndarray:
    """Solve H Δp = b with a small ridge for numerical robustness.

    The hardware kernel is a 6x6 Cholesky solver; the ridge mirrors its
    fixed-point conditioning.
    """
    hess = np.asarray(hess, dtype=np.float64)
    rhs = np.asarray(rhs, dtype=np.float64).reshape(6)
    if hess.shape != (6, 6):
        raise ValueError(f"expected 6x6 Hessian, got {hess.shape}")
    scale = np.trace(hess) / 6.0
    regularized = hess + np.eye(6) * ridge * max(scale, 1.0)
    return np.linalg.solve(regularized, rhs)


# ----------------------------------------------------------------------
# 10. LK flow (inverse-compositional parameter update)
# ----------------------------------------------------------------------
def _params_to_matrix(p: np.ndarray) -> np.ndarray:
    """3x3 homogeneous matrix of the affine warp W(x; p)."""
    return np.array(
        [
            [1.0 + p[0], p[2], p[4]],
            [p[1], 1.0 + p[3], p[5]],
            [0.0, 0.0, 1.0],
        ]
    )


def _matrix_to_params(mat: np.ndarray) -> np.ndarray:
    """Inverse of :func:`_params_to_matrix`."""
    return np.array(
        [mat[0, 0] - 1.0, mat[1, 0], mat[0, 1], mat[1, 1] - 1.0, mat[0, 2], mat[1, 2]]
    )


def lk_flow(p: np.ndarray, dp: np.ndarray) -> np.ndarray:
    """Inverse-compositional update: W(x; p) ← W(x; p) ∘ W(x; dp)^-1."""
    p = np.asarray(p, dtype=np.float64).reshape(6)
    dp = np.asarray(dp, dtype=np.float64).reshape(6)
    updated = _params_to_matrix(p) @ np.linalg.inv(_params_to_matrix(dp))
    return _matrix_to_params(updated)


# ----------------------------------------------------------------------
# 12. Change detection (adaptive Gaussian mixture background model)
# ----------------------------------------------------------------------
@dataclass
class GmmState:
    """Per-pixel K-Gaussian background model (PERFECT uses K small)."""

    means: np.ndarray  # (K, H, W)
    variances: np.ndarray  # (K, H, W)
    weights: np.ndarray  # (K, H, W)

    @classmethod
    def initialize(cls, frame: np.ndarray, k: int = 3) -> "GmmState":
        """Seed the model from the first frame."""
        frame = np.asarray(frame, dtype=np.float64)
        means = np.stack([frame + 8.0 * i for i in range(k)])
        variances = np.full((k,) + frame.shape, 64.0)
        weights = np.full((k,) + frame.shape, 1.0 / k)
        return cls(means=means, variances=variances, weights=weights)


def change_detection(
    frame: np.ndarray,
    state: GmmState,
    learning_rate: float = 0.05,
    match_sigma: float = 2.5,
    foreground_threshold: float = 0.7,
) -> Tuple[np.ndarray, GmmState]:
    """Stauffer-Grimson style foreground extraction.

    Returns (mask, new_state); mask is True where the pixel does not
    match any high-weight background Gaussian. The state update is
    functional (input state is not mutated).
    """
    frame = np.asarray(frame, dtype=np.float64)
    if frame.shape != state.means.shape[1:]:
        raise ValueError(
            f"frame shape {frame.shape} does not match model {state.means.shape[1:]}"
        )
    means = state.means.copy()
    variances = state.variances.copy()
    weights = state.weights.copy()

    distance = np.abs(frame[None, ...] - means)
    sigma = np.sqrt(variances)
    matches = distance <= match_sigma * sigma  # (K, H, W)

    # Only the best (closest) matching Gaussian adapts.
    penalized = np.where(matches, distance, np.inf)
    best = np.argmin(penalized, axis=0)  # (H, W)
    any_match = matches.any(axis=0)
    k_indices = np.arange(means.shape[0])[:, None, None]
    best_mask = (k_indices == best[None, ...]) & any_match[None, ...]

    rho = learning_rate
    means = np.where(best_mask, (1.0 - rho) * means + rho * frame[None, ...], means)
    variances = np.where(
        best_mask,
        np.maximum(
            (1.0 - rho) * variances + rho * (frame[None, ...] - means) ** 2, 4.0
        ),
        variances,
    )
    weights = (1.0 - rho) * weights + rho * best_mask.astype(np.float64)
    weights /= weights.sum(axis=0, keepdims=True)

    # Unmatched pixels: replace the weakest Gaussian with the new value.
    weakest = np.argmin(weights, axis=0)
    replace_mask = (k_indices == weakest[None, ...]) & ~any_match[None, ...]
    means = np.where(replace_mask, frame[None, ...], means)
    variances = np.where(replace_mask, 100.0, variances)
    weights = np.where(replace_mask, 0.05, weights)
    weights /= weights.sum(axis=0, keepdims=True)

    # Foreground: the matched Gaussian is not part of the dominant
    # background mass (or nothing matched at all).
    order = np.argsort(-weights, axis=0)
    sorted_weights = np.take_along_axis(weights, order, axis=0)
    cum = np.cumsum(sorted_weights, axis=0)
    is_background_sorted = (cum - sorted_weights) < foreground_threshold
    rank_of_best = np.argsort(order, axis=0)  # inverse permutation
    best_rank = np.take_along_axis(
        rank_of_best, best[None, ...], axis=0
    ).squeeze(0)
    helper = np.take_along_axis(
        is_background_sorted, best_rank[None, ...], axis=0
    ).squeeze(0)
    mask = ~any_match | ~helper
    return mask, GmmState(means=means, variances=variances, weights=weights)


# ----------------------------------------------------------------------
# Composite: the full Lucas-Kanade registration loop
# ----------------------------------------------------------------------
def lucas_kanade(
    template: np.ndarray,
    frame: np.ndarray,
    p0: Optional[np.ndarray] = None,
    iterations: int = 20,
    tolerance: float = 1e-4,
    border: int = 4,
) -> np.ndarray:
    """Register ``frame`` onto ``template``: find p with frame(W(x;p)) ≈ template.

    Inverse-compositional Baker-Matthews iteration composed from the
    individual WAMI kernels (this is the exact dataflow of Fig. 3's LK
    sub-graph, iterated). A ``border`` margin is excluded from the
    normal equations: warped samples near the frame edge are clamped
    replicas that would otherwise bias the solution.
    """
    template = np.asarray(template, dtype=np.float64)
    frame = np.asarray(frame, dtype=np.float64)
    if template.shape != frame.shape:
        raise ValueError("template and frame must have equal shapes")
    if border < 0 or 2 * border >= min(template.shape):
        raise ValueError(f"border {border} too large for shape {template.shape}")
    p = np.zeros(6) if p0 is None else np.asarray(p0, dtype=np.float64).reshape(6).copy()

    # Template-side quantities are iteration-invariant (the IC trick).
    gx, gy = gradient(template)
    sd = steepest_descent(gx, gy)
    if border:
        mask = np.zeros(template.shape)
        mask[border:-border, border:-border] = 1.0
        sd = sd * mask[None, ...]
    hess = hessian(sd)

    for _ in range(iterations):
        warped = warp(frame, p)
        error = subtract(warped, template)
        rhs = sd_update(sd, error)
        dp = matrix_solve(hess, rhs)
        p = lk_flow(p, dp)
        if float(np.linalg.norm(dp)) < tolerance:
            break
    return p
