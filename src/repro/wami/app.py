"""The WAMI application driver.

Two layers:

* ``golden_run`` — execute the full numeric pipeline (Fig. 3) on real
  frames: debayer, grayscale, Lucas-Kanade registration against the
  previous registered frame, interpolation into the reference
  coordinate system, GMM change detection. This validates the kernels
  end-to-end and is what the examples show.
* ``tasks_for_soc`` — lower the dataflow graph onto a PR-ESP SoC
  configuration: each stage becomes a :class:`StageTask` bound to the
  reconfigurable tile whose mode set contains its accelerator; stages
  without a hardware home run in software on the CPU (Table VI's SoC_X
  and SoC_Y leave some stages unmapped).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.errors import ConfigurationError
from repro.runtime.executor import StageTask
from repro.soc.config import SocConfig
from repro.wami.accelerators import WAMI_ACCELERATORS, WamiAcceleratorProfile
from repro.wami.graph import WAMI_GRAPH, WamiGraph, WamiStage
from repro.wami.kernels import (
    GmmState,
    change_detection,
    debayer,
    grayscale,
    interp,
    lucas_kanade,
)


@dataclass
class WamiGoldenResult:
    """Output of the functional pipeline over a frame sequence."""

    params: List[np.ndarray] = field(default_factory=list)  # per-frame warp
    registered: List[np.ndarray] = field(default_factory=list)
    masks: List[np.ndarray] = field(default_factory=list)

    @property
    def num_frames(self) -> int:
        """Frames processed."""
        return len(self.registered)


class WamiApplication:
    """The WAMI-App over a dataflow graph and accelerator profiles."""

    def __init__(
        self,
        graph: WamiGraph = WAMI_GRAPH,
        profiles: Optional[Dict[WamiStage, WamiAcceleratorProfile]] = None,
    ) -> None:
        self.graph = graph
        self.profiles = dict(profiles or WAMI_ACCELERATORS)
        missing = set(WamiStage) - set(self.profiles)
        if missing:
            raise ConfigurationError(
                f"profiles missing for stages: {sorted(s.name for s in missing)}"
            )

    # ------------------------------------------------------------------
    # functional execution
    # ------------------------------------------------------------------
    def golden_run(
        self,
        bayer_frames: List[np.ndarray],
        lk_iterations: int = 20,
    ) -> WamiGoldenResult:
        """Run the numeric pipeline over a Bayer sequence.

        Frame 0 seeds the background model; every later frame is
        registered onto the running reference frame before change
        detection.
        """
        if not bayer_frames:
            raise ConfigurationError("need at least one frame")
        result = WamiGoldenResult()
        reference: Optional[np.ndarray] = None
        gmm: Optional[GmmState] = None
        cumulative = np.zeros(6)

        for index, bayer in enumerate(bayer_frames):
            gray = grayscale(debayer(bayer))
            if index == 0:
                registered = gray
                cumulative = np.zeros(6)
            else:
                assert reference is not None
                p = lucas_kanade(
                    reference, gray, p0=cumulative, iterations=lk_iterations
                )
                registered = interp(gray, p)
                cumulative = p
            if gmm is None:
                gmm = GmmState.initialize(registered)
                mask = np.zeros(registered.shape, dtype=bool)
            else:
                mask, gmm = change_detection(registered, gmm)
            result.params.append(cumulative.copy())
            result.registered.append(registered)
            result.masks.append(mask)
            reference = result.registered[0]
        return result

    # ------------------------------------------------------------------
    # SoC lowering
    # ------------------------------------------------------------------
    def tile_of_stage(self, config: SocConfig) -> Dict[WamiStage, Optional[str]]:
        """Stage -> hosting tile name (None when unmapped -> software)."""
        mapping: Dict[WamiStage, Optional[str]] = {s: None for s in WamiStage}
        for tile in config.reconfigurable_tiles:
            for ip in tile.modes:
                for stage in WamiStage:
                    if stage.kernel_name == ip.name:
                        if mapping[stage] is not None:
                            raise ConfigurationError(
                                f"stage {stage.name} mapped to two tiles "
                                f"({mapping[stage]} and {tile.name})"
                            )
                        mapping[stage] = tile.name
        return mapping

    def tasks_for_soc(self, config: SocConfig) -> List[StageTask]:
        """Lower the DAG onto ``config`` as executor tasks."""
        placement = self.tile_of_stage(config)
        tasks: List[StageTask] = []
        for stage in self.graph.topological_order():
            profile = self.profiles[stage]
            tile = placement[stage]
            deps = tuple(p.kernel_name for p in self.graph.predecessors(stage))
            if tile is None:
                tasks.append(
                    StageTask(
                        name=stage.kernel_name,
                        duration_s=profile.sw_time_s,
                        tile_name=None,
                        deps=deps,
                    )
                )
            else:
                tasks.append(
                    StageTask(
                        name=stage.kernel_name,
                        duration_s=profile.exec_time_s,
                        tile_name=tile,
                        mode_name=stage.kernel_name,
                        deps=deps,
                        # The scheduler's last-resort failover target
                        # when every tile serving the mode is gone.
                        sw_duration_s=profile.sw_time_s,
                    )
                )
        return tasks

    def software_stages(self, config: SocConfig) -> List[WamiStage]:
        """Stages that fall back to the CPU on ``config``."""
        placement = self.tile_of_stage(config)
        return [s for s in WamiStage if placement[s] is None]

    def mode_power_w(self) -> Dict[str, float]:
        """Accelerator name -> dynamic power (for the energy account)."""
        return {p.name: p.dynamic_power_w for p in self.profiles.values()}

    def task_modes(self) -> Dict[str, str]:
        """Task name -> mode name (identity for WAMI)."""
        return {s.kernel_name: s.kernel_name for s in WamiStage}
