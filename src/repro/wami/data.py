"""Synthetic WAMI input generation.

The PERFECT benchmark inputs are distribution-restricted aerial image
sequences; this module generates synthetic equivalents: a textured
"ground" image observed through a slowly drifting affine camera, with
small bright movers that change-detection should flag. The generator
produces raw RGGB Bayer mosaics, matching the real sensor interface of
the application's first kernel.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

from repro.wami.kernels import _bilinear_sample


@dataclass(frozen=True)
class MoverTruth:
    """Ground-truth position of one mover in one frame."""

    frame_index: int
    row: float
    col: float


def _textured_ground(rng: np.random.Generator, size: int) -> np.ndarray:
    """A smooth, feature-rich ground plane (sum of random cosines)."""
    ys, xs = np.mgrid[0:size, 0:size].astype(np.float64)
    ground = np.zeros((size, size))
    for _ in range(24):
        fx, fy = rng.uniform(0.01, 0.12, size=2)
        phase = rng.uniform(0, 2 * np.pi)
        amp = rng.uniform(6.0, 22.0)
        ground += amp * np.cos(2 * np.pi * (fx * xs + fy * ys) + phase)
    ground += rng.normal(0.0, 2.0, ground.shape)  # sensor-like texture
    ground -= ground.min()
    ground *= 255.0 / max(ground.max(), 1e-9)
    return ground


def _mosaic(rgb: np.ndarray) -> np.ndarray:
    """Sample an RGB image through an RGGB Bayer pattern."""
    height, width, _ = rgb.shape
    bayer = np.empty((height, width), dtype=np.float64)
    bayer[0::2, 0::2] = rgb[0::2, 0::2, 0]
    bayer[0::2, 1::2] = rgb[0::2, 1::2, 1]
    bayer[1::2, 0::2] = rgb[1::2, 0::2, 1]
    bayer[1::2, 1::2] = rgb[1::2, 1::2, 2]
    return bayer


def synthetic_bayer_sequence(
    num_frames: int = 4,
    size: int = 64,
    drift_px_per_frame: float = 0.8,
    num_movers: int = 2,
    seed: int = 2023,
) -> Tuple[List[np.ndarray], List[np.ndarray], List[MoverTruth]]:
    """Generate a WAMI-like sequence.

    Returns ``(bayer_frames, true_params, movers)`` where
    ``true_params[i]`` is the affine parameter vector mapping frame ``i``
    onto frame 0 coordinates (identity for frame 0), and ``movers``
    records ground-truth mover positions for change-detection checks.
    """
    if num_frames < 1:
        raise ValueError("need at least one frame")
    if size % 2 or size < 16:
        raise ValueError("frame size must be even and >= 16")
    rng = np.random.default_rng(seed)
    margin = int(np.ceil(drift_px_per_frame * num_frames)) + 4
    world = _textured_ground(rng, size + 2 * margin)

    frames: List[np.ndarray] = []
    params: List[np.ndarray] = []
    movers: List[MoverTruth] = []
    mover_pos = rng.uniform(size * 0.25, size * 0.75, size=(num_movers, 2))
    mover_vel = rng.uniform(-1.5, 1.5, size=(num_movers, 2))

    for index in range(num_frames):
        shift = drift_px_per_frame * index
        ys, xs = np.mgrid[0:size, 0:size].astype(np.float64)
        view = _bilinear_sample(world, ys + margin + shift, xs + margin + shift)

        # Drop bright movers into the scene (after registration they
        # move relative to the ground, so change detection fires).
        for mover in range(num_movers):
            row, col = mover_pos[mover] + mover_vel[mover] * index
            if 2 <= row < size - 2 and 2 <= col < size - 2:
                r0, c0 = int(row), int(col)
                view[r0 - 1 : r0 + 2, c0 - 1 : c0 + 2] = 255.0
                movers.append(MoverTruth(frame_index=index, row=row, col=col))

        gray = view
        rgb = np.stack([gray, gray, gray], axis=-1)
        frames.append(_mosaic(rgb))
        # frame_i(x) == frame_0(x + shift), so warp(frame_i, p*) == frame_0
        # holds for the pure translation p* = (-shift, -shift).
        params.append(np.array([0.0, 0.0, 0.0, 0.0, -shift, -shift]))

    return frames, params, movers
