"""Hardware profiles of the twelve WAMI accelerators.

Fig. 3 of the paper annotates each accelerator with its profiled LUT
consumption and execution time (obtained on a 2x2 profiling SoC on
VC707); those annotations are only legible as raster images in the
available text, so the profiles below are *reconstructed*: the LUT
sizes were solved to satisfy the published per-SoC size metrics
(κ, α_av, γ) of Table IV, and the execution times were chosen to
reproduce the performance/energy ordering of Fig. 4. EXPERIMENTS.md
documents the residual mismatches this reconstruction cannot avoid
(the paper's Table IV is internally inconsistent for SoC_D).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List

from repro.errors import ConfigurationError
from repro.fabric.resources import ResourceVector
from repro.soc.esp_library import AcceleratorIP, HlsFlow
from repro.wami.graph import WamiStage


@dataclass(frozen=True)
class WamiAcceleratorProfile:
    """Profile of one WAMI accelerator (the Fig. 3 annotation)."""

    stage: WamiStage
    luts: int
    bram: int
    dsp: int
    #: Hardware execution time per 512x512 frame at 78 MHz, in seconds.
    exec_time_s: float
    #: Software (Leon3) execution time per frame, in seconds.
    sw_time_s: float
    #: Average dynamic power while the accelerator computes, in watts.
    dynamic_power_w: float

    def __post_init__(self) -> None:
        if self.luts <= 0:
            raise ConfigurationError(f"{self.stage}: LUTs must be positive")
        if self.exec_time_s <= 0 or self.sw_time_s <= 0:
            raise ConfigurationError(f"{self.stage}: execution times must be positive")
        if self.sw_time_s < self.exec_time_s:
            raise ConfigurationError(
                f"{self.stage}: software time below hardware time is implausible"
            )

    @property
    def name(self) -> str:
        """Catalog name (lower-case kernel identifier)."""
        return self.stage.kernel_name

    @property
    def speedup(self) -> float:
        """Hardware speedup over the Leon3 software implementation."""
        return self.sw_time_s / self.exec_time_s

    def as_ip(self) -> AcceleratorIP:
        """View as an ESP catalog accelerator for SoC configuration."""
        return AcceleratorIP(
            name=self.name,
            hls_flow=HlsFlow.STRATUS_HLS,
            resources=ResourceVector(
                lut=self.luts, ff=int(self.luts * 1.1), bram=self.bram, dsp=self.dsp
            ),
            throughput_factor=1.0,
            dynamic_power_w=self.dynamic_power_w,
            description=f"WAMI {self.name} accelerator",
        )


def _profile(
    stage: WamiStage,
    luts: int,
    bram: int,
    dsp: int,
    exec_ms: float,
    sw_ms: float,
    power_w: float,
) -> WamiAcceleratorProfile:
    return WamiAcceleratorProfile(
        stage=stage,
        luts=luts,
        bram=bram,
        dsp=dsp,
        exec_time_s=exec_ms * 1e-3,
        sw_time_s=sw_ms * 1e-3,
        dynamic_power_w=power_w,
    )


#: Reconstructed Fig. 3 profiles, keyed by stage.
WAMI_ACCELERATORS: Dict[WamiStage, WamiAcceleratorProfile] = {
    p.stage: p
    for p in [
        _profile(WamiStage.DEBAYER, luts=12000, bram=18, dsp=12, exec_ms=7.0, sw_ms=90.0, power_w=0.70),
        _profile(WamiStage.GRAYSCALE, luts=9000, bram=8, dsp=9, exec_ms=2.5, sw_ms=33.0, power_w=0.55),
        _profile(WamiStage.GRADIENT, luts=14000, bram=12, dsp=16, exec_ms=3.5, sw_ms=46.0, power_w=0.80),
        _profile(WamiStage.WARP, luts=18000, bram=26, dsp=32, exec_ms=9.0, sw_ms=120.0, power_w=1.05),
        _profile(WamiStage.SUBTRACT, luts=6500, bram=4, dsp=0, exec_ms=1.2, sw_ms=15.0, power_w=0.40),
        _profile(WamiStage.STEEPEST_DESCENT, luts=22000, bram=30, dsp=48, exec_ms=11.0, sw_ms=145.0, power_w=1.30),
        _profile(WamiStage.SD_UPDATE, luts=16000, bram=16, dsp=24, exec_ms=6.0, sw_ms=78.0, power_w=0.95),
        _profile(WamiStage.HESSIAN, luts=38000, bram=42, dsp=96, exec_ms=10.0, sw_ms=130.0, power_w=2.10),
        _profile(WamiStage.MATRIX_SOLVE, luts=14500, bram=6, dsp=30, exec_ms=0.8, sw_ms=11.0, power_w=0.85),
        _profile(WamiStage.LK_FLOW, luts=40000, bram=36, dsp=88, exec_ms=12.5, sw_ms=165.0, power_w=2.25),
        _profile(WamiStage.INTERP, luts=17000, bram=24, dsp=28, exec_ms=8.0, sw_ms=40.0, power_w=1.00),
        _profile(WamiStage.CHANGE_DETECTION, luts=21000, bram=40, dsp=36, exec_ms=14.0, sw_ms=255.0, power_w=1.25),
    ]
}


def wami_accelerator(index_or_stage) -> WamiAcceleratorProfile:
    """Profile by Fig. 3 index (1..12) or :class:`WamiStage`."""
    stage = (
        index_or_stage
        if isinstance(index_or_stage, WamiStage)
        else WamiStage.from_index(int(index_or_stage))
    )
    return WAMI_ACCELERATORS[stage]


def wami_catalog() -> Dict[str, AcceleratorIP]:
    """Name -> IP catalog view of the WAMI accelerators."""
    return {p.name: p.as_ip() for p in WAMI_ACCELERATORS.values()}


def wami_ips(indexes: Iterable[int]) -> List[AcceleratorIP]:
    """IPs for a list of Fig. 3 indexes (order preserved)."""
    return [wami_accelerator(i).as_ip() for i in indexes]
