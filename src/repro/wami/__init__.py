"""The WAMI-App benchmark (PERFECT suite) used by the paper's evaluation.

Wide Area Motion Imagery processing: demosaic a Bayer frame, convert to
grayscale, register it against the previous frame with an (inverse
compositional) Lucas-Kanade pipeline decomposed into sub-kernels, and
run GMM-based change detection on the registered frame.

``kernels`` holds functional numpy implementations (golden models),
``graph`` the dataflow DAG of Fig. 3, ``accelerators`` the hardware
profiles (LUTs, execution time, power), ``data`` synthetic frame
generation, and ``app`` the end-to-end application driver.
"""

from repro.wami.kernels import (
    change_detection,
    debayer,
    gradient,
    grayscale,
    hessian,
    interp,
    lucas_kanade,
    lk_flow,
    matrix_solve,
    sd_update,
    steepest_descent,
    subtract,
    warp,
)
from repro.wami.graph import WAMI_GRAPH, WamiGraph, WamiStage
from repro.wami.accelerators import (
    WAMI_ACCELERATORS,
    WamiAcceleratorProfile,
    wami_accelerator,
    wami_catalog,
)
from repro.wami.data import synthetic_bayer_sequence
from repro.wami.app import WamiApplication, WamiGoldenResult
from repro.wami.partitioner import Allocation, WamiPartitioner, soc_from_allocation

__all__ = [
    "debayer",
    "grayscale",
    "gradient",
    "warp",
    "subtract",
    "steepest_descent",
    "sd_update",
    "hessian",
    "matrix_solve",
    "lk_flow",
    "interp",
    "change_detection",
    "lucas_kanade",
    "WamiStage",
    "WamiGraph",
    "WAMI_GRAPH",
    "WamiAcceleratorProfile",
    "WAMI_ACCELERATORS",
    "wami_accelerator",
    "wami_catalog",
    "synthetic_bayer_sequence",
    "WamiApplication",
    "WamiGoldenResult",
    "Allocation",
    "WamiPartitioner",
    "soc_from_allocation",
]
