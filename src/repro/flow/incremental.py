"""Incremental recompilation of individual reconfigurable tiles.

The DPR structure PR-ESP builds makes accelerator iteration cheap:
once the static part is placed, routed and locked, changing one
accelerator only requires re-running that tile's OoC synthesis, its
in-context P&R against the *existing* static checkpoint, and its
partial bitstreams — minutes instead of the hours of a full rebuild.
This is the compile-time dividend the paper's introduction attributes
to DPR (citing [7]) beyond runtime adaptivity.

The one hard constraint is physical: the new accelerator must still
fit the tile's floorplanned pblock. If it does not, the floorplan —
and with it the static routing — is invalid and a full rebuild is
required; :class:`IncrementalFlow` detects that and refuses.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import FlowError
from repro.flow.dpr_flow import FlowResult
from repro.soc.esp_library import AcceleratorIP
from repro.soc.tiles import ReconfigurableTile
from repro.vivado.bitstream import Bitstream
from repro.vivado.runtime_model import CALIBRATED_MODEL, RuntimeModel
from repro.vivado.server import ToolJob, VivadoServer
from repro.vivado.tool import VivadoInstance


@dataclass
class IncrementalResult:
    """Outcome of an incremental rebuild."""

    base: FlowResult
    rebuilt_tiles: Tuple[str, ...]
    #: Wall time of the incremental rebuild (minutes).
    makespan_minutes: float
    #: Per-tile (synth + in-context P&R + bitgen) minutes.
    tile_minutes: Dict[str, float]
    #: Fresh partial bitstreams for the rebuilt tiles.
    bitstreams: List[Bitstream]

    @property
    def full_rebuild_minutes(self) -> float:
        """What a from-scratch flow run cost (the baseline)."""
        return self.base.total_minutes

    @property
    def speedup(self) -> float:
        """Full rebuild time over incremental time."""
        return self.full_rebuild_minutes / self.makespan_minutes


class IncrementalFlow:
    """Rebuilds a subset of tiles against an existing flow result."""

    def __init__(
        self,
        model: RuntimeModel = CALIBRATED_MODEL,
        max_instances: int = 16,
        compress_bitstreams: bool = True,
    ) -> None:
        self.model = model
        self.max_instances = max_instances
        self.compress_bitstreams = compress_bitstreams

    # ------------------------------------------------------------------
    def rebuild(
        self,
        previous: FlowResult,
        changed_tiles: Sequence[str],
        new_modes: Optional[Dict[str, List[AcceleratorIP]]] = None,
    ) -> IncrementalResult:
        """Recompile ``changed_tiles`` reusing the locked static design.

        ``new_modes`` optionally replaces a tile's accelerator set (the
        "I changed my accelerator's HLS code" scenario); the new set
        must still fit the tile's existing pblock.
        """
        if not changed_tiles:
            raise FlowError("incremental rebuild needs at least one changed tile")
        if len(set(changed_tiles)) != len(changed_tiles):
            raise FlowError("changed tile names must be unique")
        new_modes = new_modes or {}
        unknown_mode_tiles = set(new_modes) - set(changed_tiles)
        if unknown_mode_tiles:
            raise FlowError(
                f"new modes supplied for unchanged tiles: {sorted(unknown_mode_tiles)}"
            )

        partition = previous.partition
        known = {rp.name for rp in partition.rps}
        missing = set(changed_tiles) - known
        if missing:
            raise FlowError(f"unknown reconfigurable tiles: {sorted(missing)}")

        jobs: List[ToolJob] = []
        tile_minutes: Dict[str, float] = {}
        bitstreams: List[Bitstream] = []

        for tile_name in changed_tiles:
            rp = partition.rp_by_name(tile_name)
            tile = rp.tile
            if tile_name in new_modes:
                tile = ReconfigurableTile(
                    name=tile.name,
                    modes=new_modes[tile_name],
                    host_cpu=tile.host_cpu,
                    hosted_cpu_core=tile.hosted_cpu_core,
                )
            assignment = previous.floorplan.assignment_for(tile_name)
            demand = tile.partition_resources()
            if not demand.fits_in(assignment.provided):
                raise FlowError(
                    f"{tile_name}: new contents ({demand}) exceed the existing "
                    f"pblock ({assignment.provided}); a full rebuild with a new "
                    "floorplan is required"
                )

            tool = VivadoInstance(
                f"incr_{tile_name}",
                self.model,
                compress_bitstreams=self.compress_bitstreams,
            )
            # 1. OoC re-synthesis of the (updated) wrapper contents.
            from repro.soc.rtl import Module
            from repro.soc.tiles import RECONF_WRAPPER_LUTS

            wrapper = Module(
                name=f"{tile.name}_wrapper",
                luts=RECONF_WRAPPER_LUTS,
                reconfigurable=True,
            )
            for ip in tile.modes:
                wrapper.add(Module(name=f"{tile.name}_{ip.name}", luts=ip.luts))
            netlist = tool.synth_design(wrapper, ooc=True)

            # 2. In-context P&R against the locked static checkpoint.
            from repro.vivado.checkpoint import RoutedCheckpoint

            static_routed = RoutedCheckpoint(
                design=f"{previous.config.name}_static_routed",
                kluts=partition.static.luts / 1000.0,
                locked_static=True,
                pblocks=tuple(previous.floorplan.pblocks()),
            )
            tool.implement_in_context(
                static_routed, [netlist], [assignment.pblock.name]
            )

            # 3. Fresh partial bitstreams for the tile's modes.
            for ip in tile.modes:
                bitstreams.append(
                    tool.write_partial_bitstream(
                        tile.name, ip.name, assignment.provided, ip.resources
                    )
                )
            bitstreams.append(
                tool.write_blanking_bitstream(tile.name, assignment.provided)
            )

            tile_minutes[tile_name] = tool.cpu_minutes
            jobs.append(ToolJob(name=f"incr_{tile_name}", cpu_minutes=tool.cpu_minutes))

        schedule = VivadoServer(max_instances=self.max_instances).schedule(jobs)
        return IncrementalResult(
            base=previous,
            rebuilt_tiles=tuple(changed_tiles),
            makespan_minutes=schedule.makespan_minutes,
            tile_minutes=tile_minutes,
            bitstreams=bitstreams,
        )


def rebuild_tiles(
    previous: FlowResult,
    changed_tiles: Sequence[str],
    new_modes: Optional[Dict[str, List[AcceleratorIP]]] = None,
) -> IncrementalResult:
    """Convenience wrapper with default settings."""
    return IncrementalFlow().rebuild(previous, changed_tiles, new_modes)
