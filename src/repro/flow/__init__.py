"""The PR-ESP FPGA flow (Fig. 1): parse → synthesize → floorplan →
choose parallelism → place & route → bitstreams.

``dpr_flow`` orchestrates the whole RTL-to-bitstream compilation (the
paper's single make target); ``monolithic`` is the baseline standard
Xilinx DPR flow run in a single tool instance; ``schedule`` turns a
strategy decision into concrete parallel tool runs; ``grouping``
implements the semi-parallel tile grouping; ``blackbox`` generates the
black-box wrappers the static synthesis uses; ``cache`` and ``batch``
form the build service (content-addressed result reuse plus
process-parallel fan-out of many builds).
"""

from repro.flow.batch import (
    BatchBuilder,
    BuildError,
    BuildOutcome,
    BuildRequest,
    cached_build,
)
from repro.flow.cache import FlowCache, default_disk_dir, flow_cache_key
from repro.flow.grouping import balanced_groups
from repro.flow.blackbox import BlackBoxWrapper, generate_blackboxes
from repro.flow.scripts import SynthesisScript, ImplementationScript
from repro.flow.schedule import ImplementationPlan, ImplementationRun, plan_implementation
from repro.flow.dpr_flow import DprFlow, FlowResult, StageTrace
from repro.flow.incremental import IncrementalFlow, IncrementalResult, rebuild_tiles
from repro.flow.monolithic import MonolithicFlow, MonolithicResult
from repro.flow.report import comparison_report, flow_report

__all__ = [
    "BatchBuilder",
    "BuildError",
    "BuildOutcome",
    "BuildRequest",
    "FlowCache",
    "cached_build",
    "default_disk_dir",
    "flow_cache_key",
    "balanced_groups",
    "BlackBoxWrapper",
    "generate_blackboxes",
    "SynthesisScript",
    "ImplementationScript",
    "ImplementationPlan",
    "ImplementationRun",
    "plan_implementation",
    "DprFlow",
    "FlowResult",
    "StageTrace",
    "IncrementalFlow",
    "IncrementalResult",
    "rebuild_tiles",
    "MonolithicFlow",
    "MonolithicResult",
    "flow_report",
    "comparison_report",
]
