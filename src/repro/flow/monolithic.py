"""The baseline: Xilinx's standard DPR flow in a single tool instance.

Table V compares PR-ESP against "equivalent implementations in Xilinx's
standard DPR flow, which is always performed in a single instance of
Vivado": one global synthesis of the whole design followed by one
single-instance DPR implementation (the first configuration compiles
static and all reconfigurable modules together).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.core.metrics import DesignMetrics, compute_metrics
from repro.errors import FlowError
from repro.floorplan.constraints import validate_floorplan
from repro.floorplan.flora import Floorplan, FloraFloorplanner
from repro.soc.config import SocConfig
from repro.soc.partition import DesignPartition, partition_design
from repro.vivado.bitstream import Bitstream
from repro.vivado.par import ParMode
from repro.vivado.runtime_model import CALIBRATED_MODEL, RuntimeModel
from repro.vivado.tool import VivadoInstance


@dataclass
class MonolithicResult:
    """Outcome of the baseline flow."""

    config: SocConfig
    partition: DesignPartition
    metrics: DesignMetrics
    floorplan: Floorplan
    synth_minutes: float
    par_minutes: float
    bitstreams: List[Bitstream]

    @property
    def total_minutes(self) -> float:
        """T_tot of the baseline (synthesis + P&R)."""
        return self.synth_minutes + self.par_minutes


class MonolithicFlow:
    """The standard single-instance Xilinx DPR compilation."""

    def __init__(
        self,
        model: RuntimeModel = CALIBRATED_MODEL,
        compress_bitstreams: bool = True,
        floorplan_utilization: float = 0.7,
    ) -> None:
        self.model = model
        self.compress_bitstreams = compress_bitstreams
        self.floorplan_utilization = floorplan_utilization

    def build(self, config: SocConfig) -> MonolithicResult:
        """Compile ``config`` with one global synthesis + one P&R run."""
        device = config.device()
        partition = partition_design(config)
        metrics = compute_metrics(config)

        tool = VivadoInstance(
            "monolithic", self.model, compress_bitstreams=self.compress_bitstreams
        )
        # Global synthesis of the whole design in one run.
        global_netlist = tool.synth_design(partition.rtl, ooc=False)
        synth_minutes = tool.cpu_minutes

        # Manual-equivalent floorplanning still happens (the standard
        # flow requires hand-made pblocks; we reuse the same planner).
        floorplanner = FloraFloorplanner(
            device, target_utilization=self.floorplan_utilization
        )
        floorplan = floorplanner.plan([(rp.name, rp.demand) for rp in partition.rps])
        report = validate_floorplan(device, floorplan)
        if not report.legal:
            raise FlowError(
                "baseline floorplan validation failed: " + "; ".join(report.violations)
            )

        tool.implement_full(
            global_netlist,
            [],
            device,
            floorplan.pblocks(),
            [a.demand for a in floorplan.assignments],
            mode=ParMode.MONOLITHIC,
        )
        par_minutes = tool.cpu_minutes - synth_minutes

        bitstreams: List[Bitstream] = [tool.write_full_bitstream(config.name, device)]
        for rp in partition.rps:
            assignment = floorplan.assignment_for(rp.name)
            for ip in rp.tile.modes:
                bitstreams.append(
                    tool.write_partial_bitstream(
                        rp.name, ip.name, assignment.provided, ip.resources
                    )
                )
        # Bitstream time is part of the single instance's P&R budget.
        par_minutes = tool.cpu_minutes - synth_minutes

        return MonolithicResult(
            config=config,
            partition=partition,
            metrics=metrics,
            floorplan=floorplan,
            synth_minutes=synth_minutes,
            par_minutes=par_minutes,
            bitstreams=bitstreams,
        )
