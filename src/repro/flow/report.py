"""Human-readable flow reports (what `make fpga-bitstream` would print)."""

from __future__ import annotations

from typing import List, Optional

from repro.flow.dpr_flow import FlowResult
from repro.flow.monolithic import MonolithicResult
from repro.vivado.timing import analyze_timing


def _fmt(minutes: Optional[float]) -> str:
    return "-" if minutes is None else f"{minutes:7.1f}"


def flow_report(result: FlowResult) -> str:
    """Multi-section report for one PR-ESP flow run."""
    lines: List[str] = []
    cfg = result.config
    lines.append(f"== PR-ESP flow report: {cfg.name} ({cfg.board}, {cfg.rows}x{cfg.cols}) ==")
    lines.append(
        f"metrics: {result.metrics.summary()}  class={result.decision.design_class.value}"
    )
    lines.append(
        f"strategy: {result.strategy.value} (tau={result.plan.tau})"
    )
    lines.append("")
    lines.append("stages:")
    for stage in result.stages:
        lines.append(
            f"  {stage.stage:20s} {stage.wall_minutes:7.1f} min  {stage.detail}"
        )
    lines.append("")
    lines.append("implementation runs:")
    lines.append(f"  synth makespan      {_fmt(result.synth_makespan_minutes)} min")
    lines.append(f"  t_static            {_fmt(result.static_par_minutes)} min")
    for name, omega in sorted(result.omega_minutes.items()):
        run = next(r for r in result.plan.runs if r.name == name)
        lines.append(
            f"  {name:18s}  {_fmt(omega)} min  tiles={', '.join(run.rp_names)}"
        )
    lines.append(f"  P&R makespan        {_fmt(result.par_makespan_minutes)} min")
    lines.append(f"  TOTAL               {_fmt(result.total_minutes)} min")
    if result.total_retries or result.degraded:
        lines.append("")
        lines.append("fault tolerance:")
        lines.append(f"  retried jobs        {result.total_retries} attempts repeated")
        for failure in result.failures:
            lines.append(
                f"  {failure.stage}/{failure.job:18s} FAILED after "
                f"{failure.attempts} attempts "
                f"({failure.minutes_burned:.1f} min burned)"
            )
        if result.degraded:
            lines.append(
                "  DEGRADED: dark tiles "
                + ", ".join(result.dark_rps)
                + " (blanking bitstreams only)"
            )
    lines.append("")
    lines.append("floorplan:")
    for assignment in result.floorplan.assignments:
        pb = assignment.pblock
        lines.append(
            f"  {assignment.rp_name:14s} cols[{pb.col_lo:3d},{pb.col_hi:3d}] "
            f"rows[{pb.row_lo},{pb.row_hi}]  util={assignment.lut_utilization:.2f}"
        )
    lines.append("")
    timing = analyze_timing(result)
    lines.append(
        f"timing: system Fmax {timing.system_fmax_mhz:.0f} MHz "
        f"({'meets' if timing.meets_timing else 'VIOLATES'} "
        f"{timing.clock_mhz:.0f} MHz target)"
    )
    lines.append("")
    lines.append("bitstreams:")
    for bitstream in result.bitstreams:
        target = f" -> {bitstream.target_rp}/{bitstream.mode}" if bitstream.target_rp else ""
        lines.append(
            f"  {bitstream.name:32s} {bitstream.size_kib:9.0f} KB{target}"
        )
    return "\n".join(lines)


def comparison_report(presp: FlowResult, baseline: MonolithicResult) -> str:
    """Side-by-side PR-ESP vs standard-flow comparison (Table V row)."""
    delta = baseline.total_minutes - presp.total_minutes
    pct = 100.0 * delta / baseline.total_minutes
    lines = [
        f"== {presp.config.name}: PR-ESP vs monolithic ==",
        f"  PR-ESP     synth={presp.synth_makespan_minutes:6.1f}  "
        f"P&R={presp.par_makespan_minutes:6.1f}  total={presp.total_minutes:6.1f} min "
        f"({presp.strategy.value}, tau={presp.plan.tau})",
        f"  monolithic synth={baseline.synth_minutes:6.1f}  "
        f"P&R={baseline.par_minutes:6.1f}  total={baseline.total_minutes:6.1f} min",
        f"  improvement: {delta:+.1f} min ({pct:+.1f}%)",
    ]
    return "\n".join(lines)
