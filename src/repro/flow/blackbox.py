"""Auto-generated black-box wrappers.

During static synthesis the reconfigurable accelerators are replaced by
black-box wrapper instances (Sec. IV): empty modules exposing only the
predefined reconfigurable-tile interface — load/store ports, the
memory-mapped register interface, and the completion interrupt — so the
static netlist closes while the tile contents synthesize out of context
in parallel.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from repro.soc.partition import DesignPartition


#: The common reconfigurable-wrapper interface (Sec. III, Fig. 2B).
WRAPPER_PORTS: Tuple[Tuple[str, str, int], ...] = (
    # (name, direction, width)
    ("clk", "in", 1),
    ("rst_n", "in", 1),
    ("dma_read_ctrl", "out", 67),
    ("dma_read_chnl", "in", 64),
    ("dma_write_ctrl", "out", 67),
    ("dma_write_chnl", "out", 64),
    ("apb_req", "in", 33),
    ("apb_rsp", "out", 32),
    ("acc_done_irq", "out", 1),
)


@dataclass(frozen=True)
class BlackBoxWrapper:
    """A generated black-box stand-in for one RP."""

    rp_name: str
    module_name: str
    ports: Tuple[Tuple[str, str, int], ...] = WRAPPER_PORTS

    def verilog_stub(self) -> str:
        """The empty-module Verilog the generator would emit."""
        lines = [f"module {self.module_name} ("]
        decls = []
        for name, direction, width in self.ports:
            range_txt = f"[{width - 1}:0] " if width > 1 else ""
            keyword = "input" if direction == "in" else "output"
            decls.append(f"  {keyword} {range_txt}{name}")
        lines.append(",\n".join(decls))
        lines.append(");")
        lines.append("  // black box: contents provided by a partial bitstream")
        lines.append("endmodule")
        return "\n".join(lines)


def generate_blackboxes(partition: DesignPartition) -> List[BlackBoxWrapper]:
    """One black-box wrapper per reconfigurable partition."""
    return [
        BlackBoxWrapper(rp_name=rp.name, module_name=rp.wrapper.name)
        for rp in partition.rps
    ]
