"""Semi-parallel tile grouping.

The semi-parallel strategy "opportunistically groups" two or more
reconfigurable tiles per tool instance (Sec. IV). Because the total
implementation time is t_static + max over groups, the grouping that
minimizes the makespan is a balanced partition; the classic LPT
(longest processing time first) greedy gives a 4/3-approximation and is
what PR-ESP uses.
"""

from __future__ import annotations

from typing import Callable, List, Sequence, TypeVar

from repro.errors import FlowError

T = TypeVar("T")


def balanced_groups(
    items: Sequence[T],
    num_groups: int,
    weight: Callable[[T], float],
) -> List[List[T]]:
    """Partition ``items`` into ``num_groups`` groups minimizing the
    maximum total ``weight`` (LPT greedy).

    Groups are returned sorted by descending total weight; empty groups
    are dropped (when there are fewer items than groups).
    """
    if num_groups <= 0:
        raise FlowError(f"number of groups must be positive, got {num_groups}")
    ordered = sorted(items, key=weight, reverse=True)
    groups: List[List[T]] = [[] for _ in range(num_groups)]
    totals = [0.0] * num_groups
    for item in ordered:
        slot = min(range(num_groups), key=lambda g: (totals[g], g))
        groups[slot].append(item)
        totals[slot] += weight(item)
    paired = sorted(zip(totals, groups), key=lambda tg: -tg[0])
    return [group for total, group in paired if group]


def group_weights(
    groups: Sequence[Sequence[T]], weight: Callable[[T], float]
) -> List[float]:
    """Total weight per group."""
    return [sum(weight(item) for item in group) for group in groups]


def makespan(groups: Sequence[Sequence[T]], weight: Callable[[T], float]) -> float:
    """The largest group weight (the quantity LPT minimizes)."""
    weights = group_weights(groups, weight)
    if not weights:
        raise FlowError("makespan of an empty grouping is undefined")
    return max(weights)
