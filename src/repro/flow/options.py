"""Build-side configuration of the platform, as one value.

``PrEspPlatform`` used to grow one constructor keyword per build
feature (cache, worker count, and now fault model, retry policy,
checkpoint directory). :class:`BuildOptions` collects them so call
sites name one argument and defaults stay in one place.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Optional, Union

from repro.errors import ConfigurationError
from repro.flow.cache import FlowCache
from repro.vivado.faults import (
    DEFAULT_RETRY_POLICY,
    NO_FAULTS,
    CadFaultModel,
    RetryPolicy,
)


@dataclass
class BuildOptions:
    """Everything the platform's build paths read.

    * ``cache`` — a :class:`~repro.flow.cache.FlowCache` serving repeat
      builds (None disables caching);
    * ``jobs`` — worker processes for :meth:`~repro.core.platform.
      PrEspPlatform.build_many` batches (1 = serial in-process);
    * ``faults``/``retry`` — the CAD fault model and retry policy the
      flow runs under (defaults: no faults, three attempts);
    * ``checkpoint_dir`` — directory for stage-level checkpoints of
      ``build()`` (None disables checkpointing);
    * ``resume`` — restore the matching checkpoint prefix instead of
      re-running it (requires ``checkpoint_dir``).
    """

    cache: Optional[FlowCache] = None
    jobs: int = 1
    faults: CadFaultModel = field(default_factory=lambda: NO_FAULTS)
    retry: RetryPolicy = DEFAULT_RETRY_POLICY
    checkpoint_dir: Optional[Union[str, Path]] = None
    resume: bool = False

    def __post_init__(self) -> None:
        if self.jobs <= 0:
            raise ConfigurationError(
                f"build options need at least one job slot, got {self.jobs}"
            )
        if self.resume and self.checkpoint_dir is None:
            raise ConfigurationError(
                "resume=True needs a checkpoint_dir to resume from"
            )
