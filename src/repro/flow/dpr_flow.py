"""The PR-ESP DPR flow orchestrator (Fig. 1).

``DprFlow.build()`` is the paper's single make target: it parses the
SoC configuration, splits static from reconfigurable sources, runs the
parallel OoC syntheses, floorplans the reconfigurable partitions,
chooses the size-driven P&R parallelism, orchestrates the (possibly
parallel) implementation runs, and generates full plus compressed
partial bitstreams. The returned :class:`FlowResult` carries every
intermediate the paper's tables report (synthesis makespan, t_static,
Ω per run, T_P&R, bitstream sizes).

The flow is fault-tolerant and resumable:

* every synthesis and P&R job runs under the build's
  :class:`~repro.vivado.faults.CadFaultModel` and
  :class:`~repro.vivado.faults.RetryPolicy` — failed attempts burn
  their modelled runtime plus backoff, reshaping the makespan;
* a reconfigurable tile whose job fails *permanently* does not abort
  the build: the tile goes dark (blanking bitstream only, written on a
  fault-exempt recovery instance) and the result is marked
  ``degraded``. Static-logic failures still abort — there is no SoC
  without the static design;
* each completed stage (and each tool job inside the long stages) is
  checkpointed when a ``checkpoint_dir`` is given, so a killed build
  resumes from its last completed stage with ``resume=True`` and, by
  construction of the deterministic fault model, produces the same
  summary an uninterrupted run would have.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.core.metrics import DesignMetrics, compute_metrics
from repro.core.strategy import (
    ImplementationStrategy,
    StrategyDecision,
    choose_strategy,
)
from repro.errors import FlowError
from repro.fabric.device import Device
from repro.obs import events as ev
from repro.obs.events import NULL_EVENTS
from repro.obs.logconfig import get_logger
from repro.obs.metrics import NULL_METRICS
from repro.obs.profiler import NULL_PROFILER
from repro.obs.tracer import NULL_TRACER
from repro.floorplan.constraints import validate_floorplan
from repro.floorplan.flora import Floorplan, FloraFloorplanner
from repro.flow.blackbox import BlackBoxWrapper, generate_blackboxes
from repro.flow.checkpoint import FlowCheckpointer
from repro.flow.schedule import ImplementationPlan, plan_implementation
from repro.soc.config import SocConfig
from repro.soc.partition import DesignPartition, partition_design
from repro.vivado.bitstream import Bitstream
from repro.vivado.checkpoint import NetlistCheckpoint
from repro.vivado.faults import (
    DEFAULT_RETRY_POLICY,
    NO_FAULTS,
    CadFaultError,
    CadFaultModel,
    FaultPlanner,
    JobExecution,
    RetryPolicy,
)
from repro.vivado.par import ParMode
from repro.vivado.runtime_model import CALIBRATED_MODEL, RuntimeModel
from repro.vivado.server import ScheduleResult, ToolJob, VivadoServer
from repro.vivado.tool import VivadoInstance

logger = get_logger("flow")


@dataclass(frozen=True)
class StageTrace:
    """One executed flow stage (the boxes of Fig. 1)."""

    stage: str
    wall_minutes: float
    detail: str


@dataclass(frozen=True)
class JobFailure:
    """One permanently failed CAD job and the tiles it took down."""

    stage: str
    job: str
    rp_names: Tuple[str, ...]
    attempts: int
    minutes_burned: float

    def to_dict(self) -> Dict:
        return {
            "stage": self.stage,
            "job": self.job,
            "rps": list(self.rp_names),
            "attempts": self.attempts,
            "minutes_burned": self.minutes_burned,
        }


@dataclass
class FlowResult:
    """Everything the flow produced for one SoC."""

    config: SocConfig
    partition: DesignPartition
    metrics: DesignMetrics
    decision: StrategyDecision
    plan: ImplementationPlan
    floorplan: Floorplan
    blackboxes: List[BlackBoxWrapper]
    synth_makespan_minutes: float
    static_par_minutes: Optional[float]
    omega_minutes: Dict[str, float]
    par_makespan_minutes: float
    bitstreams: List[Bitstream]
    stages: List[StageTrace]
    schedule: ScheduleResult
    #: Schedule of the parallel OoC synthesis runs (None on results
    #: produced before this field existed).
    synth_schedule: Optional[ScheduleResult] = None
    #: True when one or more reconfigurable tiles went dark.
    degraded: bool = False
    #: Permanently failed jobs (empty on a clean build).
    failures: Tuple[JobFailure, ...] = ()
    #: Full attempt timeline of every planned CAD job, by job name.
    executions: Dict[str, JobExecution] = field(default_factory=dict)
    #: Stages restored from a checkpoint instead of re-run (kept out of
    #: the summary dict so resumed and uninterrupted builds compare
    #: equal).
    resumed_stages: Tuple[str, ...] = ()

    @property
    def strategy(self) -> ImplementationStrategy:
        """The strategy the flow executed."""
        return self.plan.strategy

    @property
    def max_omega_minutes(self) -> Optional[float]:
        """max{Ω} over the in-context runs (None for serial)."""
        if not self.omega_minutes:
            return None
        return max(self.omega_minutes.values())

    @property
    def total_minutes(self) -> float:
        """T_tot — synthesis plus implementation wall time."""
        return self.synth_makespan_minutes + self.par_makespan_minutes

    @property
    def total_retries(self) -> int:
        """Failed-then-retried attempts across every CAD job."""
        return sum(e.retries for e in self.executions.values())

    @property
    def dark_rps(self) -> Tuple[str, ...]:
        """Names of the tiles the build completed without, sorted."""
        names = set()
        for failure in self.failures:
            names.update(failure.rp_names)
        return tuple(sorted(names))

    def partial_bitstreams(self) -> List[Bitstream]:
        """The partial bitstreams, in (tile, mode) order."""
        from repro.vivado.bitstream import BitstreamKind

        return [b for b in self.bitstreams if b.kind is BitstreamKind.PARTIAL]

    def to_summary_dict(self) -> Dict:
        """JSON-serializable summary (for tooling and CI dashboards)."""
        return {
            "soc": self.config.name,
            "board": self.config.board,
            "grid": f"{self.config.rows}x{self.config.cols}",
            "design_class": self.decision.design_class.value,
            "strategy": self.strategy.value,
            "tau": self.plan.tau,
            "metrics": {
                "kappa": self.metrics.kappa,
                "alpha_av": self.metrics.alpha_av,
                "gamma": self.metrics.gamma,
                "num_rps": self.metrics.num_rps,
            },
            "minutes": {
                "synthesis": self.synth_makespan_minutes,
                "t_static": self.static_par_minutes,
                "max_omega": self.max_omega_minutes,
                "par_makespan": self.par_makespan_minutes,
                "total": self.total_minutes,
            },
            "fault_tolerance": {
                "degraded": self.degraded,
                "retries": self.total_retries,
                "dark_rps": list(self.dark_rps),
                "failures": [f.to_dict() for f in self.failures],
                "retried_jobs": {
                    name: execution.retries
                    for name, execution in sorted(self.executions.items())
                    if execution.retries
                },
            },
            "bitstreams": [
                {
                    "name": b.name,
                    "kind": b.kind.value,
                    "kib": round(b.size_kib, 1),
                    "target": b.target_rp,
                    "mode": b.mode,
                }
                for b in self.bitstreams
            ],
            "floorplan": [
                {
                    "rp": a.rp_name,
                    "cols": [a.pblock.col_lo, a.pblock.col_hi],
                    "rows": [a.pblock.row_lo, a.pblock.row_hi],
                    "utilization": round(a.lut_utilization, 3),
                }
                for a in self.floorplan.assignments
            ],
        }


class DprFlow:
    """The automated PR-ESP FPGA flow."""

    def __init__(
        self,
        model: RuntimeModel = CALIBRATED_MODEL,
        max_instances: int = 16,
        compress_bitstreams: bool = True,
        floorplan_utilization: float = 0.7,
        faults: CadFaultModel = NO_FAULTS,
        retry: RetryPolicy = DEFAULT_RETRY_POLICY,
    ) -> None:
        if max_instances <= 0:
            raise FlowError("flow needs at least one tool instance")
        self.model = model
        self.max_instances = max_instances
        self.compress_bitstreams = compress_bitstreams
        self.floorplan_utilization = floorplan_utilization
        self.faults = faults
        self.retry = retry

    # ------------------------------------------------------------------
    def build(
        self,
        config: SocConfig,
        strategy_override: Optional[ImplementationStrategy] = None,
        semi_tau: int = 2,
        tracer=NULL_TRACER,
        events=NULL_EVENTS,
        profiler=NULL_PROFILER,
        registry=NULL_METRICS,
        checkpoint_dir: Union[None, str, Path, FlowCheckpointer] = None,
        resume: bool = False,
    ) -> FlowResult:
        """Run the full RTL-to-bitstream flow for ``config``.

        ``strategy_override`` forces a P&R strategy (used by the
        evaluation to sweep all three); by default the size-driven
        algorithm decides. ``tracer`` (modelled CAD minutes) receives
        one span per Fig. 1 stage plus one per scheduled tool job;
        ``events`` receives a start/finish pair per stage, stamped on
        the same modelled-minute clock, plus retry/failure/degradation
        events when the fault model bites. ``profiler`` gets a
        ``build.<soc>`` frame over the whole flow, a ``flow.<stage>``
        frame per Fig. 1 stage (charged the stage's modelled minutes as
        simulated seconds) and a ``vivado.<job>`` frame per tool run
        (charged the tool's CPU minutes, burned attempts included).

        With ``checkpoint_dir`` set, every completed stage (and tool
        job) is persisted under the build's content key; ``resume=True``
        restores whatever matching prefix the directory holds instead
        of re-running it. Without ``resume`` the directory is cleared
        first, so a fresh build never trusts stale state.

        ``registry`` (a :class:`~repro.obs.metrics.MetricsRegistry`)
        receives per-stage CAD job accounting: ``flow.jobs_total``,
        ``flow.job_retries_total`` and ``flow.job_failures_total`` —
        the counters the ``cad-retry-rate`` SLO reads.
        """
        if not profiler.enabled:
            return self._build(
                config, strategy_override, semi_tau, tracer, events,
                NULL_PROFILER, registry, checkpoint_dir, resume,
            )
        profiler.begin(f"build.{config.name}")
        try:
            return self._build(
                config, strategy_override, semi_tau, tracer, events,
                profiler, registry, checkpoint_dir, resume,
            )
        finally:
            profiler.end()

    def _build(
        self,
        config: SocConfig,
        strategy_override: Optional[ImplementationStrategy],
        semi_tau: int,
        tracer,
        events,
        profiler,
        registry,
        checkpoint_dir: Union[None, str, Path, FlowCheckpointer],
        resume: bool,
    ) -> FlowResult:
        from repro.flow.cache import flow_cache_key

        stages: List[StageTrace] = []
        resumed: List[str] = []
        device = config.device()
        planner = FaultPlanner(faults=self.faults, policy=self.retry)
        logger.info("build %s: starting flow on %s", config.name, device.name)

        ckpt: Optional[FlowCheckpointer] = None
        if checkpoint_dir is not None:
            if isinstance(checkpoint_dir, FlowCheckpointer):
                ckpt = checkpoint_dir
            else:
                key = flow_cache_key(self, config, strategy_override, semi_tau)
                ckpt = FlowCheckpointer(checkpoint_dir, key)
            if not resume:
                ckpt.clear()

        def add_stage(stage: str, wall_minutes: float, detail: str) -> None:
            """Record one Fig. 1 stage and emit its start/finish pair."""
            start = sum(s.wall_minutes for s in stages)
            events.emit(
                ev.FLOW_STAGE_STARTED, time=start, source=stage, soc=config.name
            )
            stages.append(
                StageTrace(stage=stage, wall_minutes=wall_minutes, detail=detail)
            )
            events.emit(
                ev.FLOW_STAGE_FINISHED,
                time=start + wall_minutes,
                source=stage,
                soc=config.name,
                wall_minutes=wall_minutes,
                detail=detail,
            )

        def run_stage(name: str, compute):
            """Load ``name`` from the checkpoint or compute and save it.

            ``compute`` returns ``(payload, wall_minutes, detail)``; the
            payload must be picklable. A restored stage contributes the
            same :class:`StageTrace` a fresh run would, so downstream
            accounting (and the summary) cannot tell the difference.
            """
            if ckpt is not None and ckpt.has_stage(name):
                payload, wall, detail = ckpt.load_stage(name)
                start = sum(s.wall_minutes for s in stages)
                stages.append(
                    StageTrace(stage=name, wall_minutes=wall, detail=detail)
                )
                resumed.append(name)
                profiler.record_leaf(
                    (f"flow.{name}", "resumed"), sim_s=wall * 60.0
                )
                events.emit(
                    ev.FLOW_STAGE_RESUMED,
                    time=start + wall,
                    source=name,
                    soc=config.name,
                    wall_minutes=wall,
                    detail=detail,
                )
                logger.info("build %s: resumed stage %s from checkpoint",
                            config.name, name)
                return payload
            profiler.begin(f"flow.{name}")
            try:
                payload, wall, detail = compute()
                # The stage's modelled CAD minutes are its simulated-
                # time attribution (the flow clock runs in minutes).
                profiler.add_sim(wall * 60.0)
            finally:
                profiler.end()
            add_stage(name, wall, detail)
            if ckpt is not None:
                ckpt.save_stage(name, payload, wall, detail)
                events.emit(
                    ev.FLOW_CHECKPOINT_SAVED,
                    time=sum(s.wall_minutes for s in stages),
                    source=name,
                    soc=config.name,
                )
            return payload

        def emit_job_events(
            stage_name: str,
            stage_start: float,
            schedule: ScheduleResult,
            executions: Dict[str, JobExecution],
        ) -> None:
            """Emit retry/failure events placed on the schedule's clock.

            Also folds the stage's job outcomes into the registry's
            CAD accounting counters — every scheduled job counts, not
            just the retried/failed ones the event loop below reports.
            """
            jobs_total = registry.counter(
                "flow.jobs_total", "CAD jobs scheduled, by stage"
            )
            retries_total = registry.counter(
                "flow.job_retries_total", "retried CAD job attempts, by stage"
            )
            failures_total = registry.counter(
                "flow.job_failures_total",
                "CAD jobs that exhausted their retry budget, by stage",
            )
            for name, execution in sorted(executions.items()):
                jobs_total.inc(stage=stage_name)
                if execution.retries:
                    retries_total.inc(execution.retries, stage=stage_name)
                if not execution.succeeded:
                    failures_total.inc(stage=stage_name)
            by_name = {placed.job.name: placed for placed in schedule.jobs}
            for name, execution in sorted(executions.items()):
                if execution.succeeded and not execution.retries:
                    continue
                placed = by_name.get(name)
                base = stage_start + (placed.start_minutes if placed else 0.0)
                offset = 0.0
                for attempt in execution.attempts:
                    offset += attempt.backoff_minutes + attempt.busy_minutes
                    if not attempt.succeeded and attempt.index < len(
                        execution.attempts
                    ):
                        events.emit(
                            ev.CAD_JOB_RETRIED,
                            time=base + offset,
                            source=stage_name,
                            job=name,
                            attempt=attempt.index,
                            backoff_minutes=execution.attempts[
                                attempt.index
                            ].backoff_minutes,
                        )
                if not execution.succeeded:
                    events.emit(
                        ev.CAD_JOB_FAILED,
                        time=base + offset,
                        source=stage_name,
                        job=name,
                        attempts=len(execution.attempts),
                        minutes_burned=execution.total_minutes,
                    )

        # -- 1. parse the SoC configuration / split the sources --------
        def compute_parse():
            parsed = partition_design(config)
            return (
                parsed,
                0.0,
                f"static={parsed.static.luts} LUTs, "
                f"{parsed.num_rps} reconfigurable tiles",
            )

        partition: DesignPartition = run_stage("parse", compute_parse)

        # -- 2. black-box wrapper generation ----------------------------
        def compute_blackboxes():
            wrappers = generate_blackboxes(partition)
            return wrappers, 0.0, f"{len(wrappers)} wrappers"

        blackboxes: List[BlackBoxWrapper] = run_stage(
            "blackbox_gen", compute_blackboxes
        )

        # -- 3. parallel OoC synthesis ----------------------------------
        def compute_synthesis():
            payload = self._synthesize(partition, planner, ckpt, profiler)
            makespan = payload["schedule"].makespan_minutes
            return (
                payload,
                makespan,
                f"{1 + len(partition.rps)} parallel OoC runs",
            )

        synth = run_stage("synthesis", compute_synthesis)
        for execution in synth["executions"].values():
            planner.restore(execution)
        synth_schedule: ScheduleResult = synth["schedule"]
        netlists: Dict[str, NetlistCheckpoint] = synth["netlists"]
        static_netlist: NetlistCheckpoint = synth["static_netlist"]
        synth_failures: Tuple[JobFailure, ...] = synth["failures"]
        synth_makespan = synth_schedule.makespan_minutes
        if "synthesis" not in resumed:
            emit_job_events("synthesis", 0.0, synth_schedule, synth["executions"])
        logger.info(
            "build %s: synthesis makespan %.1f min over %d runs",
            config.name,
            synth_makespan,
            len(synth_schedule.jobs),
        )
        dark_synth = frozenset(
            name for failure in synth_failures for name in failure.rp_names
        )
        if dark_synth:
            logger.warning(
                "build %s: %d tile(s) lost to synthesis faults: %s",
                config.name,
                len(dark_synth),
                ", ".join(sorted(dark_synth)),
            )

        # -- 4. floorplanning -------------------------------------------
        def compute_floorplan():
            floorplanner = FloraFloorplanner(
                device, target_utilization=self.floorplan_utilization
            )
            plan = floorplanner.plan(
                [(rp.name, rp.demand) for rp in partition.rps]
            )
            report = validate_floorplan(device, plan)
            if not report.legal:
                raise FlowError(
                    "floorplan validation failed: " + "; ".join(report.violations)
                )
            return (
                plan,
                0.0,
                f"{len(plan.assignments)} pblocks on {device.name}",
            )

        floorplan: Floorplan = run_stage("floorplan", compute_floorplan)

        # -- 5. size-driven strategy choice ------------------------------
        # The classification runs on the full design (paper semantics);
        # the materialized plan excludes tiles already lost to synthesis
        # faults, so the implementation runs cover survivors only.
        def compute_choice():
            metrics = compute_metrics(config)
            decision = choose_strategy(
                metrics,
                estimator=self.model.strategy_estimator(tau=semi_tau),
                semi_tau=semi_tau,
            )
            if (
                strategy_override is not None
                and strategy_override is not decision.strategy
            ):
                final = StrategyDecision(
                    classification=decision.classification,
                    strategy=strategy_override,
                    tau=(
                        1
                        if strategy_override is ImplementationStrategy.SERIAL
                        else metrics.num_rps
                        if strategy_override is ImplementationStrategy.FULLY_PARALLEL
                        else min(semi_tau, metrics.num_rps)
                    ),
                )
            else:
                final = decision
            plan = plan_implementation(partition, final, exclude=dark_synth)
            detail = (
                f"class {final.design_class.value} -> "
                f"{final.strategy.value} (tau={plan.tau})"
            )
            if dark_synth:
                detail += f", excluding {len(dark_synth)} dark tile(s)"
            return (metrics, final, plan), 0.0, detail

        metrics, decision, plan = run_stage("choose_parallelism", compute_choice)

        # -- 6. implementation + bitstream generation --------------------
        # Each tool instance writes the bitstreams of the partitions it
        # implemented, so bitgen time lands inside the runs (as in the
        # real flow) and the makespan stays comparable to the baseline.
        def compute_implementation():
            payload = self._implement(
                config,
                partition,
                plan,
                device,
                floorplan,
                netlists,
                static_netlist,
                planner,
                ckpt,
                dark_synth,
                profiler,
            )
            return (
                payload,
                payload["schedule"].makespan_minutes,
                f"{len(plan.runs)} runs, strategy {plan.strategy.value}",
            )

        impl = run_stage("implementation", compute_implementation)
        for execution in impl["executions"].values():
            planner.restore(execution)
        schedule: ScheduleResult = impl["schedule"]
        par_makespan = schedule.makespan_minutes
        bitstreams: List[Bitstream] = impl["bitstreams"]
        if "implementation" not in resumed:
            emit_job_events(
                "implementation",
                sum(s.wall_minutes for s in stages) - par_makespan,
                schedule,
                impl["executions"],
            )

        failures: Tuple[JobFailure, ...] = synth_failures + impl["failures"]
        degraded = bool(failures)

        def compute_bitstream_stage():
            detail = (
                f"{len(bitstreams)} bitstreams "
                f"({'compressed' if self.compress_bitstreams else 'raw'} partials)"
            )
            if degraded:
                dark = sorted(
                    {name for f in failures for name in f.rp_names}
                )
                detail += f", blanking-only for dark tiles: {', '.join(dark)}"
            return None, 0.0, detail

        run_stage("bitstreams", compute_bitstream_stage)

        result = FlowResult(
            config=config,
            partition=partition,
            metrics=metrics,
            decision=decision,
            plan=plan,
            floorplan=floorplan,
            blackboxes=blackboxes,
            synth_makespan_minutes=synth_makespan,
            static_par_minutes=impl["static_minutes"],
            omega_minutes=impl["omegas"],
            par_makespan_minutes=par_makespan,
            bitstreams=bitstreams,
            stages=stages,
            schedule=schedule,
            synth_schedule=synth_schedule,
            degraded=degraded,
            failures=failures,
            executions=dict(planner.executions),
            resumed_stages=tuple(resumed),
        )
        if degraded:
            events.emit(
                ev.FLOW_DEGRADED,
                time=result.total_minutes,
                source="flow",
                soc=config.name,
                rps=list(result.dark_rps),
            )
            logger.warning(
                "build %s: completed DEGRADED without tiles %s",
                config.name,
                ", ".join(result.dark_rps),
            )
        logger.info(
            "build %s: %s (tau=%d), total %.1f min%s",
            config.name,
            plan.strategy.value,
            plan.tau,
            result.total_minutes,
            " [degraded]" if degraded else "",
        )
        if tracer.enabled:
            self.record_trace(result, tracer)
        return result

    # ------------------------------------------------------------------
    def record_trace(self, result: FlowResult, tracer) -> None:
        """Project a finished build onto the tracer (CAD minutes).

        Public because cache hits replay it: a ``FlowResult`` served
        from the :class:`repro.flow.cache.FlowCache` carries everything
        the projection reads, so a cached build traces byte-identically
        to the fresh one.

        The stage spans tile the ``flow/build`` track back to back
        (zero-cost stages become instants); each scheduled tool job
        lands on its instance's track, offset to its stage's window,
        so every job span nests inside its stage span. Reading from
        the same `FlowResult` the report renders keeps the trace and
        the human report in agreement by construction.
        """
        root = tracer.record(
            f"build {result.config.name}",
            0.0,
            result.total_minutes,
            category="flow.build",
            track="flow/build",
            soc=result.config.name,
            board=result.config.board,
            strategy=result.strategy.value,
            tau=result.plan.tau,
            design_class=result.decision.design_class.value,
            kappa=result.metrics.kappa,
            alpha_av=result.metrics.alpha_av,
            gamma=result.metrics.gamma,
            degraded=result.degraded,
        )
        offset = 0.0
        stage_spans: Dict[str, "object"] = {}
        for stage in result.stages:
            stage_spans[stage.stage] = tracer.record(
                stage.stage,
                offset,
                offset + stage.wall_minutes,
                category="flow.stage",
                track="flow/build",
                parent=root,
                detail=stage.detail,
            )
            offset += stage.wall_minutes

        run_tiles = {run.name: run.rp_names for run in result.plan.runs}
        for schedule, stage_name in (
            (result.synth_schedule, "synthesis"),
            (result.schedule, "implementation"),
        ):
            if schedule is None:
                continue
            stage_span = stage_spans.get(stage_name)
            base = stage_span.start if stage_span is not None else 0.0
            for placed in schedule.jobs:
                tracer.record(
                    placed.job.name,
                    base + placed.start_minutes,
                    base + placed.end_minutes,
                    category="flow.job",
                    track=f"flow/vivado{placed.instance:02d}",
                    parent=stage_span,
                    cpu_minutes=placed.job.cpu_minutes,
                    stage=stage_name,
                    tiles=list(run_tiles.get(placed.job.name, ())),
                )

    def record_profile(self, result: FlowResult, profiler) -> None:
        """Project a finished build onto the profiler (cache hits).

        A cache hit costs no host time, but its modelled CAD minutes
        still belong in the profile — otherwise a cached sweep would
        report zero simulated flow time. The projection mirrors the
        shape a fresh build produces (``build.<soc>`` → ``flow.<stage>``
        → ``vivado.<job>``), marked with a ``cache_hit`` leaf.
        """
        if not profiler.enabled:
            return
        base = (f"build.{result.config.name}",)
        profiler.record_leaf(base + ("cache_hit",))
        for stage in result.stages:
            profiler.record_leaf(
                base + (f"flow.{stage.stage}",), sim_s=stage.wall_minutes * 60.0
            )
        for schedule, stage_name in (
            (result.synth_schedule, "synthesis"),
            (result.schedule, "implementation"),
        ):
            if schedule is None:
                continue
            for placed in schedule.jobs:
                profiler.record_leaf(
                    base + (f"flow.{stage_name}", f"vivado.{placed.job.name}"),
                    sim_s=placed.job.cpu_minutes * 60.0,
                )

    # ------------------------------------------------------------------
    def _synthesize(
        self,
        partition: DesignPartition,
        planner: FaultPlanner,
        ckpt: Optional[FlowCheckpointer],
        profiler=NULL_PROFILER,
    ) -> Dict:
        """Run the static + per-tile OoC syntheses in parallel.

        The static top is synthesized with the reconfigurable wrappers
        black-boxed; it is charged on the OoC curve because the run is
        identical in character (no context, netlist-out) even though the
        result is the design top. A permanent fault on the static
        synthesis aborts the build; a per-tile fault marks that tile
        dark and the flow continues without it.
        """
        black_box_names = [rp.wrapper.name for rp in partition.rps]
        jobs: List[ToolJob] = []
        failures: List[JobFailure] = []
        executions: Dict[str, JobExecution] = {}

        def run_synth(job_name, module, black_boxes=(), rp_names=()):
            """One synthesis job: checkpoint-aware, fault-aware.

            Returns (netlist_or_None, failure_or_None)."""
            if ckpt is not None:
                cached = ckpt.load_job(job_name)
                if cached is not None:
                    execution = cached.get("execution")
                    if execution is not None:
                        planner.restore(execution)
                        executions[job_name] = execution
                    jobs.append(
                        ToolJob(name=job_name, cpu_minutes=cached["cpu_minutes"])
                    )
                    profiler.record_leaf(
                        (f"vivado.{job_name}", "resumed"),
                        sim_s=cached["cpu_minutes"] * 60.0,
                    )
                    return cached["netlist"], cached["failure"]
            tool = VivadoInstance(
                job_name, self.model, planner=planner, stage="synthesis"
            )
            netlist = None
            failure = None
            profiler.begin(f"vivado.{job_name}")
            try:
                try:
                    netlist = tool.synth_design(
                        module, ooc=True, black_box_names=black_boxes
                    )
                except CadFaultError as error:
                    failure = JobFailure(
                        stage="synthesis",
                        job=job_name,
                        rp_names=tuple(rp_names),
                        attempts=len(error.execution.attempts),
                        minutes_burned=error.execution.total_minutes,
                    )
            finally:
                # CPU minutes include burned (retried/failed) attempts.
                profiler.add_sim(tool.cpu_minutes * 60.0)
                profiler.end()
            execution = planner.executions.get(job_name)
            if execution is not None:
                executions[job_name] = execution
            jobs.append(ToolJob(name=job_name, cpu_minutes=tool.cpu_minutes))
            if ckpt is not None:
                ckpt.save_job(
                    job_name,
                    {
                        "netlist": netlist,
                        "cpu_minutes": tool.cpu_minutes,
                        "execution": execution,
                        "failure": failure,
                    },
                )
            return netlist, failure

        static_netlist, static_failure = run_synth(
            "synth_static", partition.rtl, black_boxes=black_box_names
        )
        if static_failure is not None:
            raise CadFaultError(executions["synth_static"])

        netlists: Dict[str, NetlistCheckpoint] = {}
        for rp in partition.rps:
            netlist, failure = run_synth(
                f"synth_{rp.name}", rp.wrapper, rp_names=(rp.name,)
            )
            if failure is not None:
                failures.append(failure)
            else:
                netlists[rp.name] = netlist
        server = VivadoServer(max_instances=self.max_instances)
        schedule = server.schedule(jobs)
        return {
            "schedule": schedule,
            "netlists": netlists,
            "static_netlist": static_netlist,
            "failures": tuple(failures),
            "executions": executions,
        }

    # ------------------------------------------------------------------
    def _write_rp_bitstreams(
        self,
        tool: VivadoInstance,
        partition: DesignPartition,
        floorplan: Floorplan,
        rp_names: Sequence[str],
    ) -> List[Bitstream]:
        """Write the partial bitstreams of the given RPs on ``tool``."""
        from repro.fabric.resources import ResourceVector
        from repro.soc.tiles import CPU_TILE_LUTS

        bitstreams: List[Bitstream] = []
        for rp_name in rp_names:
            rp = partition.rp_by_name(rp_name)
            assignment = floorplan.assignment_for(rp.name)
            for ip in rp.tile.modes:
                bitstreams.append(
                    tool.write_partial_bitstream(
                        rp.name, ip.name, assignment.provided, ip.resources
                    )
                )
            if rp.tile.host_cpu:
                core_luts = CPU_TILE_LUTS[rp.tile.hosted_cpu_core]
                bitstreams.append(
                    tool.write_partial_bitstream(
                        rp.name,
                        rp.tile.hosted_cpu_core.value,
                        assignment.provided,
                        ResourceVector(lut=core_luts, ff=int(core_luts * 1.2)),
                    )
                )
            # Blanking (greybox) image: lets the runtime erase the
            # region for power saving or fault clearing.
            bitstreams.append(
                tool.write_blanking_bitstream(rp.name, assignment.provided)
            )
        return bitstreams

    def _implement(
        self,
        config: SocConfig,
        partition: DesignPartition,
        plan: ImplementationPlan,
        device: Device,
        floorplan: Floorplan,
        netlists: Dict[str, NetlistCheckpoint],
        static_netlist: NetlistCheckpoint,
        planner: FaultPlanner,
        ckpt: Optional[FlowCheckpointer],
        dark_synth: frozenset,
        profiler=NULL_PROFILER,
    ) -> Dict:
        """Execute the implementation plan.

        Static-path faults (the serial full run, the static pre-route)
        abort the build; a faulted in-context run marks its whole group
        of tiles dark and the flow continues. Every dark tile — from
        synthesis or implementation — gets its blanking bitstream from
        a fault-exempt recovery instance, so a degraded build is always
        loadable.
        """
        pblocks = floorplan.pblocks()
        demands = [a.demand for a in floorplan.assignments]
        pblock_by_rp = {a.rp_name: a.pblock.name for a in floorplan.assignments}

        jobs: List[ToolJob] = []
        omegas: Dict[str, float] = {}
        static_minutes: Optional[float] = None
        bitstreams: List[Bitstream] = []
        failures: List[JobFailure] = []
        executions: Dict[str, JobExecution] = {}

        def record_execution(job_name: str) -> Optional[JobExecution]:
            execution = planner.executions.get(job_name)
            if execution is not None:
                executions[job_name] = execution
            return execution

        def load_job(job_name: str) -> Optional[Dict]:
            if ckpt is None:
                return None
            cached = ckpt.load_job(job_name)
            if cached is None:
                return None
            execution = cached.get("execution")
            if execution is not None:
                planner.restore(execution)
                executions[job_name] = execution
            return cached

        if plan.strategy is ImplementationStrategy.SERIAL:
            run = plan.runs[0]
            cached = load_job(run.name)
            if cached is not None:
                bitstreams += cached["bitstreams"]
                jobs.append(
                    ToolJob(name=run.name, cpu_minutes=cached["cpu_minutes"])
                )
                profiler.record_leaf(
                    (f"vivado.{run.name}", "resumed"),
                    sim_s=cached["cpu_minutes"] * 60.0,
                )
            else:
                tool = VivadoInstance(
                    run.name,
                    self.model,
                    compress_bitstreams=self.compress_bitstreams,
                    planner=planner,
                    stage="implementation",
                )
                rp_netlists = [netlists[name] for name in run.rp_names]
                # The serial run implements the static design too; a
                # permanent fault here aborts — no degraded SoC exists
                # without its static logic.
                profiler.begin(f"vivado.{run.name}")
                try:
                    tool.implement_full(
                        static_netlist,
                        rp_netlists,
                        device,
                        pblocks,
                        demands,
                        mode=ParMode.FULL_SERIAL,
                    )
                    record_execution(run.name)
                    run_bitstreams = [
                        tool.write_full_bitstream(config.name, device)
                    ]
                    run_bitstreams += self._write_rp_bitstreams(
                        tool, partition, floorplan, run.rp_names
                    )
                finally:
                    profiler.add_sim(tool.cpu_minutes * 60.0)
                    profiler.end()
                bitstreams += run_bitstreams
                jobs.append(ToolJob(name=run.name, cpu_minutes=tool.cpu_minutes))
                if ckpt is not None:
                    ckpt.save_job(
                        run.name,
                        {
                            "bitstreams": run_bitstreams,
                            "cpu_minutes": tool.cpu_minutes,
                            "execution": executions.get(run.name),
                        },
                    )
        else:
            cached = load_job("impl_static")
            if cached is not None:
                static_routed = cached["static_routed"]
                bitstreams.append(cached["full_bitstream"])
                static_minutes = cached["cpu_minutes"]
                jobs.append(
                    ToolJob(name="impl_static", cpu_minutes=static_minutes)
                )
                profiler.record_leaf(
                    ("vivado.impl_static", "resumed"),
                    sim_s=static_minutes * 60.0,
                )
            else:
                static_tool = VivadoInstance(
                    "impl_static",
                    self.model,
                    compress_bitstreams=self.compress_bitstreams,
                    planner=planner,
                    stage="implementation",
                )
                # A permanent fault on the static pre-route aborts: every
                # in-context run depends on the locked static design.
                profiler.begin("vivado.impl_static")
                try:
                    static_routed = static_tool.implement_static(
                        static_netlist, device, pblocks, demands
                    )
                    record_execution("impl_static")
                    # The static instance assembles and writes the
                    # full-device bitstream (with placeholder greyboxes).
                    full_bitstream = static_tool.write_full_bitstream(
                        config.name, device
                    )
                finally:
                    profiler.add_sim(static_tool.cpu_minutes * 60.0)
                    profiler.end()
                bitstreams.append(full_bitstream)
                static_minutes = static_tool.cpu_minutes
                jobs.append(
                    ToolJob(name="impl_static", cpu_minutes=static_minutes)
                )
                if ckpt is not None:
                    ckpt.save_job(
                        "impl_static",
                        {
                            "static_routed": static_routed,
                            "full_bitstream": full_bitstream,
                            "cpu_minutes": static_minutes,
                            "execution": executions.get("impl_static"),
                        },
                    )
            for run in plan.context_runs:
                cached = load_job(run.name)
                if cached is not None:
                    bitstreams += cached["bitstreams"]
                    if cached["failure"] is not None:
                        failures.append(cached["failure"])
                    else:
                        omegas[run.name] = cached["cpu_minutes"]
                    jobs.append(
                        ToolJob(
                            name=run.name,
                            cpu_minutes=cached["cpu_minutes"],
                            depends_on=("impl_static",),
                        )
                    )
                    profiler.record_leaf(
                        (f"vivado.{run.name}", "resumed"),
                        sim_s=cached["cpu_minutes"] * 60.0,
                    )
                    continue
                tool = VivadoInstance(
                    run.name,
                    self.model,
                    compress_bitstreams=self.compress_bitstreams,
                    planner=planner,
                    stage="implementation",
                )
                group = [netlists[name] for name in run.rp_names]
                targets = [pblock_by_rp[name] for name in run.rp_names]
                failure = None
                run_bitstreams: List[Bitstream] = []
                profiler.begin(f"vivado.{run.name}")
                try:
                    try:
                        tool.implement_in_context(static_routed, group, targets)
                    except CadFaultError as error:
                        # The whole group goes dark; the burned minutes
                        # stay on the schedule so the makespan reflects
                        # the loss.
                        failure = JobFailure(
                            stage="implementation",
                            job=run.name,
                            rp_names=run.rp_names,
                            attempts=len(error.execution.attempts),
                            minutes_burned=error.execution.total_minutes,
                        )
                        failures.append(failure)
                    else:
                        run_bitstreams = self._write_rp_bitstreams(
                            tool, partition, floorplan, run.rp_names
                        )
                        bitstreams += run_bitstreams
                        omegas[run.name] = tool.cpu_minutes
                finally:
                    profiler.add_sim(tool.cpu_minutes * 60.0)
                    profiler.end()
                record_execution(run.name)
                jobs.append(
                    ToolJob(
                        name=run.name,
                        cpu_minutes=tool.cpu_minutes,
                        depends_on=("impl_static",),
                    )
                )
                if ckpt is not None:
                    ckpt.save_job(
                        run.name,
                        {
                            "bitstreams": run_bitstreams,
                            "cpu_minutes": tool.cpu_minutes,
                            "execution": executions.get(run.name),
                            "failure": failure,
                        },
                    )

        # -- recovery: blanking bitstreams for every dark tile ----------
        # Written on a planner-free instance (bitgen is fault-exempt by
        # design) so a degraded build always ships a loadable image for
        # each dark region.
        dark_impl = {name for failure in failures for name in failure.rp_names}
        dark_all = sorted(dark_synth | dark_impl)
        if dark_all:
            recovery = VivadoInstance(
                "impl_recovery",
                self.model,
                compress_bitstreams=self.compress_bitstreams,
            )
            profiler.begin("vivado.impl_recovery")
            try:
                for rp_name in dark_all:
                    assignment = floorplan.assignment_for(rp_name)
                    bitstreams.append(
                        recovery.write_blanking_bitstream(
                            rp_name, assignment.provided
                        )
                    )
            finally:
                profiler.add_sim(recovery.cpu_minutes * 60.0)
                profiler.end()
            depends = (
                ("impl_static",)
                if plan.strategy is not ImplementationStrategy.SERIAL
                else ()
            )
            jobs.append(
                ToolJob(
                    name="impl_recovery",
                    cpu_minutes=recovery.cpu_minutes,
                    depends_on=depends,
                )
            )

        server = VivadoServer(max_instances=max(self.max_instances, plan.tau))
        schedule = server.schedule(jobs)
        return {
            "static_minutes": static_minutes,
            "omegas": omegas,
            "schedule": schedule,
            "bitstreams": bitstreams,
            "failures": tuple(failures),
            "executions": executions,
        }
