"""The PR-ESP DPR flow orchestrator (Fig. 1).

``DprFlow.build()`` is the paper's single make target: it parses the
SoC configuration, splits static from reconfigurable sources, runs the
parallel OoC syntheses, floorplans the reconfigurable partitions,
chooses the size-driven P&R parallelism, orchestrates the (possibly
parallel) implementation runs, and generates full plus compressed
partial bitstreams. The returned :class:`FlowResult` carries every
intermediate the paper's tables report (synthesis makespan, t_static,
Ω per run, T_P&R, bitstream sizes).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.metrics import DesignMetrics, compute_metrics
from repro.core.strategy import (
    ImplementationStrategy,
    StrategyDecision,
    choose_strategy,
)
from repro.errors import FlowError
from repro.fabric.device import Device
from repro.obs import events as ev
from repro.obs.events import NULL_EVENTS
from repro.obs.logconfig import get_logger
from repro.obs.tracer import NULL_TRACER
from repro.floorplan.constraints import validate_floorplan
from repro.floorplan.flora import Floorplan, FloraFloorplanner
from repro.flow.blackbox import BlackBoxWrapper, generate_blackboxes
from repro.flow.schedule import ImplementationPlan, plan_implementation
from repro.soc.config import SocConfig
from repro.soc.partition import DesignPartition, partition_design
from repro.vivado.bitstream import Bitstream
from repro.vivado.checkpoint import NetlistCheckpoint
from repro.vivado.par import ParMode
from repro.vivado.runtime_model import CALIBRATED_MODEL, RuntimeModel
from repro.vivado.server import ScheduleResult, ToolJob, VivadoServer
from repro.vivado.tool import VivadoInstance

logger = get_logger("flow")


@dataclass(frozen=True)
class StageTrace:
    """One executed flow stage (the boxes of Fig. 1)."""

    stage: str
    wall_minutes: float
    detail: str


@dataclass
class FlowResult:
    """Everything the flow produced for one SoC."""

    config: SocConfig
    partition: DesignPartition
    metrics: DesignMetrics
    decision: StrategyDecision
    plan: ImplementationPlan
    floorplan: Floorplan
    blackboxes: List[BlackBoxWrapper]
    synth_makespan_minutes: float
    static_par_minutes: Optional[float]
    omega_minutes: Dict[str, float]
    par_makespan_minutes: float
    bitstreams: List[Bitstream]
    stages: List[StageTrace]
    schedule: ScheduleResult
    #: Schedule of the parallel OoC synthesis runs (None on results
    #: produced before this field existed).
    synth_schedule: Optional[ScheduleResult] = None

    @property
    def strategy(self) -> ImplementationStrategy:
        """The strategy the flow executed."""
        return self.plan.strategy

    @property
    def max_omega_minutes(self) -> Optional[float]:
        """max{Ω} over the in-context runs (None for serial)."""
        if not self.omega_minutes:
            return None
        return max(self.omega_minutes.values())

    @property
    def total_minutes(self) -> float:
        """T_tot — synthesis plus implementation wall time."""
        return self.synth_makespan_minutes + self.par_makespan_minutes

    def partial_bitstreams(self) -> List[Bitstream]:
        """The partial bitstreams, in (tile, mode) order."""
        from repro.vivado.bitstream import BitstreamKind

        return [b for b in self.bitstreams if b.kind is BitstreamKind.PARTIAL]

    def to_summary_dict(self) -> Dict:
        """JSON-serializable summary (for tooling and CI dashboards)."""
        return {
            "soc": self.config.name,
            "board": self.config.board,
            "grid": f"{self.config.rows}x{self.config.cols}",
            "design_class": self.decision.design_class.value,
            "strategy": self.strategy.value,
            "tau": self.plan.tau,
            "metrics": {
                "kappa": self.metrics.kappa,
                "alpha_av": self.metrics.alpha_av,
                "gamma": self.metrics.gamma,
                "num_rps": self.metrics.num_rps,
            },
            "minutes": {
                "synthesis": self.synth_makespan_minutes,
                "t_static": self.static_par_minutes,
                "max_omega": self.max_omega_minutes,
                "par_makespan": self.par_makespan_minutes,
                "total": self.total_minutes,
            },
            "bitstreams": [
                {
                    "name": b.name,
                    "kind": b.kind.value,
                    "kib": round(b.size_kib, 1),
                    "target": b.target_rp,
                    "mode": b.mode,
                }
                for b in self.bitstreams
            ],
            "floorplan": [
                {
                    "rp": a.rp_name,
                    "cols": [a.pblock.col_lo, a.pblock.col_hi],
                    "rows": [a.pblock.row_lo, a.pblock.row_hi],
                    "utilization": round(a.lut_utilization, 3),
                }
                for a in self.floorplan.assignments
            ],
        }


class DprFlow:
    """The automated PR-ESP FPGA flow."""

    def __init__(
        self,
        model: RuntimeModel = CALIBRATED_MODEL,
        max_instances: int = 16,
        compress_bitstreams: bool = True,
        floorplan_utilization: float = 0.7,
    ) -> None:
        if max_instances <= 0:
            raise FlowError("flow needs at least one tool instance")
        self.model = model
        self.max_instances = max_instances
        self.compress_bitstreams = compress_bitstreams
        self.floorplan_utilization = floorplan_utilization

    # ------------------------------------------------------------------
    def build(
        self,
        config: SocConfig,
        strategy_override: Optional[ImplementationStrategy] = None,
        semi_tau: int = 2,
        tracer=NULL_TRACER,
        events=NULL_EVENTS,
    ) -> FlowResult:
        """Run the full RTL-to-bitstream flow for ``config``.

        ``strategy_override`` forces a P&R strategy (used by the
        evaluation to sweep all three); by default the size-driven
        algorithm decides. ``tracer`` (modelled CAD minutes) receives
        one span per Fig. 1 stage plus one per scheduled tool job;
        ``events`` receives a start/finish pair per stage, stamped on
        the same modelled-minute clock.
        """
        stages: List[StageTrace] = []
        device = config.device()
        logger.info("build %s: starting flow on %s", config.name, device.name)

        def add_stage(stage: str, wall_minutes: float, detail: str) -> None:
            """Record one Fig. 1 stage and emit its start/finish pair."""
            start = sum(s.wall_minutes for s in stages)
            events.emit(
                ev.FLOW_STAGE_STARTED, time=start, source=stage, soc=config.name
            )
            stages.append(
                StageTrace(stage=stage, wall_minutes=wall_minutes, detail=detail)
            )
            events.emit(
                ev.FLOW_STAGE_FINISHED,
                time=start + wall_minutes,
                source=stage,
                soc=config.name,
                wall_minutes=wall_minutes,
                detail=detail,
            )

        # -- 1. parse the SoC configuration / split the sources --------
        partition = partition_design(config)
        add_stage(
            "parse",
            0.0,
            f"static={partition.static.luts} LUTs, "
            f"{partition.num_rps} reconfigurable tiles",
        )

        # -- 2. black-box wrapper generation ----------------------------
        blackboxes = generate_blackboxes(partition)
        add_stage("blackbox_gen", 0.0, f"{len(blackboxes)} wrappers")

        # -- 3. parallel OoC synthesis ----------------------------------
        synth_schedule, netlists, static_netlist = self._synthesize(partition)
        synth_makespan = synth_schedule.makespan_minutes
        logger.info(
            "build %s: synthesis makespan %.1f min over %d runs",
            config.name,
            synth_makespan,
            len(synth_schedule.jobs),
        )
        add_stage(
            "synthesis", synth_makespan, f"{1 + len(netlists)} parallel OoC runs"
        )

        # -- 4. floorplanning -------------------------------------------
        floorplanner = FloraFloorplanner(
            device, target_utilization=self.floorplan_utilization
        )
        floorplan = floorplanner.plan([(rp.name, rp.demand) for rp in partition.rps])
        report = validate_floorplan(device, floorplan)
        if not report.legal:
            raise FlowError("floorplan validation failed: " + "; ".join(report.violations))
        add_stage(
            "floorplan",
            0.0,
            f"{len(floorplan.assignments)} pblocks on {device.name}",
        )

        # -- 5. size-driven strategy choice ------------------------------
        metrics = compute_metrics(config)
        decision = choose_strategy(
            metrics, estimator=self.model.strategy_estimator(tau=semi_tau), semi_tau=semi_tau
        )
        if strategy_override is not None and strategy_override is not decision.strategy:
            decision = StrategyDecision(
                classification=decision.classification,
                strategy=strategy_override,
                tau=(
                    1
                    if strategy_override is ImplementationStrategy.SERIAL
                    else metrics.num_rps
                    if strategy_override is ImplementationStrategy.FULLY_PARALLEL
                    else min(semi_tau, metrics.num_rps)
                ),
            )
        plan = plan_implementation(partition, decision)
        add_stage(
            "choose_parallelism",
            0.0,
            f"class {decision.design_class.value} -> "
            f"{decision.strategy.value} (tau={plan.tau})",
        )

        # -- 6. implementation + bitstream generation --------------------
        # Each tool instance writes the bitstreams of the partitions it
        # implemented, so bitgen time lands inside the runs (as in the
        # real flow) and the makespan stays comparable to the baseline.
        (
            static_minutes,
            omegas,
            par_makespan,
            schedule,
            bitstreams,
        ) = self._implement(
            config, partition, plan, device, floorplan, netlists, static_netlist
        )
        add_stage(
            "implementation",
            par_makespan,
            f"{len(plan.runs)} runs, strategy {plan.strategy.value}",
        )
        add_stage(
            "bitstreams",
            0.0,
            f"{len(bitstreams)} bitstreams "
            f"({'compressed' if self.compress_bitstreams else 'raw'} partials)",
        )

        result = FlowResult(
            config=config,
            partition=partition,
            metrics=metrics,
            decision=decision,
            plan=plan,
            floorplan=floorplan,
            blackboxes=blackboxes,
            synth_makespan_minutes=synth_makespan,
            static_par_minutes=static_minutes,
            omega_minutes=omegas,
            par_makespan_minutes=par_makespan,
            bitstreams=bitstreams,
            stages=stages,
            schedule=schedule,
            synth_schedule=synth_schedule,
        )
        logger.info(
            "build %s: %s (tau=%d), total %.1f min",
            config.name,
            plan.strategy.value,
            plan.tau,
            result.total_minutes,
        )
        if tracer.enabled:
            self.record_trace(result, tracer)
        return result

    # ------------------------------------------------------------------
    def record_trace(self, result: FlowResult, tracer) -> None:
        """Project a finished build onto the tracer (CAD minutes).

        Public because cache hits replay it: a ``FlowResult`` served
        from the :class:`repro.flow.cache.FlowCache` carries everything
        the projection reads, so a cached build traces byte-identically
        to the fresh one.

        The stage spans tile the ``flow/build`` track back to back
        (zero-cost stages become instants); each scheduled tool job
        lands on its instance's track, offset to its stage's window,
        so every job span nests inside its stage span. Reading from
        the same `FlowResult` the report renders keeps the trace and
        the human report in agreement by construction.
        """
        root = tracer.record(
            f"build {result.config.name}",
            0.0,
            result.total_minutes,
            category="flow.build",
            track="flow/build",
            soc=result.config.name,
            board=result.config.board,
            strategy=result.strategy.value,
            tau=result.plan.tau,
            design_class=result.decision.design_class.value,
            kappa=result.metrics.kappa,
            alpha_av=result.metrics.alpha_av,
            gamma=result.metrics.gamma,
        )
        offset = 0.0
        stage_spans: Dict[str, "object"] = {}
        for stage in result.stages:
            stage_spans[stage.stage] = tracer.record(
                stage.stage,
                offset,
                offset + stage.wall_minutes,
                category="flow.stage",
                track="flow/build",
                parent=root,
                detail=stage.detail,
            )
            offset += stage.wall_minutes

        run_tiles = {run.name: run.rp_names for run in result.plan.runs}
        for schedule, stage_name in (
            (result.synth_schedule, "synthesis"),
            (result.schedule, "implementation"),
        ):
            if schedule is None:
                continue
            stage_span = stage_spans.get(stage_name)
            base = stage_span.start if stage_span is not None else 0.0
            for placed in schedule.jobs:
                tracer.record(
                    placed.job.name,
                    base + placed.start_minutes,
                    base + placed.end_minutes,
                    category="flow.job",
                    track=f"flow/vivado{placed.instance:02d}",
                    parent=stage_span,
                    cpu_minutes=placed.job.cpu_minutes,
                    stage=stage_name,
                    tiles=list(run_tiles.get(placed.job.name, ())),
                )

    # ------------------------------------------------------------------
    def _synthesize(
        self, partition: DesignPartition
    ) -> Tuple[ScheduleResult, Dict[str, NetlistCheckpoint], NetlistCheckpoint]:
        """Run the static + per-tile OoC syntheses in parallel.

        The static top is synthesized with the reconfigurable wrappers
        black-boxed; it is charged on the OoC curve because the run is
        identical in character (no context, netlist-out) even though the
        result is the design top.
        """
        black_box_names = [rp.wrapper.name for rp in partition.rps]
        static_tool = VivadoInstance("synth_static", self.model)
        static_netlist = static_tool.synth_design(
            partition.rtl, ooc=True, black_box_names=black_box_names
        )
        jobs = [ToolJob(name="synth_static", cpu_minutes=static_tool.cpu_minutes)]
        netlists: Dict[str, NetlistCheckpoint] = {}
        for rp in partition.rps:
            tool = VivadoInstance(f"synth_{rp.name}", self.model)
            netlists[rp.name] = tool.synth_design(rp.wrapper, ooc=True)
            jobs.append(ToolJob(name=f"synth_{rp.name}", cpu_minutes=tool.cpu_minutes))
        server = VivadoServer(max_instances=self.max_instances)
        schedule = server.schedule(jobs)
        return schedule, netlists, static_netlist

    # ------------------------------------------------------------------
    def _write_rp_bitstreams(
        self,
        tool: VivadoInstance,
        partition: DesignPartition,
        floorplan: Floorplan,
        rp_names: Sequence[str],
    ) -> List[Bitstream]:
        """Write the partial bitstreams of the given RPs on ``tool``."""
        from repro.fabric.resources import ResourceVector
        from repro.soc.tiles import CPU_TILE_LUTS

        bitstreams: List[Bitstream] = []
        for rp_name in rp_names:
            rp = partition.rp_by_name(rp_name)
            assignment = floorplan.assignment_for(rp.name)
            for ip in rp.tile.modes:
                bitstreams.append(
                    tool.write_partial_bitstream(
                        rp.name, ip.name, assignment.provided, ip.resources
                    )
                )
            if rp.tile.host_cpu:
                core_luts = CPU_TILE_LUTS[rp.tile.hosted_cpu_core]
                bitstreams.append(
                    tool.write_partial_bitstream(
                        rp.name,
                        rp.tile.hosted_cpu_core.value,
                        assignment.provided,
                        ResourceVector(lut=core_luts, ff=int(core_luts * 1.2)),
                    )
                )
            # Blanking (greybox) image: lets the runtime erase the
            # region for power saving or fault clearing.
            bitstreams.append(
                tool.write_blanking_bitstream(rp.name, assignment.provided)
            )
        return bitstreams

    def _implement(
        self,
        config: SocConfig,
        partition: DesignPartition,
        plan: ImplementationPlan,
        device: Device,
        floorplan: Floorplan,
        netlists: Dict[str, NetlistCheckpoint],
        static_netlist: NetlistCheckpoint,
    ) -> Tuple[
        Optional[float], Dict[str, float], float, ScheduleResult, List[Bitstream]
    ]:
        """Execute the implementation plan; returns
        (t_static, Ω per run, makespan, schedule, bitstreams)."""
        pblocks = floorplan.pblocks()
        demands = [a.demand for a in floorplan.assignments]
        pblock_by_rp = {a.rp_name: a.pblock.name for a in floorplan.assignments}
        all_rp_names = [rp.name for rp in partition.rps]

        jobs: List[ToolJob] = []
        omegas: Dict[str, float] = {}
        static_minutes: Optional[float] = None
        bitstreams: List[Bitstream] = []

        if plan.strategy is ImplementationStrategy.SERIAL:
            tool = VivadoInstance(
                "impl_serial", self.model, compress_bitstreams=self.compress_bitstreams
            )
            rp_netlists = [netlists[rp.name] for rp in partition.rps]
            tool.implement_full(
                static_netlist,
                rp_netlists,
                device,
                pblocks,
                demands,
                mode=ParMode.FULL_SERIAL,
            )
            bitstreams.append(tool.write_full_bitstream(config.name, device))
            bitstreams += self._write_rp_bitstreams(
                tool, partition, floorplan, all_rp_names
            )
            jobs.append(ToolJob(name="impl_serial", cpu_minutes=tool.cpu_minutes))
        else:
            static_tool = VivadoInstance(
                "impl_static", self.model, compress_bitstreams=self.compress_bitstreams
            )
            static_routed = static_tool.implement_static(
                static_netlist, device, pblocks, demands
            )
            # The static instance assembles and writes the full-device
            # bitstream (with placeholder greyboxes).
            bitstreams.append(static_tool.write_full_bitstream(config.name, device))
            static_minutes = static_tool.cpu_minutes
            jobs.append(ToolJob(name="impl_static", cpu_minutes=static_minutes))
            for run in plan.context_runs:
                tool = VivadoInstance(
                    run.name, self.model, compress_bitstreams=self.compress_bitstreams
                )
                group = [netlists[name] for name in run.rp_names]
                targets = [pblock_by_rp[name] for name in run.rp_names]
                tool.implement_in_context(static_routed, group, targets)
                bitstreams += self._write_rp_bitstreams(
                    tool, partition, floorplan, run.rp_names
                )
                omegas[run.name] = tool.cpu_minutes
                jobs.append(
                    ToolJob(
                        name=run.name,
                        cpu_minutes=tool.cpu_minutes,
                        depends_on=("impl_static",),
                    )
                )

        server = VivadoServer(max_instances=max(self.max_instances, plan.tau))
        schedule = server.schedule(jobs)
        return static_minutes, omegas, schedule.makespan_minutes, schedule, bitstreams
