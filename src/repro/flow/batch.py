"""Process-parallel fan-out of many flow builds.

The paper's evaluation is a *batch* workload: Tables III/IV/V and the
characterization harness each run the flow over a grid of
``(config, strategy, tau)`` points. ``BatchBuilder`` turns that loop
into a build service: requests are short-circuited against the
:class:`~repro.flow.cache.FlowCache` first, the remaining misses fan
out over a ``ProcessPoolExecutor`` (real process-level parallelism —
the builds are pure CPU-bound Python, so threads would serialize on
the GIL), and the outcomes come back in input order with per-request
error capture: one failed build never sinks the batch.

On POSIX the pool uses the ``fork`` start method explicitly — workers
inherit the warm interpreter instead of re-importing numpy/scipy, so
the pool pays for itself even on sub-second builds. The start method
is resolved once at import; the pool itself is created lazily on the
first parallel batch and then kept **warm** for the life of the
builder: repeated ``build_many`` calls (sweeps, characterization
grids) reuse the same worker processes instead of paying fork + heap
re-warm per batch. ``close()`` (or the context-manager exit) shuts the
pool down deterministically; a ``weakref.finalize`` safety net reaps
abandoned builders.

Observability crosses the pool boundary: when the batch's profiler or
tracer is live, each work item carries a picklable
:class:`~repro.obs.profiler.ProfileCapsule`; the worker activates
fresh hooks, runs the build against them and ships the raw profile
tree and span records back with the outcome. The parent grafts each
payload under the request's label — tagged with the worker process
name — so a pooled sweep produces one coherent profile and one merged
trace instead of per-fork blind spots.
"""

from __future__ import annotations

import multiprocessing
import threading
import time
import weakref
from concurrent.futures import BrokenExecutor, ProcessPoolExecutor
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.strategy import ImplementationStrategy
from repro.errors import FlowError
from repro.flow.cache import FlowCache, flow_cache_key
from repro.flow.dpr_flow import DprFlow, FlowResult
from repro.obs import events as ev
from repro.obs.context import bind, current_context, unbind
from repro.obs.events import NULL_EVENTS
from repro.obs.export import merge_span_records, span_records
from repro.obs.logconfig import get_logger
from repro.obs.metrics import NULL_METRICS
from repro.obs.profiler import NULL_PROFILER, ProfileCapsule
from repro.obs.tracer import NULL_TRACER, Tracer
from repro.soc.config import SocConfig

logger = get_logger("flow.batch")


@dataclass(frozen=True)
class BuildRequest:
    """One build the batch should run."""

    config: SocConfig
    strategy_override: Optional[ImplementationStrategy] = None
    semi_tau: int = 2

    @property
    def label(self) -> str:
        """``soc/strategy`` display name (``auto`` = size-driven)."""
        strategy = (
            "auto" if self.strategy_override is None else self.strategy_override.value
        )
        return f"{self.config.name}/{strategy}"


@dataclass(frozen=True)
class BuildError:
    """A captured per-request failure (picklable, pool-safe)."""

    kind: str
    message: str

    def __str__(self) -> str:
        return f"{self.kind}: {self.message}"


@dataclass
class BuildOutcome:
    """What happened to one request."""

    request: BuildRequest
    result: Optional[FlowResult]
    error: Optional[BuildError]
    cached: bool
    elapsed_s: float

    @property
    def ok(self) -> bool:
        """True when the build produced a result."""
        return self.result is not None

    def unwrap(self) -> FlowResult:
        """The result, or a :class:`FlowError` carrying the capture."""
        if self.result is None:
            raise FlowError(f"build {self.request.label} failed: {self.error}")
        return self.result


def _execute(
    flow: DprFlow,
    request: BuildRequest,
    capsule: Optional[ProfileCapsule] = None,
    checkpoint_dir=None,
    resume: bool = False,
) -> Tuple[Optional[FlowResult], Optional[BuildError], float, Optional[Dict]]:
    """Run one build, capturing any failure.

    Returns ``(result, error, seconds, obs)``. ``obs`` is the worker's
    observability payload when the capsule activated any hook — the raw
    profile tree, the recorded span dicts and the worker process name
    the parent tags the merge with — or None when observability is off.
    Flow frames balance on failure too, so the payload always exports.

    The capsule's request context (if any) is re-activated around the
    build, so worker-side spans, profile leaves and log records carry
    the originating request's ID even across the process boundary.
    ``checkpoint_dir``/``resume`` pass through to :meth:`DprFlow.build`
    — the service daemon's crash-safety path (checkpoints are written
    in the worker process, so a daemon SIGKILL loses at most the stage
    in flight).
    """
    profiler = capsule.activate() if capsule is not None else NULL_PROFILER
    tracer = (
        Tracer(time_unit="min")
        if capsule is not None and capsule.trace
        else NULL_TRACER
    )
    token = bind(capsule.context) if capsule is not None else None
    start = time.perf_counter()
    try:
        result = flow.build(
            request.config,
            strategy_override=request.strategy_override,
            semi_tau=request.semi_tau,
            tracer=tracer,
            profiler=profiler,
            checkpoint_dir=checkpoint_dir,
            resume=resume,
        )
        error = None
    except Exception as exc:  # noqa: BLE001 - the capture is the point
        result = None
        error = BuildError(kind=type(exc).__name__, message=str(exc))
    finally:
        unbind(token)
    elapsed = time.perf_counter() - start
    obs: Optional[Dict] = None
    if profiler.enabled or tracer.enabled:
        obs = {
            "worker": multiprocessing.current_process().name,
            "profile": profiler.payload() if profiler.enabled else None,
            "spans": span_records(tracer) if tracer.enabled else None,
        }
    return result, error, elapsed, obs


def _pool_execute(payload: Tuple[DprFlow, BuildRequest, Optional[ProfileCapsule]]):
    """Module-level pool entry point (must be picklable by reference)."""
    return _execute(*payload)


def _pool_context():
    """Prefer ``fork`` (cheap, inherits warm imports) where available."""
    if "fork" in multiprocessing.get_all_start_methods():
        return multiprocessing.get_context("fork")
    return None


#: Start-method context resolved once at import — the answer never
#: changes within a process, so per-batch re-resolution is pure waste.
_POOL_CONTEXT = _pool_context()


def _reap_pool(pool: ProcessPoolExecutor) -> None:
    """Finalizer for abandoned builders: drop workers without blocking."""
    pool.shutdown(wait=False, cancel_futures=True)


def cached_build(
    flow: DprFlow,
    cache: Optional[FlowCache],
    config: SocConfig,
    strategy_override: Optional[ImplementationStrategy] = None,
    semi_tau: int = 2,
    tracer=NULL_TRACER,
    events=NULL_EVENTS,
    profiler=NULL_PROFILER,
    registry=NULL_METRICS,
    checkpoint_dir=None,
    resume: bool = False,
) -> Tuple[FlowResult, bool]:
    """One build through the cache; returns (result, was_cached).

    On a hit the flow's trace and profile projections are replayed onto
    ``tracer``/``profiler``, so a cached build observes identically to
    a fresh one (modelled time and call paths; the replay costs near
    zero host time, which is the point of the cache). ``events``
    receives the hit/miss decision plus the flow's stage events for
    fresh builds. ``checkpoint_dir``/``resume`` pass through to
    :meth:`DprFlow.build` on misses — a cache hit supersedes any
    checkpoint (both are keyed by the same content digest).
    """
    if cache is None:
        return flow.build(
            config, strategy_override=strategy_override, semi_tau=semi_tau,
            tracer=tracer, events=events, profiler=profiler, registry=registry,
            checkpoint_dir=checkpoint_dir, resume=resume,
        ), False
    key = flow_cache_key(flow, config, strategy_override, semi_tau)
    result = cache.get(key)
    if result is not None:
        events.emit(ev.CACHE_HIT, source=config.name, key=key)
        if tracer.enabled:
            flow.record_trace(result, tracer)
        if profiler.enabled:
            flow.record_profile(result, profiler)
        return result, True
    events.emit(ev.CACHE_MISS, source=config.name, key=key)
    result = flow.build(
        config, strategy_override=strategy_override, semi_tau=semi_tau, tracer=tracer,
        events=events, profiler=profiler, registry=registry,
        checkpoint_dir=checkpoint_dir, resume=resume,
    )
    cache.put(key, result)
    return result, False


class BatchBuilder:
    """Fans many build requests out over cache + process pool."""

    def __init__(
        self,
        flow: Optional[DprFlow] = None,
        cache: Optional[FlowCache] = None,
        jobs: int = 1,
        metrics=NULL_METRICS,
        events=NULL_EVENTS,
        tracer=NULL_TRACER,
        profiler=NULL_PROFILER,
    ) -> None:
        if jobs <= 0:
            raise FlowError(f"batch needs at least one job slot, got {jobs}")
        self.flow = flow or DprFlow()
        self.cache = cache
        self.jobs = jobs
        self.events = events
        self.tracer = tracer
        self.profiler = profiler
        self._requests_counter = metrics.counter(
            "flow_batch_requests_total", "batch build requests by status"
        )
        self._build_seconds = metrics.histogram(
            "flow_batch_build_seconds", "wall seconds per executed build"
        )
        # Warm worker pool: created lazily on the first parallel batch,
        # reused by every later one until close(). The lock makes the
        # lazy creation safe under the service supervisor's concurrent
        # worker threads.
        self._pool: Optional[ProcessPoolExecutor] = None
        self._pool_finalizer = None
        self._pool_lock = threading.Lock()

    # ------------------------------------------------------------------
    # warm pool lifecycle
    # ------------------------------------------------------------------
    def _ensure_pool(self) -> ProcessPoolExecutor:
        """The persistent worker pool, created on first parallel use."""
        with self._pool_lock:
            if self._pool is None:
                logger.info("starting warm build pool (%d workers)", self.jobs)
                self._pool = ProcessPoolExecutor(
                    max_workers=self.jobs, mp_context=_POOL_CONTEXT
                )
                self._pool_finalizer = weakref.finalize(self, _reap_pool, self._pool)
            return self._pool

    @property
    def pool_active(self) -> bool:
        """True while the warm worker pool is up."""
        return self._pool is not None

    def close(self) -> None:
        """Shut the warm pool down (idempotent; builder stays usable —
        the next parallel batch simply starts a fresh pool)."""
        with self._pool_lock:
            pool, self._pool = self._pool, None
            if pool is None:
                return
            if self._pool_finalizer is not None:
                self._pool_finalizer.detach()
                self._pool_finalizer = None
        pool.shutdown(wait=True)

    def __enter__(self) -> "BatchBuilder":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------
    def build_many(self, requests: Sequence[BuildRequest]) -> List[BuildOutcome]:
        """Build every request; outcomes come back in input order.

        Cached requests never reach the pool; a request whose build
        raises is reported as a per-entry :class:`BuildError` while the
        rest of the batch completes normally. With a live profiler the
        whole batch runs under a ``build_many`` frame: cache hits
        replay the flow's profile projection, executed builds come
        back with worker-side trees merged in deterministic request
        order under each request's label.
        """
        if not self.profiler.enabled:
            return self._build_many(requests)
        self.profiler.begin("build_many")
        try:
            return self._build_many(requests)
        finally:
            self.profiler.end()

    def _build_many(self, requests: Sequence[BuildRequest]) -> List[BuildOutcome]:
        requests = list(requests)
        outcomes: List[Optional[BuildOutcome]] = [None] * len(requests)
        keys: Dict[int, str] = {}
        pending: List[int] = []

        for index, request in enumerate(requests):
            if self.cache is not None:
                key = flow_cache_key(
                    self.flow,
                    request.config,
                    request.strategy_override,
                    request.semi_tau,
                )
                keys[index] = key
                start = time.perf_counter()
                result = self.cache.get(key)
                if result is not None:
                    outcomes[index] = BuildOutcome(
                        request=request,
                        result=result,
                        error=None,
                        cached=True,
                        elapsed_s=time.perf_counter() - start,
                    )
                    self._requests_counter.inc(status="cache_hit")
                    self.events.emit(ev.CACHE_HIT, source=request.label, key=key)
                    if self.profiler.enabled:
                        # Replay the cached build's profile projection
                        # under the same label path a fresh build gets.
                        self.profiler.begin(request.label)
                        try:
                            self.flow.record_profile(result, self.profiler)
                        finally:
                            self.profiler.end()
                    if self.tracer.enabled:
                        self.flow.record_trace(result, self.tracer)
                    continue
                self.events.emit(ev.CACHE_MISS, source=request.label, key=key)
            pending.append(index)

        if pending:
            executed = self._execute_pending(requests, pending)
            # Merge in pending (= input) order, not completion order, so
            # the merged tree is deterministic across pool schedules.
            for index in pending:
                result, error, elapsed, obs = executed[index]
                outcomes[index] = BuildOutcome(
                    request=requests[index],
                    result=result,
                    error=error,
                    cached=False,
                    elapsed_s=elapsed,
                )
                self._build_seconds.observe(elapsed)
                if obs is not None:
                    self._merge_observability(requests[index].label, obs)
                if error is None:
                    self._requests_counter.inc(status="built")
                    if self.cache is not None and result is not None:
                        self.cache.put(keys[index], result)
                else:
                    self._requests_counter.inc(status="error")
                    logger.warning(
                        "build %s failed: %s", requests[index].label, error
                    )

        done = [outcome for outcome in outcomes if outcome is not None]
        assert len(done) == len(requests)
        return done

    # ------------------------------------------------------------------
    def build_one(
        self,
        request: BuildRequest,
        checkpoint_dir=None,
        resume: bool = False,
    ) -> BuildOutcome:
        """One request through cache + warm pool; thread-safe.

        The service daemon's execution path: supervisor worker threads
        each push their job through here concurrently, sharing the one
        warm ``ProcessPoolExecutor`` (``pool.submit`` is thread-safe)
        and the one :class:`FlowCache`. ``checkpoint_dir`` makes the
        build stage-checkpointed; with ``resume`` a previously killed
        build restores its completed-stage prefix — same content
        digest, byte-identical result.

        With ``jobs=1`` the build runs in the calling thread (no pool),
        and a broken pool degrades to in-thread execution instead of
        failing the job — the daemon must outlive its workers.
        """
        if self.cache is not None:
            key = flow_cache_key(
                self.flow,
                request.config,
                request.strategy_override,
                request.semi_tau,
            )
            start = time.perf_counter()
            result = self.cache.get(key)
            if result is not None:
                self._requests_counter.inc(status="cache_hit")
                self.events.emit(ev.CACHE_HIT, source=request.label, key=key)
                return BuildOutcome(
                    request=request,
                    result=result,
                    error=None,
                    cached=True,
                    elapsed_s=time.perf_counter() - start,
                )
            self.events.emit(ev.CACHE_MISS, source=request.label, key=key)

        payload = (
            self.flow,
            request,
            self._capsule(request),
            checkpoint_dir,
            resume,
        )
        executed = None
        if self.jobs > 1:
            try:
                executed = self._ensure_pool().submit(_pool_execute, payload).result()
            except (BrokenExecutor, RuntimeError) as error:
                logger.warning(
                    "warm pool failed for %s (%s); running in-thread",
                    request.label,
                    error,
                )
                self.close()
        if executed is None:
            executed = _execute(*payload)

        result, error, elapsed, obs = executed
        self._build_seconds.observe(elapsed)
        if obs is not None:
            self._merge_observability(request.label, obs)
        if error is None:
            self._requests_counter.inc(status="built")
            if self.cache is not None and result is not None:
                self.cache.put(key, result)
        else:
            self._requests_counter.inc(status="error")
            logger.warning("build %s failed: %s", request.label, error)
        return BuildOutcome(
            request=request,
            result=result,
            error=error,
            cached=False,
            elapsed_s=elapsed,
        )

    # ------------------------------------------------------------------
    def _capsule(self, request: BuildRequest) -> Optional[ProfileCapsule]:
        """The observability context one work item carries, or None.

        The batch's active request context rides along too, so worker
        processes re-activate the same ``request_id`` the parent verb
        minted — a context alone (no profiler/tracer) still yields a
        capsule, because worker-side log attribution needs it.
        """
        profile = self.profiler.enabled
        trace = self.tracer.enabled
        context = current_context()
        if not (profile or trace) and context is None:
            return None
        return ProfileCapsule(
            path=(request.label,), profile=profile, trace=trace, context=context
        )

    def _merge_observability(self, label: str, obs: Dict) -> None:
        """Graft one worker payload back under the request's label."""
        worker = obs.get("worker")
        if self.profiler.enabled and obs.get("profile"):
            self.profiler.merge_tree(obs["profile"], at=(label,), tag=worker)
        if self.tracer.enabled and obs.get("spans"):
            merge_span_records(self.tracer, obs["spans"], worker=worker)

    def _execute_pending(
        self, requests: Sequence[BuildRequest], pending: Sequence[int]
    ) -> Dict[int, Tuple[Optional[FlowResult], Optional[BuildError], float, Optional[Dict]]]:
        if self.jobs == 1 or len(pending) == 1:
            return {
                index: _execute(
                    self.flow, requests[index], self._capsule(requests[index])
                )
                for index in pending
            }
        logger.info(
            "dispatching %d builds over %d warm worker processes",
            len(pending),
            min(self.jobs, len(pending)),
        )
        executed: Dict[
            int,
            Tuple[Optional[FlowResult], Optional[BuildError], float, Optional[Dict]],
        ] = {}
        pool = self._ensure_pool()
        broken = False
        futures = {}
        for index in pending:
            try:
                futures[index] = pool.submit(
                    _pool_execute,
                    (self.flow, requests[index], self._capsule(requests[index])),
                )
            except Exception as error:  # pool already broken/shut down
                broken = broken or isinstance(error, (BrokenExecutor, RuntimeError))
                executed[index] = (
                    None,
                    BuildError(kind=type(error).__name__, message=str(error)),
                    0.0,
                    None,
                )
        for index, future in futures.items():
            try:
                executed[index] = future.result()
            except Exception as error:  # pool/pickling infrastructure failure
                broken = broken or isinstance(error, BrokenExecutor)
                executed[index] = (
                    None,
                    BuildError(kind=type(error).__name__, message=str(error)),
                    0.0,
                    None,
                )
        if broken:
            # A dead pool never recovers; drop it so the next batch
            # starts fresh instead of failing forever.
            self.close()
        return executed
