"""Stage-level checkpointing of ``DprFlow.build()``.

A killed build — machine reboot, scheduler preemption, ctrl-C — should
not lose hours of modelled CAD time. The checkpointer persists each
completed flow stage (and, inside the long stages, each completed tool
job) to a directory:

* ``manifest.json`` — the build key (the same content digest the
  :class:`~repro.flow.cache.FlowCache` uses), schema version, and one
  record per completed stage: payload file, wall minutes, detail line.
* ``<stage>.pkl`` — the stage's pickled outputs (netlists, floorplan,
  bitstreams...), exactly what downstream stages consume.
* ``jobs/<job>.pkl`` — sub-stage granularity: individual OoC synthesis
  runs and implementation runs, so a build killed *inside* the
  synthesis or implementation stage resumes mid-stage instead of
  repeating every sibling job.

Resume is content-keyed: ``repro build --resume`` only restores stages
whose manifest key matches the current (config, model, options,
request, fault/retry policy) digest — a checkpoint from a different
build is silently ignored rather than trusted. Writes are atomic
(tmp-then-rename), and the manifest is rewritten after every stage so
the directory is always consistent with *some* prefix of the build.
"""

from __future__ import annotations

import json
import os
import pickle
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Optional, Tuple, Union

from repro.errors import FlowError
from repro.obs.logconfig import get_logger

logger = get_logger("flow.checkpoint")

#: Bump when the manifest layout or the payload schema changes; stale
#: checkpoints then stop matching instead of being mis-read.
CHECKPOINT_SCHEMA_VERSION = 1

MANIFEST_NAME = "manifest.json"


@dataclass(frozen=True)
class StageRecord:
    """One completed stage as recorded in the manifest."""

    stage: str
    payload_file: str
    wall_minutes: float
    detail: str


class FlowCheckpointer:
    """Reads and writes one build's checkpoint directory.

    ``key`` is the build's content digest; a directory holding a
    different key is treated as empty (and overwritten as the new
    build progresses). All writes are atomic and crash-consistent:
    payloads land before the manifest references them.
    """

    def __init__(self, directory: Union[str, Path], key: str) -> None:
        if not key:
            raise FlowError("checkpointer needs a non-empty build key")
        self.directory = Path(directory)
        self.key = key
        self._stages: Dict[str, StageRecord] = {}
        self._load_manifest()

    # ------------------------------------------------------------------
    # manifest
    # ------------------------------------------------------------------
    def _manifest_path(self) -> Path:
        return self.directory / MANIFEST_NAME

    def _load_manifest(self) -> None:
        try:
            raw = json.loads(self._manifest_path().read_text())
        except (OSError, ValueError):
            return
        if (
            raw.get("version") != CHECKPOINT_SCHEMA_VERSION
            or raw.get("key") != self.key
        ):
            logger.info(
                "checkpoint at %s belongs to a different build; ignoring",
                self.directory,
            )
            return
        for entry in raw.get("stages", []):
            record = StageRecord(
                stage=entry["stage"],
                payload_file=entry["file"],
                wall_minutes=float(entry["wall_minutes"]),
                detail=entry["detail"],
            )
            self._stages[record.stage] = record

    def _write_manifest(self) -> None:
        payload = {
            "version": CHECKPOINT_SCHEMA_VERSION,
            "key": self.key,
            "stages": [
                {
                    "stage": record.stage,
                    "file": record.payload_file,
                    "wall_minutes": record.wall_minutes,
                    "detail": record.detail,
                }
                for record in self._stages.values()
            ],
        }
        self._atomic_write(
            self._manifest_path(), json.dumps(payload, indent=2).encode("utf-8")
        )

    @staticmethod
    def _atomic_write(path: Path, data: bytes) -> None:
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp = path.with_suffix(path.suffix + ".tmp")
        tmp.write_bytes(data)
        os.replace(tmp, path)

    # ------------------------------------------------------------------
    # stages
    # ------------------------------------------------------------------
    def completed_stages(self) -> Tuple[str, ...]:
        """Stages recorded for this build key, manifest order."""
        return tuple(self._stages)

    def has_stage(self, stage: str) -> bool:
        """True when ``stage`` completed under this key."""
        return stage in self._stages

    def save_stage(
        self, stage: str, payload: object, wall_minutes: float, detail: str
    ) -> None:
        """Persist one completed stage (payload first, then manifest)."""
        file_name = f"{stage}.pkl"
        self._atomic_write(
            self.directory / file_name,
            pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL),
        )
        self._stages[stage] = StageRecord(
            stage=stage,
            payload_file=file_name,
            wall_minutes=wall_minutes,
            detail=detail,
        )
        self._write_manifest()
        logger.debug("checkpointed stage %s (%s)", stage, detail)

    def load_stage(self, stage: str) -> Tuple[object, float, str]:
        """(payload, wall_minutes, detail) of a completed stage.

        A referenced-but-unreadable payload raises ``FlowError`` — a
        torn checkpoint should fail loudly, not resume wrongly.
        """
        try:
            record = self._stages[stage]
        except KeyError:
            raise FlowError(f"no checkpointed stage {stage!r}") from None
        path = self.directory / record.payload_file
        try:
            payload = pickle.loads(path.read_bytes())
        except (OSError, pickle.UnpicklingError, EOFError) as error:
            raise FlowError(
                f"checkpointed stage {stage!r} is unreadable ({error}); "
                "delete the checkpoint directory and rebuild"
            ) from error
        return payload, record.wall_minutes, record.detail

    # ------------------------------------------------------------------
    # sub-stage jobs (OoC syntheses, implementation runs)
    # ------------------------------------------------------------------
    def _job_path(self, job_name: str) -> Path:
        return self.directory / "jobs" / f"{job_name}.pkl"

    def save_job(self, job_name: str, payload: object) -> None:
        """Persist one completed tool job inside a running stage."""
        self._atomic_write(
            self._job_path(job_name),
            pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL),
        )

    def load_job(self, job_name: str) -> Optional[object]:
        """The job's payload, or None when absent/unreadable.

        Job payloads are an optimization (skip re-running a completed
        sibling); a torn job file falls back to recomputation, unlike a
        torn stage payload.
        """
        path = self._job_path(job_name)
        try:
            return pickle.loads(path.read_bytes())
        except (OSError, pickle.UnpicklingError, EOFError):
            return None

    # ------------------------------------------------------------------
    def clear(self) -> None:
        """Forget and delete everything recorded for this build."""
        self._stages.clear()
        if not self.directory.is_dir():
            return
        for path in self.directory.glob("*.pkl"):
            path.unlink(missing_ok=True)
        jobs = self.directory / "jobs"
        if jobs.is_dir():
            for path in jobs.glob("*.pkl"):
                path.unlink(missing_ok=True)
        self._manifest_path().unlink(missing_ok=True)
