"""Turning a strategy decision into concrete implementation runs.

The pre-implementation stage (Fig. 1) decides the optimal level of
parallelism; this module materializes that decision into the list of
tool runs the flow launches:

* serial          — one full-design run;
* fully-parallel  — one static pre-route, then N in-context runs (one
  reconfigurable tile each), all dependent on the static run;
* semi-parallel   — one static pre-route, then τ in-context runs over
  LPT-balanced groups of tiles.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import AbstractSet, FrozenSet, List, Tuple

from repro.core.strategy import ImplementationStrategy, StrategyDecision
from repro.errors import FlowError
from repro.flow.grouping import balanced_groups
from repro.soc.partition import DesignPartition, ReconfigurablePartition


class RunKind(enum.Enum):
    """Kinds of implementation runs the plan can contain."""

    FULL_SERIAL = "full_serial"
    STATIC = "static"
    IN_CONTEXT = "in_context"


@dataclass(frozen=True)
class ImplementationRun:
    """One planned tool run."""

    name: str
    kind: RunKind
    rp_names: Tuple[str, ...]
    depends_on: Tuple[str, ...] = ()

    @property
    def is_parallelizable(self) -> bool:
        """True for runs that execute concurrently with their siblings."""
        return self.kind is RunKind.IN_CONTEXT


@dataclass(frozen=True)
class ImplementationPlan:
    """The complete set of runs for one strategy."""

    strategy: ImplementationStrategy
    tau: int
    runs: Tuple[ImplementationRun, ...]

    @property
    def static_run(self) -> ImplementationRun:
        """The static pre-route run (parallel strategies only)."""
        for run in self.runs:
            if run.kind is RunKind.STATIC:
                return run
        raise FlowError(f"{self.strategy.value} plan has no static run")

    @property
    def context_runs(self) -> List[ImplementationRun]:
        """The in-context runs in plan order."""
        return [run for run in self.runs if run.kind is RunKind.IN_CONTEXT]


def plan_implementation(
    partition: DesignPartition,
    decision: StrategyDecision,
    exclude: AbstractSet[str] = frozenset(),
) -> ImplementationPlan:
    """Materialize ``decision`` into runs over ``partition``'s RPs.

    ``exclude`` names RPs to plan around — the fault-tolerant flow
    passes the tiles whose synthesis failed permanently, so the
    implementation runs (and therefore the makespan) are computed over
    the surviving partitions only; the dark tiles get blanking
    bitstreams outside the plan.
    """
    excluded: FrozenSet[str] = frozenset(exclude)
    unknown = excluded - {rp.name for rp in partition.rps}
    if unknown:
        raise FlowError(f"cannot exclude unknown RPs: {sorted(unknown)}")
    rps = [rp for rp in partition.rps if rp.name not in excluded]
    if not rps:
        if excluded:
            raise FlowError(
                "every reconfigurable partition is excluded; nothing to implement"
            )
        raise FlowError("cannot plan implementation of a design without RPs")
    strategy = decision.strategy

    if strategy is ImplementationStrategy.SERIAL:
        run = ImplementationRun(
            name="impl_serial",
            kind=RunKind.FULL_SERIAL,
            rp_names=tuple(rp.name for rp in rps),
        )
        return ImplementationPlan(strategy=strategy, tau=1, runs=(run,))

    static_run = ImplementationRun(name="impl_static", kind=RunKind.STATIC, rp_names=())
    if strategy is ImplementationStrategy.FULLY_PARALLEL:
        groups: List[List[ReconfigurablePartition]] = [[rp] for rp in rps]
        tau = len(rps)
    else:
        tau = max(1, min(decision.tau, len(rps)))
        groups = balanced_groups(rps, tau, weight=lambda rp: rp.synthesis_luts)
        if len(groups) < 2 and len(rps) >= 2:
            raise FlowError(
                "semi-parallel plan degenerated to one group; use serial instead"
            )
    context_runs = [
        ImplementationRun(
            name=f"impl_ctx_{index}",
            kind=RunKind.IN_CONTEXT,
            rp_names=tuple(rp.name for rp in group),
            depends_on=(static_run.name,),
        )
        for index, group in enumerate(groups)
    ]
    return ImplementationPlan(
        strategy=strategy, tau=tau, runs=(static_run, *context_runs)
    )
