"""Content-addressed caching of :class:`~repro.flow.dpr_flow.FlowResult`.

The table benches and the characterization sweeps rebuild the same SoC
configurations dozens of times per run; a ``DprFlow.build()`` is pure
(same config + model + options -> same result), so its output can be
memoized under a stable digest of everything the flow reads:

* the full SoC description — tile kinds, names, CPU cores, and the
  complete resource vectors of every accelerator mode (``to_dict()``
  alone is not enough: two synthetic characterization designs can share
  mode *names* while differing in LUTs);
* the runtime model — every curve's ``(c, a, p)`` plus the
  reconfigurable-LUT weight;
* the flow options — instance cap, bitstream compression, floorplan
  utilization target;
* the request — strategy override and ``semi_tau``.

Keying is conservative: a request that overrides the strategy to what
the size-driven algorithm would have chosen anyway digests differently
from the no-override request, so a miss can never alias two requests
that *might* diverge.

The cache itself is two-tiered. The in-memory tier is a bounded LRU of
*pickled* results — ``get`` deserializes a private copy per call, so a
caller mutating a served result can never poison later hits. The
optional on-disk tier (``~/.cache/repro-flow/`` or a caller-supplied
directory) persists entries across processes; disk hits are promoted
into memory. Hit/miss/eviction counters land in an
:class:`~repro.obs.metrics.MetricsRegistry` when one is supplied.
"""

from __future__ import annotations

import hashlib
import itertools
import json
import os
import pickle
import threading
from collections import OrderedDict
from pathlib import Path
from typing import TYPE_CHECKING, Dict, Optional, Union

from repro.errors import FlowError
from repro.obs.logconfig import get_logger
from repro.obs.metrics import NULL_METRICS
from repro.soc.config import SocConfig
from repro.soc.tiles import ReconfigurableTile, TileKind
from repro.vivado.runtime_model import RuntimeModel

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.strategy import ImplementationStrategy
    from repro.flow.dpr_flow import DprFlow, FlowResult

logger = get_logger("flow.cache")

#: Bump when the digest layout or the pickled payload schema changes;
#: old on-disk entries then simply stop matching.
CACHE_SCHEMA_VERSION = 2


def default_disk_dir() -> Path:
    """``$XDG_CACHE_HOME/repro-flow`` (``~/.cache/repro-flow`` fallback)."""
    base = os.environ.get("XDG_CACHE_HOME", "")
    root = Path(base) if base else Path("~/.cache").expanduser()
    return root / "repro-flow"


# ----------------------------------------------------------------------
# key derivation
# ----------------------------------------------------------------------
def _ip_fingerprint(ip) -> Dict:
    resources = ip.resources
    return {
        "name": ip.name,
        "hls_flow": ip.hls_flow.value,
        "resources": [resources.lut, resources.ff, resources.bram, resources.dsp],
        "throughput_factor": ip.throughput_factor,
        "dynamic_power_w": ip.dynamic_power_w,
    }


def _tile_fingerprint(tile) -> Dict:
    entry: Dict = {"kind": tile.kind.value, "name": tile.name}
    if tile.kind is TileKind.CPU:
        entry["cpu_core"] = tile.cpu_core.value
    if tile.accelerator is not None:
        entry["accelerator"] = _ip_fingerprint(tile.accelerator)
    if isinstance(tile, ReconfigurableTile):
        entry["modes"] = [_ip_fingerprint(ip) for ip in tile.modes]
        entry["host_cpu"] = tile.host_cpu
        entry["hosted_cpu_core"] = tile.hosted_cpu_core.value
    return entry


def config_fingerprint(config: SocConfig) -> Dict:
    """Full-fidelity JSON form of a config (unlike ``to_dict``, carries
    every accelerator's resource vector, not just its catalog name)."""
    return {
        "name": config.name,
        "board": config.board,
        "rows": config.rows,
        "cols": config.cols,
        "tiles": [_tile_fingerprint(tile) for tile in config.tiles],
    }


def model_fingerprint(model: RuntimeModel) -> Dict:
    """The runtime model's curves and weights, JSON-canonical."""
    return {
        "curves": {
            kind.value: [curve.c, curve.a, curve.p]
            for kind, curve in sorted(model.curves.items(), key=lambda kv: kv[0].value)
        },
        "reconf_weight": model.reconf_weight,
    }


def flow_cache_key(
    flow: "DprFlow",
    config: SocConfig,
    strategy_override: Optional["ImplementationStrategy"] = None,
    semi_tau: int = 2,
) -> str:
    """SHA-256 digest of everything a ``flow.build()`` call reads."""
    payload = {
        "version": CACHE_SCHEMA_VERSION,
        "config": config_fingerprint(config),
        "model": model_fingerprint(flow.model),
        "options": {
            "max_instances": flow.max_instances,
            "compress_bitstreams": flow.compress_bitstreams,
            "floorplan_utilization": flow.floorplan_utilization,
        },
        # Fault model and retry policy change retry timelines, burned
        # minutes, and possibly which tiles survive — a degraded build
        # must never alias the clean one.
        "faults": flow.faults.fingerprint(),
        "retry": {
            "max_attempts": flow.retry.max_attempts,
            "backoff_minutes": flow.retry.backoff_minutes,
            "factor": flow.retry.factor,
            "cap_minutes": flow.retry.cap_minutes,
            "jitter": flow.retry.jitter,
        },
        "request": {
            "strategy_override": (
                None if strategy_override is None else strategy_override.value
            ),
            "semi_tau": semi_tau,
        },
    }
    canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


# ----------------------------------------------------------------------
# the cache
# ----------------------------------------------------------------------
class FlowCache:
    """Two-tier (memory LRU + optional disk) store of flow results.

    ``max_entries`` bounds the memory tier; ``disk_dir`` enables the
    persistent tier (``default_disk_dir()`` when passed ``True``).
    ``metrics`` receives the counters::

        flow_cache_requests_total
        flow_cache_hits_total{tier=memory|disk}
        flow_cache_misses_total
        flow_cache_evictions_total
        flow_cache_disk_errors_total
    """

    def __init__(
        self,
        max_entries: int = 256,
        disk_dir: Union[None, bool, str, Path] = None,
        metrics=NULL_METRICS,
    ) -> None:
        if max_entries <= 0:
            raise FlowError(f"cache needs at least one entry, got {max_entries}")
        self.max_entries = max_entries
        if disk_dir is True:
            disk_dir = default_disk_dir()
        elif disk_dir is False:
            disk_dir = None
        self.disk_dir: Optional[Path] = Path(disk_dir) if disk_dir else None
        self._memory: "OrderedDict[str, bytes]" = OrderedDict()
        # The service daemon's worker threads share one cache; the lock
        # keeps the LRU bookkeeping (move_to_end/popitem) and the stat
        # mirrors coherent under concurrent get/put. Disk-tier tmp
        # files are named per writer from this counter (itertools.count
        # is GIL-atomic), so two writers never share a tmp path.
        self._lock = threading.RLock()
        self._tmp_ids = itertools.count()
        self._requests = metrics.counter(
            "flow_cache_requests_total", "flow-cache lookups"
        )
        self._hits = metrics.counter(
            "flow_cache_hits_total", "flow-cache hits per tier"
        )
        self._misses = metrics.counter(
            "flow_cache_misses_total", "flow-cache misses"
        )
        self._evictions = metrics.counter(
            "flow_cache_evictions_total", "memory-tier LRU evictions"
        )
        self._disk_errors = metrics.counter(
            "flow_cache_disk_errors_total", "unreadable/unwritable disk entries"
        )
        # Plain integers mirror the counters so ``stats()`` works with
        # the default NULL_METRICS registry too.
        self._stat = {
            "requests": 0,
            "hits_memory": 0,
            "hits_disk": 0,
            "misses": 0,
            "evictions": 0,
            "disk_errors": 0,
        }

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        with self._lock:
            return len(self._memory)

    def stats(self) -> Dict[str, int]:
        """Lifetime counters plus the current memory-tier size."""
        with self._lock:
            return {**self._stat, "entries": len(self._memory)}

    def clear(self, disk: bool = False) -> None:
        """Drop the memory tier (and the disk tier when ``disk``)."""
        with self._lock:
            self._memory.clear()
        if disk and self.disk_dir is not None and self.disk_dir.is_dir():
            for entry in self.disk_dir.glob("*.pkl"):
                try:
                    entry.unlink()
                except OSError:
                    self._count_disk_error()

    # ------------------------------------------------------------------
    def get(self, key: str) -> Optional["FlowResult"]:
        """The cached result for ``key``, or None.

        Every hit deserializes a fresh copy, so callers own what they
        receive.
        """
        self._requests.inc()
        with self._lock:
            self._stat["requests"] += 1
            payload = self._memory.get(key)
            if payload is not None:
                self._memory.move_to_end(key)
                self._hits.inc(tier="memory")
                self._stat["hits_memory"] += 1
                return pickle.loads(payload)
        # Disk I/O happens outside the lock — only the promotion into
        # the memory tier re-enters it.
        payload = self._disk_read(key)
        if payload is not None:
            try:
                result = pickle.loads(payload)
            except Exception:
                self._count_disk_error()
                self._disk_evict(key)
            else:
                self._memory_store(key, payload)
                self._hits.inc(tier="disk")
                with self._lock:
                    self._stat["hits_disk"] += 1
                return result
        self._misses.inc()
        with self._lock:
            self._stat["misses"] += 1
        return None

    def put(self, key: str, result: "FlowResult") -> None:
        """Store ``result`` in both tiers."""
        payload = pickle.dumps(result, protocol=pickle.HIGHEST_PROTOCOL)
        self._memory_store(key, payload)
        self._disk_write(key, payload)

    # ------------------------------------------------------------------
    # memory tier
    # ------------------------------------------------------------------
    def _memory_store(self, key: str, payload: bytes) -> None:
        with self._lock:
            self._memory[key] = payload
            self._memory.move_to_end(key)
            while len(self._memory) > self.max_entries:
                evicted, _ = self._memory.popitem(last=False)
                self._evictions.inc()
                self._stat["evictions"] += 1
                logger.debug("evicted flow-cache entry %s", evicted[:12])

    # ------------------------------------------------------------------
    # disk tier
    # ------------------------------------------------------------------
    def _disk_path(self, key: str) -> Path:
        assert self.disk_dir is not None
        return self.disk_dir / f"{key}.pkl"

    def _count_disk_error(self) -> None:
        self._disk_errors.inc()
        with self._lock:
            self._stat["disk_errors"] += 1

    def _disk_read(self, key: str) -> Optional[bytes]:
        if self.disk_dir is None:
            return None
        path = self._disk_path(key)
        try:
            return path.read_bytes()
        except FileNotFoundError:
            return None
        except OSError:
            self._count_disk_error()
            return None

    def _disk_write(self, key: str, payload: bytes) -> None:
        """Publish one entry via a writer-unique tmp + atomic rename.

        Two concurrent writers of the same key (service worker threads,
        or two daemon processes sharing a disk dir) used to race on one
        shared ``<key>.tmp`` name: writer B could truncate the file
        while writer A's ``os.replace`` was in flight, publishing a
        torn entry. Naming the tmp per writer (pid + per-cache counter)
        makes each rename claim atomic and complete; both writers
        serialize the identical pickled payload for a given content
        digest, so whichever rename lands last is equally correct.
        """
        if self.disk_dir is None:
            return
        final = self._disk_path(key)
        tmp = final.with_name(
            f".{key}.{os.getpid()}.{next(self._tmp_ids)}.tmp"
        )
        try:
            self.disk_dir.mkdir(parents=True, exist_ok=True)
            tmp.write_bytes(payload)
            os.replace(tmp, final)
        except OSError:
            self._count_disk_error()
            try:
                tmp.unlink()
            except OSError:
                pass

    def _disk_evict(self, key: str) -> None:
        if self.disk_dir is None:
            return
        try:
            self._disk_path(key).unlink()
        except OSError:
            pass
