"""Column-organized FPGA device model.

Xilinx fabrics are organized as vertical columns of a single primitive
kind (CLB, BRAM, DSP, I/O, clocking), stacked into *clock regions*.
DPR floorplanning operates on this geometry: a pblock is a rectangle of
whole column segments, and the DFX rules (UG909) constrain which
columns it may contain and how it aligns to clock regions.

The model here keeps that structure while abstracting the per-family
details behind a handful of parameters (CLBs per clock region, LUTs per
CLB, ...). ``repro.fabric.parts`` instantiates the three boards the
paper targets.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.errors import FabricError
from repro.fabric.resources import ResourceKind, ResourceVector


class ColumnKind(enum.Enum):
    """Primitive kind hosted by a fabric column."""

    CLB = "clb"
    BRAM = "bram"
    DSP = "dsp"
    IO = "io"
    CLK = "clk"  # clocking/configuration column: illegal inside an RP

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


#: Column kinds that may not be enclosed by a reconfigurable pblock.
FORBIDDEN_IN_RP = frozenset({ColumnKind.CLK})


@dataclass(frozen=True)
class ClockRegion:
    """One clock region: a (row, col) cell of the region grid."""

    row: int
    col: int

    @property
    def name(self) -> str:
        """Xilinx-style region name, e.g. ``X1Y3``."""
        return f"X{self.col}Y{self.row}"


@dataclass(frozen=True)
class Column:
    """A full-height fabric column."""

    x: int
    kind: ColumnKind


class Device:
    """A rectangular fabric of columns split into clock regions.

    Parameters
    ----------
    name:
        Part name, e.g. ``"xc7vx485t"``.
    columns:
        Column kinds left to right. The same pattern spans every clock
        region row (true of real parts at this abstraction level).
    region_rows:
        Number of clock region rows.
    region_cols:
        Number of clock region columns. ``len(columns)`` must divide
        evenly into this many groups.
    segment_resources:
        Resources provided by *one column within one clock region*,
        keyed by column kind. Kinds absent from the mapping provide
        nothing (IO/CLK columns).
    """

    def __init__(
        self,
        name: str,
        columns: Sequence[ColumnKind],
        region_rows: int,
        region_cols: int,
        segment_resources: Dict[ColumnKind, ResourceVector],
    ) -> None:
        if region_rows <= 0 or region_cols <= 0:
            raise FabricError("device needs at least one clock region")
        if not columns:
            raise FabricError("device needs at least one column")
        if len(columns) % region_cols != 0:
            raise FabricError(
                f"{len(columns)} columns do not divide into {region_cols} region columns"
            )
        self.name = name
        self.columns: Tuple[Column, ...] = tuple(
            Column(x=i, kind=kind) for i, kind in enumerate(columns)
        )
        self.region_rows = region_rows
        self.region_cols = region_cols
        self._segment_resources = dict(segment_resources)
        # Per-resource column prefix sums: resource_prefix()[x][k] is
        # the per-region sum of ResourceKind k over columns [0, x).
        # Rectangle queries, capacity and the floorplanner's window
        # search all reduce to O(1) row differences on this matrix.
        kinds = list(ResourceKind)
        rows = {
            kind: np.array(
                [self._segment_resources.get(kind, ResourceVector.zero()).get(k) for k in kinds],
                dtype=np.int64,
            )
            for kind in ColumnKind
        }
        per_column = np.array([rows[c.kind] for c in self.columns], dtype=np.int64)
        self._prefix = np.vstack(
            [np.zeros((1, len(kinds)), dtype=np.int64), np.cumsum(per_column, axis=0)]
        )
        self._capacity = self._rect_vector(0, self.num_columns - 1, region_rows)

    # ------------------------------------------------------------------
    # geometry
    # ------------------------------------------------------------------
    @property
    def num_columns(self) -> int:
        """Total number of fabric columns."""
        return len(self.columns)

    @property
    def columns_per_region_col(self) -> int:
        """Number of fabric columns in one clock-region column."""
        return self.num_columns // self.region_cols

    def clock_regions(self) -> List[ClockRegion]:
        """All clock regions in row-major order."""
        return [
            ClockRegion(row=r, col=c)
            for r in range(self.region_rows)
            for c in range(self.region_cols)
        ]

    def region_col_of_column(self, x: int) -> int:
        """Clock-region column index containing fabric column ``x``."""
        self._check_column(x)
        return x // self.columns_per_region_col

    def column_kind(self, x: int) -> ColumnKind:
        """Kind of fabric column ``x``."""
        self._check_column(x)
        return self.columns[x].kind

    def _check_column(self, x: int) -> None:
        if not 0 <= x < self.num_columns:
            raise FabricError(f"column {x} out of range [0, {self.num_columns})")

    def _check_region_row(self, row: int) -> None:
        if not 0 <= row < self.region_rows:
            raise FabricError(f"region row {row} out of range [0, {self.region_rows})")

    # ------------------------------------------------------------------
    # resources
    # ------------------------------------------------------------------
    def segment_resources(self, kind: ColumnKind) -> ResourceVector:
        """Resources of one column of ``kind`` within one clock region."""
        return self._segment_resources.get(kind, ResourceVector.zero())

    def column_resources(self, x: int) -> ResourceVector:
        """Resources of full-height column ``x``."""
        return self.segment_resources(self.column_kind(x)) * self.region_rows

    def resource_prefix(self) -> np.ndarray:
        """The (num_columns + 1, len(ResourceKind)) prefix-sum matrix.

        Row ``x`` holds the per-region column sums over ``[0, x)`` in
        :class:`ResourceKind` declaration order. Treat as read-only —
        the floorplanner binary-searches directly on these columns.
        """
        return self._prefix

    def rect_resources(self, col_lo: int, col_hi: int, row_lo: int, row_hi: int) -> ResourceVector:
        """Resources inside the inclusive column/region-row rectangle."""
        self._check_column(col_lo)
        self._check_column(col_hi)
        self._check_region_row(row_lo)
        self._check_region_row(row_hi)
        if col_lo > col_hi or row_lo > row_hi:
            raise FabricError("rectangle bounds are inverted")
        return self._rect_vector(col_lo, col_hi, row_hi - row_lo + 1)

    def _rect_vector(self, col_lo: int, col_hi: int, height: int) -> ResourceVector:
        window = (self._prefix[col_hi + 1] - self._prefix[col_lo]) * height
        lut, ff, bram, dsp = (int(v) for v in window)
        return ResourceVector(lut=lut, ff=ff, bram=bram, dsp=dsp)

    def capacity(self) -> ResourceVector:
        """Total device resources."""
        return self._capacity

    # ------------------------------------------------------------------
    # misc
    # ------------------------------------------------------------------
    def forbidden_columns(self) -> List[int]:
        """Fabric columns that no reconfigurable pblock may contain."""
        return [c.x for c in self.columns if c.kind in FORBIDDEN_IN_RP]

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"Device({self.name!r}, {self.num_columns} cols, "
            f"{self.region_rows}x{self.region_cols} regions, {self._capacity})"
        )


def repeat_pattern(pattern: Sequence[ColumnKind], times: int) -> List[ColumnKind]:
    """Tile a column-kind pattern ``times`` times (layout helper)."""
    if times <= 0:
        raise FabricError(f"pattern repetition must be positive, got {times}")
    return list(pattern) * times
