"""Resource algebra: the four FPGA primitive kinds the flow reasons about.

The paper's size-driven model is expressed in LUTs, but floorplanning
must also satisfy FF/BRAM/DSP demands (FLORA does), so the whole
library carries a four-component :class:`ResourceVector`.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, Iterator, Mapping, Tuple

from repro.errors import ResourceError


class ResourceKind(enum.Enum):
    """The FPGA primitive kinds tracked by the platform."""

    LUT = "lut"
    FF = "ff"
    BRAM = "bram"  # counted in RAMB36-equivalents
    DSP = "dsp"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


@dataclass(frozen=True, order=False)
class ResourceVector:
    """An immutable (LUT, FF, BRAM, DSP) bundle with vector arithmetic.

    Comparison semantics follow containment, not lexicographic order:
    ``a.fits_in(b)`` means every component of ``a`` is <= the matching
    component of ``b``. Python's ``<=`` is therefore *not* defined, to
    avoid silently picking a total order that does not exist.
    """

    lut: int = 0
    ff: int = 0
    bram: int = 0
    dsp: int = 0

    def __post_init__(self) -> None:
        for kind in ResourceKind:
            value = getattr(self, kind.value)
            if not isinstance(value, int):
                raise TypeError(f"{kind.value} count must be int, got {type(value).__name__}")
            if value < 0:
                raise ResourceError(f"negative {kind.value} count: {value}")

    # ------------------------------------------------------------------
    # constructors
    # ------------------------------------------------------------------
    @classmethod
    def zero(cls) -> "ResourceVector":
        """The additive identity."""
        return cls()

    @classmethod
    def from_mapping(cls, mapping: Mapping[str, int]) -> "ResourceVector":
        """Build from a dict with any subset of lut/ff/bram/dsp keys."""
        known = {kind.value for kind in ResourceKind}
        unknown = set(mapping) - known
        if unknown:
            raise ResourceError(f"unknown resource kinds: {sorted(unknown)}")
        return cls(**{key: int(value) for key, value in mapping.items()})

    @classmethod
    def luts(cls, count: int) -> "ResourceVector":
        """A LUT-only vector; convenient for the paper's LUT-centric math."""
        return cls(lut=count)

    # ------------------------------------------------------------------
    # arithmetic
    # ------------------------------------------------------------------
    def __add__(self, other: "ResourceVector") -> "ResourceVector":
        if not isinstance(other, ResourceVector):
            return NotImplemented
        return ResourceVector(
            lut=self.lut + other.lut,
            ff=self.ff + other.ff,
            bram=self.bram + other.bram,
            dsp=self.dsp + other.dsp,
        )

    def __sub__(self, other: "ResourceVector") -> "ResourceVector":
        if not isinstance(other, ResourceVector):
            return NotImplemented
        return ResourceVector(
            lut=self.lut - other.lut,
            ff=self.ff - other.ff,
            bram=self.bram - other.bram,
            dsp=self.dsp - other.dsp,
        )

    def __mul__(self, factor: int) -> "ResourceVector":
        if not isinstance(factor, int):
            return NotImplemented
        return ResourceVector(
            lut=self.lut * factor,
            ff=self.ff * factor,
            bram=self.bram * factor,
            dsp=self.dsp * factor,
        )

    __rmul__ = __mul__

    def scaled(self, factor: float) -> "ResourceVector":
        """Scale by a float, rounding each component up (conservative)."""
        if factor < 0:
            raise ResourceError(f"negative scale factor: {factor}")
        import math

        return ResourceVector(
            lut=math.ceil(self.lut * factor),
            ff=math.ceil(self.ff * factor),
            bram=math.ceil(self.bram * factor),
            dsp=math.ceil(self.dsp * factor),
        )

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def get(self, kind: ResourceKind) -> int:
        """Component accessor by kind."""
        return int(getattr(self, kind.value))

    def fits_in(self, capacity: "ResourceVector") -> bool:
        """True if every component fits inside ``capacity``."""
        return all(self.get(kind) <= capacity.get(kind) for kind in ResourceKind)

    def dominates(self, other: "ResourceVector") -> bool:
        """True if every component is >= the matching one of ``other``."""
        return other.fits_in(self)

    def is_zero(self) -> bool:
        """True if all components are zero."""
        return all(self.get(kind) == 0 for kind in ResourceKind)

    def utilization(self, capacity: "ResourceVector") -> Dict[ResourceKind, float]:
        """Per-kind utilization ratio against ``capacity``.

        Kinds with zero capacity report 0.0 when unused and raise when a
        demand exists that can never be satisfied.
        """
        ratios: Dict[ResourceKind, float] = {}
        for kind in ResourceKind:
            demand, avail = self.get(kind), capacity.get(kind)
            if avail == 0:
                if demand > 0:
                    raise ResourceError(f"demand for {kind.value} but capacity is zero")
                ratios[kind] = 0.0
            else:
                ratios[kind] = demand / avail
        return ratios

    def max_utilization(self, capacity: "ResourceVector") -> float:
        """The binding (largest) utilization ratio against ``capacity``."""
        ratios = self.utilization(capacity)
        return max(ratios.values()) if ratios else 0.0

    def shortfall(self, capacity: "ResourceVector") -> "ResourceVector":
        """Component-wise unmet demand (clamped at zero)."""
        return ResourceVector(
            lut=max(0, self.lut - capacity.lut),
            ff=max(0, self.ff - capacity.ff),
            bram=max(0, self.bram - capacity.bram),
            dsp=max(0, self.dsp - capacity.dsp),
        )

    def component_max(self, other: "ResourceVector") -> "ResourceVector":
        """Component-wise maximum (least upper bound)."""
        return ResourceVector(
            lut=max(self.lut, other.lut),
            ff=max(self.ff, other.ff),
            bram=max(self.bram, other.bram),
            dsp=max(self.dsp, other.dsp),
        )

    def as_dict(self) -> Dict[str, int]:
        """Plain-dict view (for reports and serialization)."""
        return {kind.value: self.get(kind) for kind in ResourceKind}

    def items(self) -> Iterator[Tuple[ResourceKind, int]]:
        """Iterate (kind, count) pairs in canonical order."""
        return iter((kind, self.get(kind)) for kind in ResourceKind)

    def __str__(self) -> str:
        parts = [f"{kind.value}={self.get(kind)}" for kind in ResourceKind if self.get(kind)]
        return "ResourceVector(" + (", ".join(parts) if parts else "0") + ")"


def total_resources(vectors) -> ResourceVector:
    """Sum an iterable of :class:`ResourceVector` (empty sum is zero)."""
    acc = ResourceVector.zero()
    for vec in vectors:
        acc = acc + vec
    return acc
