"""Device definitions for the boards the paper targets.

The column layouts below approximate the real parts at the granularity
the flow needs: total LUT/FF/BRAM/DSP capacities land within ~2% of the
datasheet values, and the column interleave produces realistic pblock
shapes for the floorplanner. Exact tile maps of the silicon are neither
public in machine-readable form nor required for any decision the flow
makes.

Datasheet reference capacities:

=========  ==========  =========  ======  =====
part       board       LUTs       BRAM36  DSP
=========  ==========  =========  ======  =====
xc7vx485t  VC707       303,600    1,030   2,800
xcvu9p     VCU118      1,182,240  2,160   6,840
xcvu37p    VCU128      1,303,680  2,016   9,024
=========  ==========  =========  ======  =====
"""

from __future__ import annotations

from functools import lru_cache
from typing import Dict, List

from repro.errors import FabricError
from repro.fabric.device import ColumnKind, Device
from repro.fabric.resources import ResourceVector


def _interleave_group(
    clb: int, bram: int, dsp: int, io: int, clk: int = 1
) -> List[ColumnKind]:
    """Build one clock-region column group with a realistic interleave.

    CLB columns form the background; BRAM and DSP columns are spread
    evenly through them; the CLK column sits in the middle and the IO
    columns at the edges (mirroring real Xilinx floorplans).
    """
    if min(clb, bram, dsp, io, clk) < 0:
        raise FabricError("column counts must be non-negative")
    body: List[ColumnKind] = [ColumnKind.CLB] * clb
    # Spread each special kind uniformly across the body (real fabrics
    # repeat BRAM/DSP columns periodically, so every window of a few
    # columns sees some of each).
    specials = sorted(
        [((i + 0.5) / bram, ColumnKind.BRAM) for i in range(bram)]
        + [((j + 0.5) / dsp, ColumnKind.DSP) for j in range(dsp)]
    , key=lambda fk: fk[0])
    for fraction, kind in reversed(specials):
        pos = int(fraction * len(body))
        body.insert(min(pos, len(body)), kind)
    mid = len(body) // 2
    for _ in range(clk):
        body.insert(mid, ColumnKind.CLK)
    half_io = io // 2
    return [ColumnKind.IO] * half_io + body + [ColumnKind.IO] * (io - half_io)


def _seven_series_segments() -> Dict[ColumnKind, ResourceVector]:
    """Per-column-per-region resources for 7-series (50-CLB regions)."""
    return {
        ColumnKind.CLB: ResourceVector(lut=400, ff=800),
        ColumnKind.BRAM: ResourceVector(bram=10),
        ColumnKind.DSP: ResourceVector(dsp=20),
    }


def _ultrascale_plus_segments() -> Dict[ColumnKind, ResourceVector]:
    """Per-column-per-region resources for UltraScale+ (60-CLB regions)."""
    return {
        ColumnKind.CLB: ResourceVector(lut=480, ff=960),
        ColumnKind.BRAM: ResourceVector(bram=12),
        ColumnKind.DSP: ResourceVector(dsp=24),
    }


def vc707() -> Device:
    """Xilinx VC707 board (xc7vx485t) — the paper's evaluation target.

    Modelled capacity: 302,400 LUTs / 980 BRAM36 / 2,800 DSP across a
    7x2 clock-region grid (datasheet: 303,600 / 1,030 / 2,800).
    """
    group = _interleave_group(clb=54, bram=7, dsp=10, io=2)
    return Device(
        name="xc7vx485t",
        columns=group * 2,
        region_rows=7,
        region_cols=2,
        segment_resources=_seven_series_segments(),
    )


def vcu118() -> Device:
    """Xilinx VCU118 board (xcvu9p).

    Modelled capacity: 1,175,040 LUTs / 2,304 BRAM36 / 6,912 DSP across
    a 12x4 clock-region grid.
    """
    group = _interleave_group(clb=51, bram=4, dsp=6, io=2)
    return Device(
        name="xcvu9p",
        columns=group * 4,
        region_rows=12,
        region_cols=4,
        segment_resources=_ultrascale_plus_segments(),
    )


def vcu128() -> Device:
    """Xilinx VCU128 board (xcvu37p).

    Modelled capacity: 1,290,240 LUTs / 2,304 BRAM36 / 9,216 DSP across
    a 12x4 clock-region grid.
    """
    group = _interleave_group(clb=56, bram=4, dsp=8, io=3)
    return Device(
        name="xcvu37p",
        columns=group * 4,
        region_rows=12,
        region_cols=4,
        segment_resources=_ultrascale_plus_segments(),
    )


#: Board name → device factory, as accepted by the SoC configuration.
PART_CATALOG = {
    "vc707": vc707,
    "vcu118": vcu118,
    "vcu128": vcu128,
}


@lru_cache(maxsize=None)
def _cached_device(board: str) -> Device:
    return PART_CATALOG[board]()


def make_device(board: str) -> Device:
    """The device model for ``board`` (case-insensitive).

    Devices are immutable, so one shared instance per board serves
    every flow in the process — rebuilding the column layout and its
    resource prefix sums per build was a measurable slice of the
    floorplanning stage.
    """
    key = board.lower()
    if key not in PART_CATALOG:
        raise FabricError(
            f"unknown board {board!r}; supported: {sorted(PART_CATALOG)}"
        )
    return _cached_device(key)
