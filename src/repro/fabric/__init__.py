"""FPGA fabric model: resource algebra, device grids, parts, pblocks.

This package replaces the physical Xilinx devices the paper targets
(VC707, VCU118, VCU128) with geometric models that are faithful enough
for DPR floorplanning: column-organized CLB/BRAM/DSP resources, clock
regions, and rectangular pblocks with the DFX legality rules the paper
cites (UG909).
"""

from repro.fabric.resources import ResourceVector, ResourceKind
from repro.fabric.device import ColumnKind, Device, ClockRegion
from repro.fabric.parts import (
    PART_CATALOG,
    make_device,
    vc707,
    vcu118,
    vcu128,
)
from repro.fabric.pblock import Pblock, PblockLegalityReport

__all__ = [
    "ResourceVector",
    "ResourceKind",
    "ColumnKind",
    "Device",
    "ClockRegion",
    "Pblock",
    "PblockLegalityReport",
    "PART_CATALOG",
    "make_device",
    "vc707",
    "vcu118",
    "vcu128",
]
