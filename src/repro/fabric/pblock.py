"""Pblocks: rectangular physical placements for reconfigurable partitions.

A pblock is an inclusive rectangle of fabric columns x clock-region
rows. Following UG909, the model enforces the DFX legality rules the
paper's floorplanner must respect:

* a reconfigurable pblock may not contain clocking/configuration
  columns (the reconfigurable-tile redesign in Sec. III exists exactly
  because clock-modifying logic is illegal inside an RP);
* pblocks of distinct reconfigurable partitions may not overlap;
* the pblock must provide every resource its module demands.

Vertical clock-region alignment is guaranteed by construction because
rows are expressed in clock-region units.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.errors import FabricError
from repro.fabric.device import Device, FORBIDDEN_IN_RP
from repro.fabric.resources import ResourceVector


@dataclass(frozen=True)
class Pblock:
    """An inclusive column/region-row rectangle on a device."""

    name: str
    col_lo: int
    col_hi: int
    row_lo: int
    row_hi: int

    def __post_init__(self) -> None:
        if self.col_lo > self.col_hi or self.row_lo > self.row_hi:
            raise FabricError(f"pblock {self.name}: inverted bounds")
        if min(self.col_lo, self.row_lo) < 0:
            raise FabricError(f"pblock {self.name}: negative bounds")

    # ------------------------------------------------------------------
    @property
    def width(self) -> int:
        """Number of fabric columns spanned."""
        return self.col_hi - self.col_lo + 1

    @property
    def height(self) -> int:
        """Number of clock-region rows spanned."""
        return self.row_hi - self.row_lo + 1

    @property
    def area(self) -> int:
        """Column-segments covered (width x height)."""
        return self.width * self.height

    def overlaps(self, other: "Pblock") -> bool:
        """True if the two rectangles share any column segment."""
        return not (
            self.col_hi < other.col_lo
            or other.col_hi < self.col_lo
            or self.row_hi < other.row_lo
            or other.row_hi < self.row_lo
        )

    def resources(self, device: Device) -> ResourceVector:
        """Resources enclosed on ``device``."""
        return device.rect_resources(self.col_lo, self.col_hi, self.row_lo, self.row_hi)

    def xdc(self, device: Device) -> str:
        """Render the Xilinx-style constraint line this pblock stands for."""
        return (
            f"create_pblock {self.name}; "
            f"resize_pblock {self.name} -add "
            f"{{CLOCKREGION_X{device.region_col_of_column(self.col_lo)}"
            f"Y{self.row_lo}:COLS{self.col_lo}-{self.col_hi}"
            f"ROWS{self.row_lo}-{self.row_hi}}}"
        )

    def __str__(self) -> str:
        return (
            f"Pblock({self.name}: cols[{self.col_lo},{self.col_hi}] "
            f"rows[{self.row_lo},{self.row_hi}])"
        )


@dataclass
class PblockLegalityReport:
    """Outcome of checking one pblock against the DFX rules."""

    pblock: Pblock
    demand: ResourceVector
    provided: ResourceVector
    violations: List[str] = field(default_factory=list)

    @property
    def legal(self) -> bool:
        """True when no rule is violated."""
        return not self.violations


def check_pblock(
    device: Device,
    pblock: Pblock,
    demand: ResourceVector,
    others: Optional[List[Pblock]] = None,
) -> PblockLegalityReport:
    """Check ``pblock`` against geometry, DFX and resource rules.

    ``others`` are the already-placed reconfigurable pblocks it must not
    overlap.
    """
    violations: List[str] = []
    if pblock.col_hi >= device.num_columns:
        violations.append(
            f"column range exceeds device ({pblock.col_hi} >= {device.num_columns})"
        )
    if pblock.row_hi >= device.region_rows:
        violations.append(
            f"row range exceeds device ({pblock.row_hi} >= {device.region_rows})"
        )
    if violations:
        return PblockLegalityReport(
            pblock=pblock, demand=demand, provided=ResourceVector.zero(), violations=violations
        )

    for x in range(pblock.col_lo, pblock.col_hi + 1):
        kind = device.column_kind(x)
        if kind in FORBIDDEN_IN_RP:
            violations.append(f"contains forbidden {kind.value} column at x={x}")

    provided = pblock.resources(device)
    if not demand.fits_in(provided):
        violations.append(
            f"insufficient resources: demand {demand}, provided {provided}, "
            f"shortfall {demand.shortfall(provided)}"
        )

    for other in others or []:
        if other.name != pblock.name and pblock.overlaps(other):
            violations.append(f"overlaps pblock {other.name}")

    return PblockLegalityReport(
        pblock=pblock, demand=demand, provided=provided, violations=violations
    )
