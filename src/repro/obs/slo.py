"""Declarative SLOs with rolling error-budget burn.

An :class:`SloSpec` names a service-level indicator — one metric
series (p95 reconfiguration latency) or a ratio of two counter sets
(failed deploy attempts over all attempts) — an objective the SLI must
stay within, and an error budget: the fraction of observations allowed
to violate the objective before the SLO is breached.

The :class:`SloTracker` evaluates specs against the
:class:`~repro.obs.tsdb.TelemetryStore`'s sample history: each stored
snapshot yields one SLI observation, burn is the fraction of
observations in violation, and the remaining budget is
``1 - burn/budget``. Verdicts reuse the exact
:class:`~repro.obs.health.Verdict` semantics the health monitor
established (``ok``/``degraded``/``critical`` → exit 0/1/2), so
``repro dashboard`` and ``repro monitor`` fold SLO state into their
exit codes with the same ``_worst`` merge the watchdog rules use.

Series are selected by ``fnmatch`` pattern, not exact key: request
telemetry injects ``request``/``tenant`` labels into series names, so
a spec written against ``runtime.reconfig_seconds*.p95`` matches both
the unattributed series and every per-request one. Ratio SLIs sum all
matching numerator keys over all matching denominator keys per sample;
value SLIs fold matching keys with the spec's aggregation (``max`` by
default — the worst labeled series is the one the SLO answers for).
Samples where the selector matches nothing (or a ratio's denominator
is zero) contribute no observation: "no traffic yet" is not a
violation and not a success.
"""

from __future__ import annotations

import fnmatch
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import PrEspError
from repro.obs.health import Verdict, _worst
from repro.obs.tsdb import Sample, TelemetryStore


class SloError(PrEspError):
    """Misuse of the SLO API (bad objective, budget, or selector)."""


def _match_sum(sample: Sample, patterns: Sequence[str]) -> Optional[float]:
    """Sum of all sample values matching any pattern (None if no match)."""
    total = 0.0
    matched = False
    for key, value in sample.values.items():
        for pattern in patterns:
            if fnmatch.fnmatchcase(key, pattern):
                total += value
                matched = True
                break
    return total if matched else None


def _match_fold(sample: Sample, pattern: str, how: str) -> Optional[float]:
    """Fold sample values matching ``pattern`` (None if no match)."""
    values = [
        value
        for key, value in sample.values.items()
        if fnmatch.fnmatchcase(key, pattern)
    ]
    if not values:
        return None
    if how == "max":
        return max(values)
    if how == "min":
        return min(values)
    return sum(values)


@dataclass(frozen=True)
class SloSpec:
    """One service-level objective over stored metric samples.

    ``series`` is an fnmatch pattern over snapshot keys. With a
    ``denominator`` the SLI is a ratio (``sum(series)/sum(denominator)``
    per sample — counter semantics); without one it is a value SLI
    folded with ``agg``. ``objective`` is the maximum healthy SLI;
    ``budget`` is the fraction of observations allowed above it.
    """

    name: str
    objective: float
    series: str
    denominator: Optional[Tuple[str, ...]] = None
    budget: float = 0.10
    agg: str = "max"
    description: str = ""
    unit: str = ""

    def __post_init__(self) -> None:
        if not self.name:
            raise SloError("SLO spec needs a name")
        if self.objective < 0:
            raise SloError(f"SLO {self.name}: objective must be >= 0")
        if not 0.0 < self.budget <= 1.0:
            raise SloError(
                f"SLO {self.name}: budget must be in (0, 1], got {self.budget}"
            )
        if self.agg not in ("max", "min", "sum"):
            raise SloError(f"SLO {self.name}: unknown aggregation {self.agg!r}")
        if self.denominator is not None and not isinstance(self.denominator, tuple):
            # Normalize a single pattern or a list into a tuple so the
            # spec stays hashable/frozen.
            patterns = (
                (self.denominator,)
                if isinstance(self.denominator, str)
                else tuple(self.denominator)
            )
            object.__setattr__(self, "denominator", patterns)

    def sli(self, sample: Sample) -> Optional[float]:
        """This spec's indicator for one sample (None = no observation).

        A ratio whose numerator series does not exist yet counts as
        zero — a counter that was never incremented is a true zero, not
        missing data — while an absent or zero denominator yields no
        observation (there was no traffic to judge).
        """
        if self.denominator is not None:
            numerator = _match_sum(sample, (self.series,))
            denominator = _match_sum(sample, self.denominator)
            if denominator is None or denominator <= 0:
                return None
            return (numerator if numerator is not None else 0.0) / denominator
        return _match_fold(sample, self.series, self.agg)


#: The platform's serving SLOs: reconfiguration tail latency, deploy
#: failure rate, CAD retry rate. Objectives sit at the health monitor's
#: degraded thresholds where one exists.
DEFAULT_SLOS: Tuple[SloSpec, ...] = (
    SloSpec(
        name="reconfig-latency-p95",
        description="p95 partial-reconfiguration latency stays under 1s",
        series="runtime.reconfig_seconds*.p95",
        objective=1.0,
        budget=0.10,
        agg="max",
        unit="s",
    ),
    SloSpec(
        name="deploy-failure-rate",
        description="failed reconfiguration attempts stay under 5%",
        series="runtime.failed_attempts*",
        denominator=("runtime.reconfigurations*", "runtime.failed_attempts*"),
        objective=0.05,
        budget=0.20,
    ),
    SloSpec(
        name="cad-retry-rate",
        description="retried CAD jobs stay under 10% of scheduled jobs",
        series="flow.job_retries_total*",
        denominator=("flow.jobs_total*",),
        objective=0.10,
        budget=0.20,
    ),
)


@dataclass(frozen=True)
class SloStatus:
    """One spec's evaluation against the store."""

    spec: SloSpec
    verdict: Verdict
    #: Latest SLI observation (None = no data in the window).
    sli: Optional[float]
    observations: int
    violations: int
    #: Fraction of observations violating the objective.
    burn: float
    #: ``1 - burn/budget``: positive = headroom, <= 0 = breached.
    budget_remaining: float

    def to_dict(self) -> Dict:
        return {
            "name": self.spec.name,
            "description": self.spec.description,
            "objective": self.spec.objective,
            "budget": self.spec.budget,
            "verdict": self.verdict.value,
            "sli": self.sli,
            "observations": self.observations,
            "violations": self.violations,
            "burn": self.burn,
            "budget_remaining": self.budget_remaining,
        }

    def summary(self) -> str:
        unit = self.spec.unit
        if self.observations == 0:
            state = "no data"
        else:
            sli = "n/a" if self.sli is None else f"{self.sli:.6g}{unit}"
            state = (
                f"sli={sli} objective<={self.spec.objective:g}{unit} "
                f"burn={self.burn * 100:.1f}% of {self.spec.budget * 100:g}% "
                f"budget ({self.budget_remaining * 100:+.1f}% left)"
            )
        return f"[{self.verdict.value}] {self.spec.name}: {state}"


@dataclass(frozen=True)
class SloReport:
    """All specs evaluated at one instant."""

    statuses: Tuple[SloStatus, ...]
    window_s: Optional[float] = None

    @property
    def verdict(self) -> Verdict:
        worst = Verdict.OK
        for status in self.statuses:
            worst = _worst(worst, status.verdict)
        return worst

    def to_dict(self) -> Dict:
        return {
            "verdict": self.verdict.value,
            "window_s": self.window_s,
            "objectives": [status.to_dict() for status in self.statuses],
        }

    def summary_lines(self) -> List[str]:
        lines = [f"slo verdict   : {self.verdict.value.upper()}"]
        lines.extend(f"  {status.summary()}" for status in self.statuses)
        return lines


class SloTracker:
    """Evaluates SLO specs against a telemetry store's history."""

    def __init__(
        self,
        store: TelemetryStore,
        specs: Sequence[SloSpec] = DEFAULT_SLOS,
    ) -> None:
        names = [spec.name for spec in specs]
        if len(set(names)) != len(names):
            raise SloError(f"duplicate SLO names: {names}")
        self.store = store
        self.specs: Tuple[SloSpec, ...] = tuple(specs)

    def _status(self, spec: SloSpec, samples: List[Sample]) -> SloStatus:
        observations = 0
        violations = 0
        latest: Optional[float] = None
        for sample in samples:
            sli = spec.sli(sample)
            if sli is None:
                continue
            observations += 1
            latest = sli
            if sli > spec.objective:
                violations += 1
        burn = violations / observations if observations else 0.0
        budget_remaining = 1.0 - burn / spec.budget
        if observations == 0:
            verdict = Verdict.OK
        elif burn >= 1.0:
            # Every observation violated: the SLI never met the
            # objective at all — not just budget exhaustion.
            verdict = Verdict.CRITICAL
        elif budget_remaining <= 0.0:
            verdict = Verdict.DEGRADED
        else:
            verdict = Verdict.OK
        return SloStatus(
            spec=spec,
            verdict=verdict,
            sli=latest,
            observations=observations,
            violations=violations,
            burn=burn,
            budget_remaining=budget_remaining,
        )

    def evaluate(self, window_s: Optional[float] = None) -> SloReport:
        """One report over the store's (optionally windowed) history."""
        samples = self.store.samples(window_s)
        return SloReport(
            statuses=tuple(self._status(spec, samples) for spec in self.specs),
            window_s=window_s,
        )
