"""Span tracing with explicit clock injection.

The reproduction's two performance stories run on two different
clocks: the flow's stages elapse in *modelled CAD minutes* (the
`RuntimeModel` curves plus the `VivadoServer` schedule) while the
runtime manager's protocol elapses in *simulated seconds* (the DES
kernel's `sim.now`). A tracer therefore never reads a wall clock — it
is constructed with a callable that returns the current time in the
layer's own unit, and every span is stamped from that clock (or from
explicitly supplied interval bounds for post-hoc recording).

Spans live on *tracks*: a ``"process/thread"`` string that becomes the
pid/tid pair of the Chrome trace-event export. Each track keeps its
own open-span stack, so concurrent DES processes (one per tile) nest
independently and the exported trace is always well-formed per track.

``NULL_TRACER`` is the disabled path: every call is a no-op that
allocates nothing, so instrumented code can call it unconditionally
with zero overhead when tracing is off.

When a :class:`~repro.obs.context.TelemetryContext` is active, every
created span is stamped with its ``request_id`` (explicit attrs win) —
the single creation point :meth:`Tracer._new_span` does it, so live,
instant, post-hoc, and replayed spans all stay joinable. The null
tracer never consults the context variable.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.errors import PrEspError
from repro.obs.context import current_request_id


class TracingError(PrEspError):
    """Misuse of the tracing API (unbalanced begin/end, bad interval)."""


#: Default track for spans recorded without an explicit one.
DEFAULT_TRACK = "main/main"


@dataclass
class Span:
    """One traced interval on a track."""

    span_id: int
    name: str
    category: str
    track: str
    start: float
    end: Optional[float] = None
    parent_id: Optional[int] = None
    attrs: Dict[str, Any] = field(default_factory=dict)
    #: Zero-duration point-in-time marker (Chrome "instant" event) —
    #: e.g. a cancelled DES event withdrawn from the kernel heap.
    instant: bool = False

    @property
    def duration(self) -> float:
        """Span length in the tracer's time unit (0 while open)."""
        if self.end is None:
            return 0.0
        return self.end - self.start

    @property
    def closed(self) -> bool:
        """True once the span has an end time."""
        return self.end is not None


class Tracer:
    """Collects spans against an injected clock.

    ``clock`` returns the current time in ``time_unit`` (``"s"`` for
    DES simulated seconds, ``"min"`` for modelled CAD minutes); it can
    be (re)bound later with :meth:`use_clock` — the platform binds the
    deployment tracer to ``sim.now`` once the simulator exists.
    """

    enabled = True

    def __init__(
        self,
        clock: Optional[Callable[[], float]] = None,
        time_unit: str = "s",
    ) -> None:
        if time_unit not in ("s", "min"):
            raise TracingError(f"unknown time unit {time_unit!r} (use 's' or 'min')")
        self._clock = clock if clock is not None else (lambda: 0.0)
        self.time_unit = time_unit
        self.spans: List[Span] = []
        self._stacks: Dict[str, List[Span]] = {}
        self._next_id = 0

    # ------------------------------------------------------------------
    def use_clock(self, clock: Callable[[], float]) -> None:
        """Rebind the time source (e.g. to a freshly built simulator)."""
        self._clock = clock

    def now(self) -> float:
        """Current time on the injected clock."""
        return self._clock()

    def _new_span(
        self,
        name: str,
        category: str,
        track: str,
        start: float,
        parent_id: Optional[int],
        attrs: Dict[str, Any],
    ) -> Span:
        request_id = current_request_id()
        if request_id is not None and "request_id" not in attrs:
            attrs = {**attrs, "request_id": request_id}
        span = Span(
            span_id=self._next_id,
            name=name,
            category=category,
            track=track,
            start=start,
            parent_id=parent_id,
            attrs=attrs,
        )
        self._next_id += 1
        self.spans.append(span)
        return span

    # ------------------------------------------------------------------
    # live spans (clock-stamped)
    # ------------------------------------------------------------------
    def begin(
        self, name: str, category: str = "", track: str = DEFAULT_TRACK, **attrs
    ) -> Span:
        """Open a span now; it nests under the track's current span."""
        stack = self._stacks.setdefault(track, [])
        parent_id = stack[-1].span_id if stack else None
        span = self._new_span(name, category, track, self.now(), parent_id, attrs)
        stack.append(span)
        return span

    def end(self, span: Span, **attrs) -> Span:
        """Close ``span`` now; must be the innermost open span of its track."""
        stack = self._stacks.get(span.track, [])
        if not stack or stack[-1] is not span:
            raise TracingError(
                f"span {span.name!r} is not the innermost open span "
                f"of track {span.track!r}"
            )
        stack.pop()
        span.end = self.now()
        span.attrs.update(attrs)
        return span

    class _SpanContext:
        __slots__ = ("_tracer", "_name", "_category", "_track", "_attrs", "span")

        def __init__(self, tracer, name, category, track, attrs):
            self._tracer = tracer
            self._name = name
            self._category = category
            self._track = track
            self._attrs = attrs
            self.span: Optional[Span] = None

        def __enter__(self) -> Span:
            self.span = self._tracer.begin(
                self._name, self._category, self._track, **self._attrs
            )
            return self.span

        def __exit__(self, exc_type, exc, tb) -> bool:
            if exc_type is not None:
                self.span.attrs.setdefault("error", exc_type.__name__)
            self._tracer.end(self.span)
            return False

    def span(
        self, name: str, category: str = "", track: str = DEFAULT_TRACK, **attrs
    ) -> "_SpanContext":
        """Context manager: ``with tracer.span("exec", track="kernel/rt0"):``."""
        return self._SpanContext(self, name, category, track, attrs)

    def instant(
        self,
        name: str,
        category: str = "",
        track: str = DEFAULT_TRACK,
        time: Optional[float] = None,
        **attrs,
    ) -> Span:
        """Record a zero-duration instant marker (now, or at ``time``).

        Instants nest under the track's current open span but never
        open one themselves — they mark a point, not an interval, and
        export as Chrome ``"I"`` events instead of ``"X"`` spans.
        """
        when = self.now() if time is None else time
        stack = self._stacks.get(track)
        parent_id = stack[-1].span_id if stack else None
        span = self._new_span(name, category, track, when, parent_id, attrs)
        span.end = when
        span.instant = True
        return span

    # ------------------------------------------------------------------
    # post-hoc spans (explicit interval)
    # ------------------------------------------------------------------
    def record(
        self,
        name: str,
        start: float,
        end: float,
        category: str = "",
        track: str = DEFAULT_TRACK,
        parent: Optional[Span] = None,
        **attrs,
    ) -> Span:
        """Record a closed span with explicit bounds (modelled intervals)."""
        if end < start:
            raise TracingError(f"span {name!r}: end {end} before start {start}")
        span = self._new_span(
            name,
            category,
            track,
            start,
            parent.span_id if parent is not None else None,
            attrs,
        )
        span.end = end
        return span

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    def open_spans(self) -> List[Span]:
        """Spans begun but not yet ended (any track)."""
        return [s for stack in self._stacks.values() for s in stack]

    def spans_in(self, category: str) -> List[Span]:
        """Closed spans of one category."""
        return [s for s in self.spans if s.category == category and s.closed]

    def total_duration(self, category: str) -> float:
        """Summed duration of a category's closed spans."""
        return sum(s.duration for s in self.spans_in(category))

    def nesting_violations(self) -> List[str]:
        """Parent/child intervals that are not properly nested.

        A well-formed trace has every child span's interval inside its
        parent's. Open spans are skipped (they have no end yet).
        """
        by_id = {s.span_id: s for s in self.spans}
        problems: List[str] = []
        for span in self.spans:
            if span.parent_id is None or not span.closed:
                continue
            parent = by_id.get(span.parent_id)
            if parent is None or not parent.closed:
                continue
            if span.start < parent.start or span.end > parent.end:
                problems.append(
                    f"span {span.name!r} [{span.start}, {span.end}] escapes "
                    f"parent {parent.name!r} [{parent.start}, {parent.end}]"
                )
        return problems


class _NullSpanContext:
    """Shared no-op context manager of the disabled tracer."""

    __slots__ = ()
    span = None

    def __enter__(self):
        return None

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False


_NULL_CONTEXT = _NullSpanContext()


class NullTracer:
    """The zero-overhead disabled tracer: no span objects, ever."""

    enabled = False
    time_unit = "s"
    spans: Tuple[Span, ...] = ()

    __slots__ = ()

    def use_clock(self, clock) -> None:
        pass

    def now(self) -> float:
        return 0.0

    def begin(self, name, category="", track=DEFAULT_TRACK, **attrs) -> None:
        return None

    def end(self, span, **attrs) -> None:
        return None

    def span(self, name, category="", track=DEFAULT_TRACK, **attrs) -> _NullSpanContext:
        return _NULL_CONTEXT

    def instant(self, name, category="", track=DEFAULT_TRACK, time=None, **attrs) -> None:
        return None

    def record(self, name, start, end, category="", track=DEFAULT_TRACK, parent=None, **attrs) -> None:
        return None

    def open_spans(self) -> list:
        return []

    def spans_in(self, category) -> list:
        return []

    def total_duration(self, category) -> float:
        return 0.0

    def nesting_violations(self) -> list:
        return []


#: The process-wide disabled tracer instrumented code defaults to.
NULL_TRACER = NullTracer()
