"""Unified observability: span tracing, metrics, logging, exporters.

The reproduction's two performance stories — the flow's compile-time
makespan (modelled CAD minutes) and the runtime manager's
reconfiguration overhead (DES simulated seconds) — share one
telemetry substrate. A :class:`Tracer` collects spans against an
injected clock, a :class:`MetricsRegistry` collects labeled
counters/gauges/histograms, and the exporters render Chrome
trace-event JSON (Perfetto / ``chrome://tracing``), JSONL span logs
and flat metrics dicts. A :class:`Profiler` collects a deterministic
call-path tree (host self time + attributed simulated time) exported
as JSON documents and collapsed flamegraph stacks, with profdiff
gating hot-path share drift against committed baselines.
``NULL_TRACER``/``NULL_METRICS``/``NULL_PROFILER`` are the
zero-overhead disabled paths instrumented code defaults to.

Request-scoped telemetry joins all of it: a
:class:`TelemetryContext` (deterministic seeded IDs, contextvars
propagation) stamps every span, event, metric sample, profile leaf
and log record; a :class:`TelemetryStore` keeps a bounded ring of
registry snapshots with windowed rate/delta queries; an
:class:`SloTracker` evaluates declarative SLO specs (error-budget
burn) with :class:`Verdict` exit-code semantics; and the Prometheus
text / OTLP JSONL exporters expose the registry to standard scrapers.
"""

from repro.obs.bridge import bridge_timeline, publish_runtime_stats
from repro.obs.context import (
    DEFAULT_TENANT,
    RequestIdFactory,
    TelemetryContext,
    activate,
    bind,
    current_context,
    current_request_id,
    unbind,
)
from repro.obs.events import (
    Event,
    EventBus,
    EventBusError,
    NULL_EVENTS,
    NullEventBus,
)
from repro.obs.export import (
    chrome_trace_dict,
    chrome_trace_events,
    chrome_trace_json,
    format_metric_value,
    merge_span_records,
    metrics_dict,
    metrics_lines,
    otlp_metrics_dict,
    otlp_metrics_lines,
    parse_prometheus_text,
    prometheus_samples,
    prometheus_text,
    span_records,
    spans_jsonl,
    write_chrome_trace,
    write_otlp_jsonl,
    write_prometheus_text,
    write_spans_jsonl,
)
from repro.obs.health import (
    HealthError,
    HealthFinding,
    HealthMonitor,
    HealthReport,
    Verdict,
    WindowStats,
)
from repro.obs.logconfig import (
    LEVELS,
    RequestIdFilter,
    configure_logging,
    get_logger,
    level_from_verbosity,
)
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsError,
    MetricsRegistry,
    NULL_METRICS,
    NullMetricsRegistry,
    bucket_quantile,
)
from repro.obs.perfbase import (
    Baseline,
    BaselineEntry,
    BenchSummary,
    ComparisonResult,
    MetricDelta,
    PerfBaseError,
    baseline_from_summary,
    compare,
    compare_directories,
    load_baseline,
    load_summary,
    write_baseline,
    write_summary,
)
from repro.obs.profdiff import (
    ProfDiffError,
    ProfileBaseline,
    ProfileComparisonResult,
    ShareDelta,
    baseline_from_profile,
    compare_profile,
    compare_profile_directories,
    find_profile_baselines,
    load_profile_baseline,
    self_time_shares,
    write_profile_baseline,
)
from repro.obs.profiler import (
    NULL_PROFILER,
    NullProfiler,
    ProfileCapsule,
    ProfileNode,
    Profiler,
    ProfilerError,
    canonical_tree,
    collapsed_stacks,
    find_profiles,
    load_profile,
    profile_document,
    profile_json,
    self_host_total,
    write_profile,
)
from repro.obs.slo import (
    DEFAULT_SLOS,
    SloError,
    SloReport,
    SloSpec,
    SloStatus,
    SloTracker,
)
from repro.obs.tracer import (
    NULL_TRACER,
    NullTracer,
    Span,
    Tracer,
    TracingError,
)
from repro.obs.tsdb import (
    Sample,
    TelemetryStore,
    TelemetryStoreError,
)

__all__ = [
    "Baseline",
    "BaselineEntry",
    "BenchSummary",
    "ComparisonResult",
    "Counter",
    "DEFAULT_SLOS",
    "DEFAULT_TENANT",
    "Event",
    "EventBus",
    "EventBusError",
    "Gauge",
    "HealthError",
    "HealthFinding",
    "HealthMonitor",
    "HealthReport",
    "Histogram",
    "LEVELS",
    "MetricDelta",
    "MetricsError",
    "MetricsRegistry",
    "NULL_EVENTS",
    "NULL_METRICS",
    "NULL_PROFILER",
    "NULL_TRACER",
    "NullEventBus",
    "NullMetricsRegistry",
    "NullProfiler",
    "NullTracer",
    "PerfBaseError",
    "ProfDiffError",
    "ProfileBaseline",
    "ProfileCapsule",
    "ProfileComparisonResult",
    "ProfileNode",
    "Profiler",
    "ProfilerError",
    "RequestIdFactory",
    "RequestIdFilter",
    "Sample",
    "ShareDelta",
    "SloError",
    "SloReport",
    "SloSpec",
    "SloStatus",
    "SloTracker",
    "Span",
    "TelemetryContext",
    "TelemetryStore",
    "TelemetryStoreError",
    "Tracer",
    "TracingError",
    "Verdict",
    "WindowStats",
    "activate",
    "baseline_from_profile",
    "baseline_from_summary",
    "bind",
    "bridge_timeline",
    "bucket_quantile",
    "canonical_tree",
    "chrome_trace_dict",
    "chrome_trace_events",
    "chrome_trace_json",
    "collapsed_stacks",
    "compare",
    "compare_directories",
    "compare_profile",
    "compare_profile_directories",
    "configure_logging",
    "current_context",
    "current_request_id",
    "find_profile_baselines",
    "find_profiles",
    "format_metric_value",
    "get_logger",
    "level_from_verbosity",
    "load_baseline",
    "load_profile",
    "load_profile_baseline",
    "load_summary",
    "merge_span_records",
    "metrics_dict",
    "metrics_lines",
    "otlp_metrics_dict",
    "otlp_metrics_lines",
    "parse_prometheus_text",
    "profile_document",
    "profile_json",
    "prometheus_samples",
    "prometheus_text",
    "publish_runtime_stats",
    "self_host_total",
    "self_time_shares",
    "span_records",
    "spans_jsonl",
    "unbind",
    "write_baseline",
    "write_chrome_trace",
    "write_otlp_jsonl",
    "write_prometheus_text",
    "write_profile",
    "write_profile_baseline",
    "write_spans_jsonl",
    "write_summary",
]
