"""Unified observability: span tracing, metrics, logging, exporters.

The reproduction's two performance stories — the flow's compile-time
makespan (modelled CAD minutes) and the runtime manager's
reconfiguration overhead (DES simulated seconds) — share one
telemetry substrate. A :class:`Tracer` collects spans against an
injected clock, a :class:`MetricsRegistry` collects labeled
counters/gauges/histograms, and the exporters render Chrome
trace-event JSON (Perfetto / ``chrome://tracing``), JSONL span logs
and flat metrics dicts. ``NULL_TRACER``/``NULL_METRICS`` are the
zero-overhead disabled paths instrumented code defaults to.
"""

from repro.obs.bridge import bridge_timeline, publish_runtime_stats
from repro.obs.events import (
    Event,
    EventBus,
    EventBusError,
    NULL_EVENTS,
    NullEventBus,
)
from repro.obs.export import (
    chrome_trace_dict,
    chrome_trace_events,
    chrome_trace_json,
    format_metric_value,
    metrics_dict,
    metrics_lines,
    span_records,
    spans_jsonl,
    write_chrome_trace,
    write_spans_jsonl,
)
from repro.obs.health import (
    HealthError,
    HealthFinding,
    HealthMonitor,
    HealthReport,
    Verdict,
    WindowStats,
)
from repro.obs.logconfig import (
    LEVELS,
    configure_logging,
    get_logger,
    level_from_verbosity,
)
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsError,
    MetricsRegistry,
    NULL_METRICS,
    NullMetricsRegistry,
    bucket_quantile,
)
from repro.obs.perfbase import (
    Baseline,
    BaselineEntry,
    BenchSummary,
    ComparisonResult,
    MetricDelta,
    PerfBaseError,
    baseline_from_summary,
    compare,
    compare_directories,
    load_baseline,
    load_summary,
    write_baseline,
    write_summary,
)
from repro.obs.tracer import (
    NULL_TRACER,
    NullTracer,
    Span,
    Tracer,
    TracingError,
)

__all__ = [
    "Baseline",
    "BaselineEntry",
    "BenchSummary",
    "ComparisonResult",
    "Counter",
    "Event",
    "EventBus",
    "EventBusError",
    "Gauge",
    "HealthError",
    "HealthFinding",
    "HealthMonitor",
    "HealthReport",
    "Histogram",
    "LEVELS",
    "MetricDelta",
    "MetricsError",
    "MetricsRegistry",
    "NULL_EVENTS",
    "NULL_METRICS",
    "NULL_TRACER",
    "NullEventBus",
    "NullMetricsRegistry",
    "NullTracer",
    "PerfBaseError",
    "Span",
    "Tracer",
    "TracingError",
    "Verdict",
    "WindowStats",
    "baseline_from_summary",
    "bridge_timeline",
    "bucket_quantile",
    "chrome_trace_dict",
    "chrome_trace_events",
    "chrome_trace_json",
    "compare",
    "compare_directories",
    "configure_logging",
    "format_metric_value",
    "get_logger",
    "level_from_verbosity",
    "load_baseline",
    "load_summary",
    "metrics_dict",
    "metrics_lines",
    "publish_runtime_stats",
    "span_records",
    "spans_jsonl",
    "write_baseline",
    "write_chrome_trace",
    "write_spans_jsonl",
    "write_summary",
]
