"""Unified observability: span tracing, metrics, logging, exporters.

The reproduction's two performance stories — the flow's compile-time
makespan (modelled CAD minutes) and the runtime manager's
reconfiguration overhead (DES simulated seconds) — share one
telemetry substrate. A :class:`Tracer` collects spans against an
injected clock, a :class:`MetricsRegistry` collects labeled
counters/gauges/histograms, and the exporters render Chrome
trace-event JSON (Perfetto / ``chrome://tracing``), JSONL span logs
and flat metrics dicts. ``NULL_TRACER``/``NULL_METRICS`` are the
zero-overhead disabled paths instrumented code defaults to.
"""

from repro.obs.bridge import bridge_timeline, publish_runtime_stats
from repro.obs.export import (
    chrome_trace_dict,
    chrome_trace_events,
    chrome_trace_json,
    metrics_dict,
    metrics_lines,
    span_records,
    spans_jsonl,
    write_chrome_trace,
    write_spans_jsonl,
)
from repro.obs.logconfig import (
    LEVELS,
    configure_logging,
    get_logger,
    level_from_verbosity,
)
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsError,
    MetricsRegistry,
    NULL_METRICS,
    NullMetricsRegistry,
)
from repro.obs.tracer import (
    NULL_TRACER,
    NullTracer,
    Span,
    Tracer,
    TracingError,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "LEVELS",
    "MetricsError",
    "MetricsRegistry",
    "NULL_METRICS",
    "NULL_TRACER",
    "NullMetricsRegistry",
    "NullTracer",
    "Span",
    "Tracer",
    "TracingError",
    "bridge_timeline",
    "chrome_trace_dict",
    "chrome_trace_events",
    "chrome_trace_json",
    "configure_logging",
    "get_logger",
    "level_from_verbosity",
    "metrics_dict",
    "metrics_lines",
    "publish_runtime_stats",
    "span_records",
    "spans_jsonl",
    "write_chrome_trace",
    "write_spans_jsonl",
]
