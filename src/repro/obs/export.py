"""Trace and metrics exporters.

Three formats, all deterministic (stable ordering, no wall-clock or
object-identity leakage) so that two runs of the same seeded workload
export byte-identical files:

* **Chrome trace-event JSON** — loadable in Perfetto or
  ``chrome://tracing``. Spans become complete (``"ph": "X"``) events,
  instant markers (cancelled DES events) become ``"ph": "I"`` events;
  tracks (``"process/thread"``) map onto pid/tid pairs announced with
  ``process_name``/``thread_name`` metadata events.
* **JSONL** — one span object per line, for ad-hoc ``jq`` analysis.
* **Metrics dict** — the registry snapshot, flat and JSON-ready.
"""

from __future__ import annotations

import json
from typing import Dict, List, Tuple, Union

from repro.obs.metrics import MetricsRegistry, NullMetricsRegistry
from repro.obs.tracer import NullTracer, Tracer

#: Microseconds per tracer time unit.
_US_PER_UNIT = {"s": 1e6, "min": 60e6}

AnyTracer = Union[Tracer, NullTracer]


def _split_track(track: str) -> Tuple[str, str]:
    """``"proc/thread"`` -> (proc, thread); bare names get proc==thread."""
    if "/" in track:
        proc, thread = track.split("/", 1)
        return proc, thread
    return track, track


def _jsonable(value) -> object:
    """Coerce an attribute value into something JSON-serializable."""
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    if isinstance(value, dict):
        return {str(k): _jsonable(v) for k, v in value.items()}
    return str(value)


def chrome_trace_events(tracer: AnyTracer) -> List[Dict]:
    """The ``traceEvents`` list for the tracer's closed spans."""
    spans = [s for s in tracer.spans if s.closed]
    scale = _US_PER_UNIT[tracer.time_unit]

    processes: Dict[str, int] = {}
    threads: Dict[Tuple[str, str], int] = {}
    for proc, thread in sorted({_split_track(s.track) for s in spans}):
        processes.setdefault(proc, len(processes) + 1)
        threads.setdefault((proc, thread), len(threads) + 1)

    events: List[Dict] = []
    for proc, pid in sorted(processes.items()):
        events.append(
            {
                "ph": "M",
                "name": "process_name",
                "pid": pid,
                "tid": 0,
                "args": {"name": proc},
            }
        )
    for (proc, thread), tid in sorted(threads.items()):
        events.append(
            {
                "ph": "M",
                "name": "thread_name",
                "pid": processes[proc],
                "tid": tid,
                "args": {"name": thread},
            }
        )
    for span in spans:
        proc, thread = _split_track(span.track)
        args = {k: _jsonable(v) for k, v in sorted(span.attrs.items())}
        args["span_id"] = span.span_id
        if span.parent_id is not None:
            args["parent_id"] = span.parent_id
        if span.instant:
            # Zero-duration markers (e.g. cancelled DES events) export
            # as thread-scoped instants, never as open/dangling spans.
            events.append(
                {
                    "ph": "I",
                    "s": "t",
                    "name": span.name,
                    "cat": span.category or "instant",
                    "ts": span.start * scale,
                    "pid": processes[proc],
                    "tid": threads[(proc, thread)],
                    "args": args,
                }
            )
            continue
        events.append(
            {
                "ph": "X",
                "name": span.name,
                "cat": span.category or "span",
                "ts": span.start * scale,
                "dur": span.duration * scale,
                "pid": processes[proc],
                "tid": threads[(proc, thread)],
                "args": args,
            }
        )
    return events


def chrome_trace_dict(tracer: AnyTracer, profile: Union[Dict, None] = None) -> Dict:
    """The full Chrome trace-event document.

    ``profile`` (a profile document from
    :func:`repro.obs.profiler.profile_document`) rides along in the
    trace metadata, so one file carries both the merged timeline and
    the call-path attribution.
    """
    metadata: Dict = {"time_unit": tracer.time_unit, "tool": "pr-esp-repro"}
    if profile is not None:
        metadata["profile"] = profile
    return {
        "displayTimeUnit": "ms",
        "metadata": metadata,
        "traceEvents": chrome_trace_events(tracer),
    }


def chrome_trace_json(tracer: AnyTracer, profile: Union[Dict, None] = None) -> str:
    """Deterministic JSON text of the Chrome trace document."""
    return json.dumps(chrome_trace_dict(tracer, profile), sort_keys=True, indent=1)


def write_chrome_trace(
    path: str, tracer: AnyTracer, profile: Union[Dict, None] = None
) -> None:
    """Write the Chrome trace-event file to ``path``."""
    with open(path, "w") as handle:
        handle.write(chrome_trace_json(tracer, profile))
        handle.write("\n")


# ----------------------------------------------------------------------
def span_records(tracer: AnyTracer) -> List[Dict]:
    """Spans as plain dicts (the JSONL rows)."""
    records = []
    for span in tracer.spans:
        if not span.closed:
            continue
        record = {
            "span_id": span.span_id,
            "name": span.name,
            "category": span.category,
            "track": span.track,
            "start": span.start,
            "end": span.end,
            "duration": span.duration,
            "parent_id": span.parent_id,
        }
        if span.instant:
            record["instant"] = True
        if span.attrs:
            record["attrs"] = {
                k: _jsonable(v) for k, v in sorted(span.attrs.items())
            }
        records.append(record)
    return records


def merge_span_records(
    tracer: AnyTracer, records: List[Dict], worker: Union[str, None] = None
) -> None:
    """Re-record exported span records onto ``tracer`` (closed spans).

    The cross-process half of trace propagation: a pool worker exports
    its spans with :func:`span_records`, the parent replays them here.
    Parent/child links are remapped onto the parent tracer's span ids;
    ``worker`` (the worker process name) is stamped into each replayed
    span's attrs so merged traces stay attributable. No-op on a
    disabled tracer.
    """
    if not getattr(tracer, "enabled", False):
        return
    id_map: Dict[int, object] = {}
    for record in sorted(records, key=lambda r: r["span_id"]):
        attrs = dict(record.get("attrs", {}))
        if worker is not None:
            attrs["worker"] = worker
        span = tracer.record(
            record["name"],
            record["start"],
            record["end"],
            category=record.get("category", ""),
            track=record.get("track", "main/main"),
            parent=id_map.get(record.get("parent_id")),
            **attrs,
        )
        if span is not None:
            span.instant = bool(record.get("instant", False))
            id_map[record["span_id"]] = span


def spans_jsonl(tracer: AnyTracer) -> str:
    """One JSON object per line, one line per closed span."""
    return "\n".join(
        json.dumps(record, sort_keys=True) for record in span_records(tracer)
    )


def write_spans_jsonl(path: str, tracer: AnyTracer) -> None:
    """Write the JSONL span log to ``path``."""
    text = spans_jsonl(tracer)
    with open(path, "w") as handle:
        handle.write(text)
        if text:
            handle.write("\n")


# ----------------------------------------------------------------------
def metrics_dict(registry: Union[MetricsRegistry, NullMetricsRegistry]) -> Dict[str, float]:
    """The registry's flat snapshot (alias with exporter naming)."""
    return registry.snapshot()


def format_metric_value(value: float) -> str:
    """Round-trip-faithful rendering of one metric value.

    ``%g`` truncates to 6 significant digits — silently lossy for large
    counters and nanosecond-scale sums. Integral values render without
    the trailing ``.0`` (beyond 2**53 the float is integral but the
    int() round trip is no longer exact, so ``repr`` takes over).
    """
    as_float = float(value)
    if as_float != as_float or as_float in (float("inf"), float("-inf")):
        return repr(as_float)
    if as_float.is_integer() and abs(as_float) < 2**53:
        return str(int(as_float))
    return repr(as_float)


def metrics_lines(registry: Union[MetricsRegistry, NullMetricsRegistry]) -> List[str]:
    """Human-readable ``name value`` lines, name-ordered."""
    return [
        f"{name} {format_metric_value(value)}"
        for name, value in registry.snapshot().items()
    ]
