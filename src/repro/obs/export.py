"""Trace and metrics exporters.

Five formats, all deterministic (stable ordering, no wall-clock or
object-identity leakage) so that two runs of the same seeded workload
export byte-identical files:

* **Chrome trace-event JSON** — loadable in Perfetto or
  ``chrome://tracing``. Spans become complete (``"ph": "X"``) events,
  instant markers (cancelled DES events) become ``"ph": "I"`` events;
  tracks (``"process/thread"``) map onto pid/tid pairs announced with
  ``process_name``/``thread_name`` metadata events.
* **JSONL** — one span object per line, for ad-hoc ``jq`` analysis.
* **Metrics dict** — the registry snapshot, flat and JSON-ready.
* **Prometheus text exposition** — the registry rendered in the
  text-format a Prometheus server scrapes (``_total`` counters,
  cumulative ``_bucket{le=...}`` histograms); a round-trip parser
  (:func:`parse_prometheus_text`) keeps the renderer honest in tests.
* **OTLP-shaped JSON/JSONL** — the registry as an OpenTelemetry
  ``ExportMetricsServiceRequest`` document (``resourceMetrics`` →
  ``scopeMetrics`` → ``metrics``), one envelope per line in the JSONL
  form, with ``timeUnixNano`` derived from the caller's *simulated*
  instant so exports stay byte-stable.
"""

from __future__ import annotations

import json
import re
from typing import Dict, List, Optional, Tuple, Union

from repro.obs.metrics import LabelKey, MetricsRegistry, NullMetricsRegistry
from repro.obs.tracer import NullTracer, Tracer

#: Microseconds per tracer time unit.
_US_PER_UNIT = {"s": 1e6, "min": 60e6}

AnyTracer = Union[Tracer, NullTracer]


def _split_track(track: str) -> Tuple[str, str]:
    """``"proc/thread"`` -> (proc, thread); bare names get proc==thread."""
    if "/" in track:
        proc, thread = track.split("/", 1)
        return proc, thread
    return track, track


def _jsonable(value) -> object:
    """Coerce an attribute value into something JSON-serializable."""
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    if isinstance(value, dict):
        return {str(k): _jsonable(v) for k, v in value.items()}
    return str(value)


def chrome_trace_events(tracer: AnyTracer) -> List[Dict]:
    """The ``traceEvents`` list for the tracer's closed spans."""
    spans = [s for s in tracer.spans if s.closed]
    scale = _US_PER_UNIT[tracer.time_unit]

    processes: Dict[str, int] = {}
    threads: Dict[Tuple[str, str], int] = {}
    for proc, thread in sorted({_split_track(s.track) for s in spans}):
        processes.setdefault(proc, len(processes) + 1)
        threads.setdefault((proc, thread), len(threads) + 1)

    events: List[Dict] = []
    for proc, pid in sorted(processes.items()):
        events.append(
            {
                "ph": "M",
                "name": "process_name",
                "pid": pid,
                "tid": 0,
                "args": {"name": proc},
            }
        )
    for (proc, thread), tid in sorted(threads.items()):
        events.append(
            {
                "ph": "M",
                "name": "thread_name",
                "pid": processes[proc],
                "tid": tid,
                "args": {"name": thread},
            }
        )
    for span in spans:
        proc, thread = _split_track(span.track)
        args = {k: _jsonable(v) for k, v in sorted(span.attrs.items())}
        args["span_id"] = span.span_id
        if span.parent_id is not None:
            args["parent_id"] = span.parent_id
        if span.instant:
            # Zero-duration markers (e.g. cancelled DES events) export
            # as thread-scoped instants, never as open/dangling spans.
            events.append(
                {
                    "ph": "I",
                    "s": "t",
                    "name": span.name,
                    "cat": span.category or "instant",
                    "ts": span.start * scale,
                    "pid": processes[proc],
                    "tid": threads[(proc, thread)],
                    "args": args,
                }
            )
            continue
        events.append(
            {
                "ph": "X",
                "name": span.name,
                "cat": span.category or "span",
                "ts": span.start * scale,
                "dur": span.duration * scale,
                "pid": processes[proc],
                "tid": threads[(proc, thread)],
                "args": args,
            }
        )
    return events


def chrome_trace_dict(tracer: AnyTracer, profile: Union[Dict, None] = None) -> Dict:
    """The full Chrome trace-event document.

    ``profile`` (a profile document from
    :func:`repro.obs.profiler.profile_document`) rides along in the
    trace metadata, so one file carries both the merged timeline and
    the call-path attribution.
    """
    metadata: Dict = {"time_unit": tracer.time_unit, "tool": "pr-esp-repro"}
    if profile is not None:
        metadata["profile"] = profile
    return {
        "displayTimeUnit": "ms",
        "metadata": metadata,
        "traceEvents": chrome_trace_events(tracer),
    }


def chrome_trace_json(tracer: AnyTracer, profile: Union[Dict, None] = None) -> str:
    """Deterministic JSON text of the Chrome trace document."""
    return json.dumps(chrome_trace_dict(tracer, profile), sort_keys=True, indent=1)


def write_chrome_trace(
    path: str, tracer: AnyTracer, profile: Union[Dict, None] = None
) -> None:
    """Write the Chrome trace-event file to ``path``."""
    with open(path, "w") as handle:
        handle.write(chrome_trace_json(tracer, profile))
        handle.write("\n")


# ----------------------------------------------------------------------
def span_records(tracer: AnyTracer) -> List[Dict]:
    """Spans as plain dicts (the JSONL rows)."""
    records = []
    for span in tracer.spans:
        if not span.closed:
            continue
        record = {
            "span_id": span.span_id,
            "name": span.name,
            "category": span.category,
            "track": span.track,
            "start": span.start,
            "end": span.end,
            "duration": span.duration,
            "parent_id": span.parent_id,
        }
        if span.instant:
            record["instant"] = True
        if span.attrs:
            record["attrs"] = {
                k: _jsonable(v) for k, v in sorted(span.attrs.items())
            }
        records.append(record)
    return records


def merge_span_records(
    tracer: AnyTracer, records: List[Dict], worker: Union[str, None] = None
) -> None:
    """Re-record exported span records onto ``tracer`` (closed spans).

    The cross-process half of trace propagation: a pool worker exports
    its spans with :func:`span_records`, the parent replays them here.
    Parent/child links are remapped onto the parent tracer's span ids;
    ``worker`` (the worker process name) is stamped into each replayed
    span's attrs so merged traces stay attributable. No-op on a
    disabled tracer.
    """
    if not getattr(tracer, "enabled", False):
        return
    id_map: Dict[int, object] = {}
    for record in sorted(records, key=lambda r: r["span_id"]):
        attrs = dict(record.get("attrs", {}))
        if worker is not None:
            attrs["worker"] = worker
        span = tracer.record(
            record["name"],
            record["start"],
            record["end"],
            category=record.get("category", ""),
            track=record.get("track", "main/main"),
            parent=id_map.get(record.get("parent_id")),
            **attrs,
        )
        if span is not None:
            span.instant = bool(record.get("instant", False))
            id_map[record["span_id"]] = span


def spans_jsonl(tracer: AnyTracer) -> str:
    """One JSON object per line, one line per closed span."""
    return "\n".join(
        json.dumps(record, sort_keys=True) for record in span_records(tracer)
    )


def write_spans_jsonl(path: str, tracer: AnyTracer) -> None:
    """Write the JSONL span log to ``path``."""
    text = spans_jsonl(tracer)
    with open(path, "w") as handle:
        handle.write(text)
        if text:
            handle.write("\n")


# ----------------------------------------------------------------------
def metrics_dict(registry: Union[MetricsRegistry, NullMetricsRegistry]) -> Dict[str, float]:
    """The registry's flat snapshot (alias with exporter naming)."""
    return registry.snapshot()


def format_metric_value(value: float) -> str:
    """Round-trip-faithful rendering of one metric value.

    ``%g`` truncates to 6 significant digits — silently lossy for large
    counters and nanosecond-scale sums. Integral values render without
    the trailing ``.0`` (beyond 2**53 the float is integral but the
    int() round trip is no longer exact, so ``repr`` takes over).
    """
    as_float = float(value)
    if as_float != as_float or as_float in (float("inf"), float("-inf")):
        return repr(as_float)
    if as_float.is_integer() and abs(as_float) < 2**53:
        return str(int(as_float))
    return repr(as_float)


def metrics_lines(registry: Union[MetricsRegistry, NullMetricsRegistry]) -> List[str]:
    """Human-readable ``name value`` lines, name-ordered."""
    return [
        f"{name} {format_metric_value(value)}"
        for name, value in registry.snapshot().items()
    ]


# ----------------------------------------------------------------------
# Prometheus text exposition
# ----------------------------------------------------------------------
_PROM_INVALID = re.compile(r"[^a-zA-Z0-9_:]")
_PROM_LABEL_INVALID = re.compile(r"[^a-zA-Z0-9_]")

AnyRegistry = Union[MetricsRegistry, NullMetricsRegistry]


def prometheus_name(name: str) -> str:
    """A valid Prometheus metric name (dots and dashes become ``_``)."""
    sanitized = _PROM_INVALID.sub("_", name)
    if sanitized and sanitized[0].isdigit():
        sanitized = f"_{sanitized}"
    return sanitized


def _prom_label_name(name: str) -> str:
    sanitized = _PROM_LABEL_INVALID.sub("_", name)
    if sanitized and sanitized[0].isdigit():
        sanitized = f"_{sanitized}"
    return sanitized


def _prom_escape_label(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _prom_escape_help(value: str) -> str:
    return value.replace("\\", "\\\\").replace("\n", "\\n")


def _prom_labels(key: LabelKey, extra: Optional[List[Tuple[str, str]]] = None) -> str:
    pairs = list(key) + list(extra or [])
    if not pairs:
        return ""
    rendered = ",".join(
        f'{_prom_label_name(k)}="{_prom_escape_label(str(v))}"' for k, v in pairs
    )
    return f"{{{rendered}}}"


def _prom_value(value: float) -> str:
    as_float = float(value)
    if as_float == float("inf"):
        return "+Inf"
    if as_float == float("-inf"):
        return "-Inf"
    if as_float != as_float:
        return "NaN"
    return format_metric_value(as_float)


def prometheus_text(registry: AnyRegistry) -> str:
    """The registry in Prometheus text exposition format.

    Counters gain the conventional ``_total`` suffix, histograms
    export cumulative ``_bucket{le="..."}`` series (with ``+Inf``)
    plus ``_sum``/``_count``, and every family leads with its
    ``# HELP``/``# TYPE`` comments. Rendering is name-ordered and
    repr-faithful, so two identical seeded runs scrape byte-identical
    pages.
    """
    lines: List[str] = []
    for instrument in registry.instruments():
        base = prometheus_name(instrument.name)
        if instrument.description:
            lines.append(f"# HELP {base} {_prom_escape_help(instrument.description)}")
        if instrument.kind == "counter":
            lines.append(f"# TYPE {base} counter")
            # The conventional _total suffix, applied idempotently —
            # counters already named *_total keep a single suffix.
            sample = base if base.endswith("_total") else f"{base}_total"
            for key, value in instrument.items():
                lines.append(f"{sample}{_prom_labels(key)} {_prom_value(value)}")
        elif instrument.kind == "gauge":
            lines.append(f"# TYPE {base} gauge")
            for key, value in instrument.items():
                lines.append(f"{base}{_prom_labels(key)} {_prom_value(value)}")
        elif instrument.kind == "histogram":
            lines.append(f"# TYPE {base} histogram")
            for key, series in instrument.items():
                cumulative = 0
                for bound, count in zip(instrument.buckets, series.bucket_counts):
                    cumulative += count
                    labels = _prom_labels(key, extra=[("le", f"{bound:g}")])
                    lines.append(f"{base}_bucket{labels} {cumulative}")
                labels = _prom_labels(key, extra=[("le", "+Inf")])
                lines.append(f"{base}_bucket{labels} {series.count}")
                lines.append(
                    f"{base}_sum{_prom_labels(key)} {_prom_value(series.total)}"
                )
                lines.append(f"{base}_count{_prom_labels(key)} {series.count}")
        else:  # pragma: no cover - registries only hold the three kinds
            raise ValueError(f"cannot expose instrument kind {instrument.kind!r}")
    return "\n".join(lines) + ("\n" if lines else "")


def write_prometheus_text(path: str, registry: AnyRegistry) -> None:
    """Write the Prometheus exposition page to ``path``."""
    with open(path, "w") as handle:
        handle.write(prometheus_text(registry))


_PROM_SAMPLE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>.*)\})?"
    r"\s+(?P<value>\S+)"
    r"(?:\s+(?P<timestamp>-?\d+))?\s*$"
)
_PROM_LABEL = re.compile(
    r'(?P<name>[a-zA-Z_][a-zA-Z0-9_]*)="(?P<value>(?:[^"\\]|\\.)*)"'
)


def _prom_unescape(value: str) -> str:
    return (
        value.replace("\\n", "\n").replace('\\"', '"').replace("\\\\", "\\")
    )


def _prom_parse_value(text: str) -> float:
    if text == "+Inf":
        return float("inf")
    if text == "-Inf":
        return float("-inf")
    return float(text)


def parse_prometheus_text(text: str) -> Dict[str, Dict]:
    """Parse a Prometheus text-format page into metric families.

    Returns ``{family_name: {"type", "help", "samples"}}`` where each
    sample is ``{"name", "labels", "value"}``. Samples attach to the
    family whose ``# TYPE`` they follow (by the standard name-prefix
    convention — ``x_bucket``/``x_sum``/``x_count``/``x_total`` belong
    to ``x``); samples with no preceding family get one of their own.
    Raises ``ValueError`` on a malformed line, so tests using it as a
    round-trip check fail loudly on renderer bugs.
    """
    families: Dict[str, Dict] = {}
    current: Optional[str] = None

    def family(name: str) -> Dict:
        return families.setdefault(
            name, {"type": "untyped", "help": "", "samples": []}
        )

    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.strip()
        if not line:
            continue
        if line.startswith("#"):
            parts = line.split(None, 3)
            if len(parts) >= 3 and parts[1] in ("HELP", "TYPE"):
                name = parts[2]
                if parts[1] == "TYPE":
                    family(name)["type"] = parts[3] if len(parts) > 3 else "untyped"
                    current = name
                else:
                    family(name)["help"] = (
                        _prom_unescape(parts[3]) if len(parts) > 3 else ""
                    )
            continue
        match = _PROM_SAMPLE.match(line)
        if match is None:
            raise ValueError(f"line {lineno}: malformed sample {line!r}")
        name = match.group("name")
        labels: Dict[str, str] = {}
        label_text = match.group("labels")
        if label_text:
            consumed = 0
            for pair in _PROM_LABEL.finditer(label_text):
                labels[pair.group("name")] = _prom_unescape(pair.group("value"))
                consumed = pair.end()
            remainder = label_text[consumed:].strip().strip(",")
            if remainder:
                raise ValueError(f"line {lineno}: malformed labels {label_text!r}")
        owner = name
        if current is not None and (
            name == current or name.startswith(f"{current}_")
        ):
            owner = current
        family(owner)["samples"].append(
            {
                "name": name,
                "labels": labels,
                "value": _prom_parse_value(match.group("value")),
            }
        )
    return families


def prometheus_samples(text: str) -> Dict[str, float]:
    """Flat ``rendered-series -> value`` view of a parsed page.

    Series render as ``name{k=v,...}`` with sorted labels — the same
    shape as registry snapshot keys, which makes round-trip comparisons
    one dict equality.
    """
    flat: Dict[str, float] = {}
    for fam in parse_prometheus_text(text).values():
        for sample in fam["samples"]:
            rendered = sample["name"]
            if sample["labels"]:
                labels = ",".join(
                    f"{k}={v}" for k, v in sorted(sample["labels"].items())
                )
                rendered = f"{rendered}{{{labels}}}"
            flat[rendered] = sample["value"]
    return flat


# ----------------------------------------------------------------------
# OTLP-shaped metrics export
# ----------------------------------------------------------------------
#: Cumulative aggregation temporality (AGGREGATION_TEMPORALITY_CUMULATIVE).
_OTLP_CUMULATIVE = 2

#: The instrumentation scope stamped into every export.
_OTLP_SCOPE = {"name": "repro.obs", "version": "1"}


def _otlp_attributes(key: LabelKey) -> List[Dict]:
    return [
        {"key": name, "value": {"stringValue": str(value)}} for name, value in key
    ]


def _otlp_metric(instrument, time_unix_nano: int) -> Dict:
    """One OTLP ``Metric`` object for one registry instrument."""
    stamp = str(time_unix_nano)
    metric: Dict = {
        "name": instrument.name,
        "description": instrument.description,
        "unit": "",
    }
    if instrument.kind in ("counter", "gauge"):
        points = [
            {
                "attributes": _otlp_attributes(key),
                "timeUnixNano": stamp,
                "asDouble": float(value),
            }
            for key, value in instrument.items()
        ]
        if instrument.kind == "counter":
            metric["sum"] = {
                "dataPoints": points,
                "aggregationTemporality": _OTLP_CUMULATIVE,
                "isMonotonic": True,
            }
        else:
            metric["gauge"] = {"dataPoints": points}
        return metric
    if instrument.kind == "histogram":
        points = []
        for key, series in instrument.items():
            point = {
                "attributes": _otlp_attributes(key),
                "timeUnixNano": stamp,
                "count": str(series.count),
                "sum": float(series.total),
                "bucketCounts": [str(c) for c in series.bucket_counts],
                "explicitBounds": [float(b) for b in instrument.buckets],
            }
            if series.count:
                point["min"] = float(series.minimum)
                point["max"] = float(series.maximum)
            points.append(point)
        metric["histogram"] = {
            "dataPoints": points,
            "aggregationTemporality": _OTLP_CUMULATIVE,
        }
        return metric
    raise ValueError(  # pragma: no cover - registries only hold three kinds
        f"cannot export instrument kind {instrument.kind!r}"
    )


def _otlp_envelope(metrics: List[Dict], resource: Dict[str, str]) -> Dict:
    return {
        "resourceMetrics": [
            {
                "resource": {
                    "attributes": [
                        {"key": key, "value": {"stringValue": str(value)}}
                        for key, value in sorted(resource.items())
                    ]
                },
                "scopeMetrics": [
                    {"scope": dict(_OTLP_SCOPE), "metrics": metrics}
                ],
            }
        ]
    }


def otlp_metrics_dict(
    registry: AnyRegistry,
    time_s: float = 0.0,
    resource: Optional[Dict[str, str]] = None,
) -> Dict:
    """The registry as one OTLP ``ExportMetricsServiceRequest`` document.

    ``time_s`` is the caller's *simulated* instant — ``timeUnixNano``
    derives from it (never from a wall clock), so two identical seeded
    runs export byte-identical documents.
    """
    if resource is None:
        resource = {"service.name": "pr-esp-repro"}
    stamp = int(round(float(time_s) * 1e9))
    metrics = [
        _otlp_metric(instrument, stamp) for instrument in registry.instruments()
    ]
    return _otlp_envelope(metrics, resource)


def otlp_metrics_lines(
    registry: AnyRegistry,
    time_s: float = 0.0,
    resource: Optional[Dict[str, str]] = None,
) -> List[str]:
    """One JSON envelope per instrument — the JSONL rows.

    Each line is a complete, self-describing OTLP document (the shape
    the OpenTelemetry file exporter emits), so consumers can stream or
    ``jq`` one family at a time.
    """
    if resource is None:
        resource = {"service.name": "pr-esp-repro"}
    stamp = int(round(float(time_s) * 1e9))
    return [
        json.dumps(
            _otlp_envelope([_otlp_metric(instrument, stamp)], resource),
            sort_keys=True,
        )
        for instrument in registry.instruments()
    ]


def write_otlp_jsonl(
    path: str,
    registry: AnyRegistry,
    time_s: float = 0.0,
    resource: Optional[Dict[str, str]] = None,
) -> None:
    """Write the OTLP JSONL metrics log to ``path``."""
    lines = otlp_metrics_lines(registry, time_s=time_s, resource=resource)
    with open(path, "w") as handle:
        for line in lines:
            handle.write(line)
            handle.write("\n")
