"""Bridges between existing record types and the observability layer.

The executor's `ExecutionTimeline`, the manager's `RuntimeStats` and
the flow's `FlowResult` all pre-date the tracer/registry; these
adapters map them in **losslessly** so a Fig. 4 deployment produces
one merged trace (application-level task spans alongside the kernel's
protocol spans) and one registry that agrees with `summary_lines()`
by construction — both views read the same records.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List, Union

from repro.obs.metrics import MetricsRegistry, NullMetricsRegistry
from repro.obs.tracer import NullTracer, Span, Tracer

if TYPE_CHECKING:  # avoid a circular import; the bridge is duck-typed
    from repro.runtime.executor import ExecutionTimeline
    from repro.runtime.stats import RuntimeStats

AnyTracer = Union[Tracer, NullTracer]
AnyRegistry = Union[MetricsRegistry, NullMetricsRegistry]


def bridge_timeline(
    timeline: "ExecutionTimeline",
    tracer: AnyTracer,
    process: str = "app",
) -> List[Span]:
    """Record every `TimelineEvent` as a span — the application view.

    Tracks are ``"app/<worker>"`` (one per tile thread plus the CPU
    thread); categories are the timeline kinds (``exec``/``reconfig``/
    ``sw``) prefixed with ``app.`` so kernel-level spans of the same
    protocol step stay distinguishable in the merged trace. The bridge
    is lossless: one span per event, bounds copied verbatim.
    """
    spans: List[Span] = []
    for event in timeline.events:
        span = tracer.record(
            name=event.task,
            start=event.start_s,
            end=event.end_s,
            category=f"app.{event.kind}",
            track=f"{process}/{event.worker}",
            worker=event.worker,
            kind=event.kind,
        )
        if span is not None:
            spans.append(span)
    return spans


def publish_runtime_stats(stats: "RuntimeStats", registry: AnyRegistry) -> None:
    """Project `RuntimeStats` onto registry gauges.

    These are the exact numbers `summary_lines()` prints — published
    from the same aggregate object, so report and telemetry cannot
    disagree.
    """
    totals = registry.gauge(
        "runtime.totals", "whole-SoC aggregates of one deployment"
    )
    totals.set(stats.total_invocations, stat="invocations")
    totals.set(stats.total_reconfigurations, stat="reconfigurations")
    totals.set(stats.failed_attempts, stat="failed_attempts")
    totals.set(stats.icap_busy_s, stat="icap_busy_s")
    totals.set(stats.span_s, stat="span_s")
    totals.set(stats.icap_utilization, stat="icap_utilization")

    tile_gauge = registry.gauge("runtime.tile", "per-tile aggregates")
    for tile in stats.tiles.values():
        tile_gauge.set(tile.invocations, tile=tile.tile_name, stat="invocations")
        tile_gauge.set(
            tile.reconfigurations, tile=tile.tile_name, stat="reconfigurations"
        )
        tile_gauge.set(
            tile.failed_attempts, tile=tile.tile_name, stat="failed_attempts"
        )
        tile_gauge.set(tile.exec_time_s, tile=tile.tile_name, stat="exec_s")
        tile_gauge.set(tile.reconfig_time_s, tile=tile.tile_name, stat="reconfig_s")
        tile_gauge.set(tile.wait_time_s, tile=tile.tile_name, stat="wait_s")
        tile_gauge.set(tile.reconfig_share, tile=tile.tile_name, stat="reconfig_share")
        tile_gauge.set(tile.mean_wait_s, tile=tile.tile_name, stat="mean_wait_s")
