"""A clock-injected, bounded time-series store over metrics snapshots.

The :class:`~repro.obs.metrics.MetricsRegistry` answers "what are the
counters *now*"; the :class:`TelemetryStore` answers "how did they get
there": it keeps a fixed-capacity ring of periodic registry snapshots
plus a bounded per-series history, and derives windowed deltas and
rates from them. This is the substrate the SLO tracker and the
``repro dashboard`` verb read, and the surface a future multi-tenant
service daemon will account per-tenant quotas against.

Like every obs layer the store never reads a wall clock. Sample times
come from an injected clock (the dashboard attaches the store to an
:class:`~repro.obs.events.EventBus` and stamps samples from the
events' own simulated-seconds timestamps); without a clock the store
falls back to a deterministic sample counter, so two identical seeded
runs produce byte-identical stores.

Retention is two-level, both bounded:

* the **snapshot ring** keeps the last ``capacity`` full snapshots
  (drop-oldest, drops counted) — the dashboard's replay source;
* the **per-series history** keeps the last ``series_capacity`` points
  of every label-set series independently, so a chatty series (one
  request's counter) cannot evict a quiet one's history.
"""

from __future__ import annotations

import fnmatch
from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Deque, Dict, List, Optional, Tuple

from repro.errors import PrEspError


class TelemetryStoreError(PrEspError):
    """Misuse of the telemetry store API (bad capacity or window)."""


@dataclass(frozen=True)
class Sample:
    """One recorded registry snapshot at one instant."""

    time: float
    values: Dict[str, float] = field(default_factory=dict)

    def get(self, key: str, default: float = 0.0) -> float:
        return self.values.get(key, default)


def _snapshot_of(source) -> Dict[str, float]:
    """A plain snapshot dict from a registry or a ready-made dict."""
    if isinstance(source, dict):
        return dict(source)
    snapshot = getattr(source, "snapshot", None)
    if callable(snapshot):
        return snapshot()
    raise TelemetryStoreError(
        f"cannot snapshot {type(source).__name__}: pass a registry or a dict"
    )


class TelemetryStore:
    """Bounded ring of metrics snapshots with windowed queries."""

    def __init__(
        self,
        capacity: int = 256,
        series_capacity: int = 1024,
        clock: Optional[Callable[[], float]] = None,
    ) -> None:
        if capacity <= 0:
            raise TelemetryStoreError(f"snapshot capacity must be positive: {capacity}")
        if series_capacity <= 0:
            raise TelemetryStoreError(
                f"series capacity must be positive: {series_capacity}"
            )
        self.capacity = capacity
        self.series_capacity = series_capacity
        self._clock = clock
        self._ring: Deque[Sample] = deque(maxlen=capacity)
        self._series: Dict[str, Deque[Tuple[float, float]]] = {}
        #: Snapshots evicted from the ring (per-series history may
        #: still hold their points — the two tiers age independently).
        self.dropped = 0
        #: Total snapshots ever recorded.
        self.recorded = 0

    # ------------------------------------------------------------------
    # recording
    # ------------------------------------------------------------------
    def use_clock(self, clock: Callable[[], float]) -> None:
        """Rebind the fallback time source."""
        self._clock = clock

    def _next_time(self) -> float:
        if self._clock is not None:
            return float(self._clock())
        # Deterministic fallback: the sample index is the timestamp.
        return float(self.recorded)

    def record(self, source, time: Optional[float] = None) -> Sample:
        """Snapshot ``source`` (registry or dict) at ``time`` (or now)."""
        when = self._next_time() if time is None else float(time)
        last = self._ring[-1].time if self._ring else None
        if last is not None and when < last:
            raise TelemetryStoreError(
                f"sample time {when} precedes the latest sample {last}"
            )
        sample = Sample(time=when, values=_snapshot_of(source))
        if len(self._ring) == self.capacity:
            self.dropped += 1
        self._ring.append(sample)
        self.recorded += 1
        for key, value in sample.values.items():
            series = self._series.get(key)
            if series is None:
                series = self._series[key] = deque(maxlen=self.series_capacity)
            series.append((when, float(value)))
        return sample

    def attach(self, bus, registry, interval: float = 0.0) -> Callable:
        """Record periodic snapshots driven by a bus's event stream.

        Subscribes a catch-all listener: whenever an event's timestamp
        has advanced at least ``interval`` past the last recorded
        sample (or on the first event), the registry is snapshotted at
        the *event's* time — the store rides the emitters' own clock,
        so a seeded run records an identical sample sequence every
        time. Returns the subscriber (pass to ``bus.unsubscribe``).
        """
        if interval < 0:
            raise TelemetryStoreError(f"interval must be >= 0: {interval}")
        state = {"last": None}

        def sampler(event) -> None:
            last = state["last"]
            if last is not None and event.time < last + interval:
                return
            # Never step backwards: flow events ride a different clock
            # (modelled CAD minutes) than runtime events (DES seconds).
            if self._ring and event.time < self._ring[-1].time:
                return
            state["last"] = event.time
            self.record(registry, time=event.time)

        bus.subscribe(sampler)
        return sampler

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._ring)

    def latest(self) -> Optional[Sample]:
        """The most recent sample (None when empty)."""
        return self._ring[-1] if self._ring else None

    def samples(self, window_s: Optional[float] = None) -> List[Sample]:
        """Buffered samples oldest-first (optionally the last window)."""
        if window_s is None:
            return list(self._ring)
        if window_s < 0:
            raise TelemetryStoreError(f"window must be >= 0: {window_s}")
        if not self._ring:
            return []
        horizon = self._ring[-1].time - window_s
        return [s for s in self._ring if s.time >= horizon]

    def window(self, start: float, end: float) -> List[Sample]:
        """Samples with ``start <= time <= end``, oldest-first."""
        if end < start:
            raise TelemetryStoreError(f"window end {end} precedes start {start}")
        return [s for s in self._ring if start <= s.time <= end]

    def keys(self, pattern: Optional[str] = None) -> List[str]:
        """Known series keys, sorted (optionally fnmatch-filtered)."""
        names = sorted(self._series)
        if pattern is None:
            return names
        return [name for name in names if fnmatch.fnmatchcase(name, pattern)]

    def series(
        self, key: str, window_s: Optional[float] = None
    ) -> List[Tuple[float, float]]:
        """``(time, value)`` points of one series, oldest-first."""
        points = list(self._series.get(key, ()))
        if window_s is None or not points:
            return points
        horizon = points[-1][0] - window_s
        return [(t, v) for t, v in points if t >= horizon]

    def delta(self, key: str, window_s: Optional[float] = None) -> float:
        """last - first value of a series over the window (0 if < 2 points)."""
        points = self.series(key, window_s)
        if len(points) < 2:
            return 0.0
        return points[-1][1] - points[0][1]

    def rate(self, key: str, window_s: Optional[float] = None) -> float:
        """Windowed delta per unit time (0 for a degenerate window)."""
        points = self.series(key, window_s)
        if len(points) < 2:
            return 0.0
        elapsed = points[-1][0] - points[0][0]
        if elapsed <= 0:
            return 0.0
        return (points[-1][1] - points[0][1]) / elapsed

    def aggregate(
        self, pattern: str, sample: Optional[Sample] = None, how: str = "sum"
    ) -> Optional[float]:
        """Fold one sample's values matching ``pattern`` (fnmatch).

        ``how`` is ``"sum"`` or ``"max"``. Defaults to the latest
        sample; returns None when the sample has no matching key — the
        caller distinguishes "no data yet" from a true zero.
        """
        if how not in ("sum", "max"):
            raise TelemetryStoreError(f"unknown aggregation {how!r}")
        if sample is None:
            sample = self.latest()
        if sample is None:
            return None
        matched = [
            value
            for key, value in sample.values.items()
            if fnmatch.fnmatchcase(key, pattern)
        ]
        if not matched:
            return None
        return sum(matched) if how == "sum" else max(matched)

    def to_dict(self) -> Dict:
        """JSON-serializable view (dashboard ``--json``)."""
        return {
            "capacity": self.capacity,
            "series_capacity": self.series_capacity,
            "recorded": self.recorded,
            "buffered": len(self._ring),
            "dropped": self.dropped,
            "series": len(self._series),
            "span": (
                [self._ring[0].time, self._ring[-1].time] if self._ring else None
            ),
        }
