"""Request-scoped telemetry context with deterministic IDs.

Every other obs layer answers a question about *one process*: spans,
events, metric samples and profile leaves are all process-global, so
two concurrent ``repro.api`` calls through one platform are
indistinguishable in every export. :class:`TelemetryContext` fixes the
join key: a small immutable value carrying a ``request_id`` and a
``tenant``, activated around each platform verb and propagated with
:mod:`contextvars` — the live tracer/bus/registry/profiler stamp the
current context onto everything they record, so every telemetry row of
a request is joinable on ``request_id`` without threading an extra
argument through every layer.

Determinism is non-negotiable (the whole repo's exports are
byte-stable across seeded runs), so IDs never come from a wall clock
or ``uuid4``: a :class:`RequestIdFactory` derives a short seed hash
once and then counts — ``req-<hash8>-<n>`` — and the same seed always
mints the same sequence. Cross-process propagation rides the existing
:class:`~repro.obs.profiler.ProfileCapsule` path: the context pickles
into each pool work item and the worker re-activates it, so
worker-side spans and log records stay attributable.

The null paths (``NULL_TRACER`` et al.) never consult the context
variable at all — an *active* context with *disabled* instrumentation
costs exactly nothing, which keeps the DES kernel's uninstrumented
``_run_fast`` loop selected.
"""

from __future__ import annotations

import contextlib
import contextvars
import hashlib
import threading
from dataclasses import dataclass, field, replace
from typing import Dict, Iterator, Optional

#: Default tenant of contexts minted without an explicit one.
DEFAULT_TENANT = "default"

#: The active context of the current thread/task (None = unattributed).
_CURRENT: contextvars.ContextVar[Optional["TelemetryContext"]] = (
    contextvars.ContextVar("repro_telemetry_context", default=None)
)


@dataclass(frozen=True)
class TelemetryContext:
    """One request's identity, carried through every telemetry layer.

    ``request_id`` is the join key of all exports; ``tenant`` is the
    admission/quota identity a multi-tenant service accounts against;
    ``attrs`` carries free-form propagated baggage (verb, batch index).
    Instances are immutable and picklable — they cross the
    ``BatchBuilder`` pool boundary inside ``ProfileCapsule``.
    """

    request_id: str
    tenant: str = DEFAULT_TENANT
    attrs: Dict[str, str] = field(default_factory=dict)

    def child(self, suffix: str) -> "TelemetryContext":
        """A sub-request context: ``<request_id>/<suffix>``.

        The slash-joined ID keeps children joinable to their parent by
        prefix (a batch's items roll up to the batch request).
        """
        return replace(self, request_id=f"{self.request_id}/{suffix}")

    def with_attrs(self, **attrs: str) -> "TelemetryContext":
        """A copy with extra baggage attributes merged in."""
        merged = dict(self.attrs)
        merged.update({str(k): str(v) for k, v in attrs.items()})
        return replace(self, attrs=merged)

    def labels(self) -> Dict[str, str]:
        """The metric labels this context implies (request + tenant)."""
        return {"request": self.request_id, "tenant": self.tenant}

    def __str__(self) -> str:
        return f"{self.tenant}:{self.request_id}"


class RequestIdFactory:
    """Deterministic, seeded request-ID minting.

    ``mint("deploy")`` → ``TelemetryContext("deploy-<hash8>-0001")``
    where ``hash8`` is derived from the seed and tenant once — never
    from a wall clock or PRNG — so two runs of the same seeded workload
    mint identical ID sequences and their telemetry diffs clean.
    """

    def __init__(self, seed: int = 0, tenant: str = DEFAULT_TENANT) -> None:
        self.seed = int(seed)
        self.tenant = str(tenant)
        digest = hashlib.sha256(
            f"{self.seed}:{self.tenant}".encode()
        ).hexdigest()
        self._prefix = digest[:8]
        self._count = 0
        # Concurrent platform verbs mint from one shared factory; the
        # lock keeps the sequence gap-free (IDs stay unique, though the
        # thread→number mapping is scheduler-dependent).
        self._lock = threading.Lock()

    @property
    def minted(self) -> int:
        """How many contexts this factory has handed out."""
        return self._count

    def mint(self, verb: str = "request") -> TelemetryContext:
        """The next context in the deterministic sequence."""
        with self._lock:
            self._count += 1
            count = self._count
        return TelemetryContext(
            request_id=f"{verb}-{self._prefix}-{count:04d}",
            tenant=self.tenant,
            attrs={"verb": str(verb)},
        )


# ----------------------------------------------------------------------
# contextvars propagation
# ----------------------------------------------------------------------
def current_context() -> Optional[TelemetryContext]:
    """The active context of this thread/task, or None."""
    return _CURRENT.get()


def current_request_id() -> Optional[str]:
    """The active request ID, or None when unattributed."""
    context = _CURRENT.get()
    return context.request_id if context is not None else None


@contextlib.contextmanager
def activate(context: Optional[TelemetryContext]) -> Iterator[Optional[TelemetryContext]]:
    """Make ``context`` current for the ``with`` body (None = no-op).

    Restores the previous context on exit, so nested requests (a
    ``compare`` that calls ``build``) unwind correctly.
    """
    if context is None:
        yield None
        return
    token = _CURRENT.set(context)
    try:
        yield context
    finally:
        _CURRENT.reset(token)


def bind(context: Optional[TelemetryContext]) -> Optional[contextvars.Token]:
    """Imperatively set the current context; pair with :func:`unbind`.

    The pool-worker form of :func:`activate` — ``BatchBuilder`` workers
    activate the shipped capsule context around one build.
    """
    if context is None:
        return None
    return _CURRENT.set(context)


def unbind(token: Optional[contextvars.Token]) -> None:
    """Undo a :func:`bind` (None token = no-op)."""
    if token is not None:
        _CURRENT.reset(token)
