"""A typed in-process event bus with a bounded ring buffer.

Spans and metrics answer "how long" and "how many"; the event bus
answers "what happened, in order". Instrumented layers emit small
typed :class:`Event` records — reconfiguration lifecycle steps from
the runtime manager, stage and cache transitions from the flow, and
congestion watermarks from the NoC — and any number of subscribers
(the :class:`~repro.obs.health.HealthMonitor`, tests, ad-hoc
listeners) observe them live.

The bus itself stays bounded: the last ``capacity`` events are kept in
a ring buffer (drop-oldest), and every drop is counted, so a
long-running deployment can always answer "what were the last N things
the kernel did" without the telemetry growing with the run. Like the
tracer, the bus never reads a wall clock — emitters stamp events from
their own clock (DES seconds, modelled CAD minutes), or the bus falls
back to an injected clock callable.

``NULL_EVENTS`` is the zero-overhead disabled path instrumented code
defaults to, mirroring ``NULL_TRACER``/``NULL_METRICS``.

When a :class:`~repro.obs.context.TelemetryContext` is active, every
emitted event carries its ``request_id`` in ``attrs`` (an explicit
``request_id`` attr wins), so event streams from concurrent requests
stay separable. The null bus never consults the context variable.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Deque, Dict, Iterable, List, Optional, Tuple

from repro.errors import PrEspError
from repro.obs.context import current_request_id


class EventBusError(PrEspError):
    """Misuse of the event bus API (bad capacity, unknown subscriber)."""


# ----------------------------------------------------------------------
# well-known event kinds
# ----------------------------------------------------------------------
#: Runtime manager: a thread asked for a tile's lock.
LOCK_REQUESTED = "tile.lock_requested"
#: Runtime manager: the lock was granted (attrs carry ``wait_s``).
LOCK_ACQUIRED = "tile.lock_acquired"
#: Runtime manager: a reconfiguration was requested for a tile.
RECONFIG_REQUESTED = "reconfig.requested"
#: Runtime manager: the PRC started streaming the bitstream.
RECONFIG_STARTED = "reconfig.started"
#: Runtime manager: the region holds the new mode (attrs: ``duration_s``).
RECONFIG_COMPLETED = "reconfig.completed"
#: Runtime manager: a transfer attempt failed (attrs: ``abandoned``).
RECONFIG_FAILED = "reconfig.failed"
#: Runtime manager: a tile's driver was swapped (attrs: ``driver``).
DRIVER_SWAPPED = "driver.swapped"
#: Runtime manager: an abandoned mode was replaced by the tile's
#: last-known-good bitstream (attrs: ``mode``, ``failed_mode``).
RECONFIG_FALLBACK = "reconfig.fallback"
#: Runtime manager: a kernel invocation hung and the watchdog fired
#: (attrs: ``mode``, ``attempts``).
KERNEL_HUNG = "kernel.hung"
#: Runtime manager: a persistently failing tile was quarantined
#: (attrs: ``reason``, ``blanked``, ``abandoned_ops``).
TILE_QUARANTINED = "tile.quarantined"
#: Executor: an instance was re-planned off a quarantined tile
#: (attrs: ``task``, ``from_tile``, ``to``).
SCHED_FAILOVER = "sched.failover"
#: Flow: a Fig. 1 stage started (time in modelled CAD minutes).
FLOW_STAGE_STARTED = "flow.stage_started"
#: Flow: a Fig. 1 stage finished (attrs: ``wall_minutes``, ``detail``).
FLOW_STAGE_FINISHED = "flow.stage_finished"
#: Flow: a stage was restored from a checkpoint instead of re-running
#: (attrs: ``wall_minutes``, ``detail``).
FLOW_STAGE_RESUMED = "flow.stage_resumed"
#: Flow: a stage's outputs were persisted to the checkpoint manifest.
FLOW_CHECKPOINT_SAVED = "flow.checkpoint_saved"
#: Flow: a CAD job attempt failed and will be retried
#: (attrs: ``job``, ``attempt``, ``backoff_minutes``).
CAD_JOB_RETRIED = "flow.job_retried"
#: Flow: a CAD job exhausted its retry budget
#: (attrs: ``job``, ``attempts``, ``minutes_burned``).
CAD_JOB_FAILED = "flow.job_failed"
#: Flow: the build completed without one or more RPs (attrs: ``rps``).
FLOW_DEGRADED = "flow.degraded"
#: Build service: a request was served from the flow cache.
CACHE_HIT = "flow.cache_hit"
#: Build service: a request missed the flow cache and was built.
CACHE_MISS = "flow.cache_miss"
#: NoC: a packet stalled on busy links beyond the watermark
#: (attrs: ``stall_cycles``, ``watermark_cycles``).
NOC_CONGESTION = "noc.congestion"
#: Service: a job exhausted its attempt budget and was dead-lettered
#: (attrs: ``tenant``, ``attempts``, ``reason``).
SERVICE_JOB_DEAD = "service.job_dead"
#: Service: a job was requeued — crash recovery, watchdog timeout, or
#: a manual dead-letter revive (attrs: ``tenant``, ``manual``).
SERVICE_JOB_REQUEUED = "service.job_requeued"
#: Service: the watchdog abandoned an attempt past its deadline
#: (attrs: ``tenant``, ``attempt``, ``deadline_s``).
SERVICE_JOB_TIMED_OUT = "service.job_timed_out"
#: Service: the admission breaker opened (attrs: ``reason``).
SERVICE_BREAKER_OPENED = "service.breaker_opened"
#: Service: the admission breaker re-closed after successful probes.
SERVICE_BREAKER_CLOSED = "service.breaker_closed"


@dataclass(frozen=True)
class Event:
    """One emitted occurrence.

    ``time`` is in the emitter's own unit (DES simulated seconds for
    the runtime kinds, modelled CAD minutes for the flow kinds);
    ``seq`` is a bus-global monotonically increasing sequence number
    that survives ring-buffer drops, so gaps are detectable.
    """

    seq: int
    kind: str
    time: float
    source: str = ""
    attrs: Dict[str, object] = field(default_factory=dict)

    def __str__(self) -> str:
        rendered = " ".join(f"{k}={v}" for k, v in sorted(self.attrs.items()))
        body = f"[{self.time:.6f}] {self.kind} {self.source}"
        return f"{body} {rendered}".rstrip()


Subscriber = Callable[[Event], None]


class EventBus:
    """Registers subscribers and keeps the last ``capacity`` events.

    Subscribers see every emitted event (synchronously, in emission
    order) regardless of ring-buffer drops — the ring bounds *storage*,
    not *delivery*. A subscriber registered for specific ``kinds`` only
    receives those.
    """

    enabled = True

    def __init__(
        self,
        capacity: int = 1024,
        clock: Optional[Callable[[], float]] = None,
    ) -> None:
        if capacity <= 0:
            raise EventBusError(f"ring buffer capacity must be positive: {capacity}")
        self.capacity = capacity
        self._clock = clock if clock is not None else (lambda: 0.0)
        self._ring: Deque[Event] = deque(maxlen=capacity)
        self._subscribers: List[Tuple[Subscriber, Optional[frozenset]]] = []
        self._seq = 0
        #: Events evicted from the ring buffer (never delivered late —
        #: subscribers saw them live; only the stored history is lossy).
        self.dropped = 0
        #: Total events ever emitted on this bus.
        self.emitted = 0

    # ------------------------------------------------------------------
    def use_clock(self, clock: Callable[[], float]) -> None:
        """Rebind the fallback time source (e.g. to a fresh simulator)."""
        self._clock = clock

    def subscribe(
        self, subscriber: Subscriber, kinds: Optional[Iterable[str]] = None
    ) -> Subscriber:
        """Register ``subscriber`` for all events (or just ``kinds``)."""
        key = frozenset(kinds) if kinds is not None else None
        self._subscribers.append((subscriber, key))
        return subscriber

    def unsubscribe(self, subscriber: Subscriber) -> None:
        """Remove every registration of ``subscriber``."""
        remaining = [(s, k) for s, k in self._subscribers if s is not subscriber]
        if len(remaining) == len(self._subscribers):
            raise EventBusError("subscriber was never registered")
        self._subscribers = remaining

    # ------------------------------------------------------------------
    def emit(
        self,
        kind: str,
        time: Optional[float] = None,
        source: str = "",
        **attrs,
    ) -> Event:
        """Emit one event; returns it after delivering to subscribers."""
        request_id = current_request_id()
        if request_id is not None and "request_id" not in attrs:
            attrs["request_id"] = request_id
        event = Event(
            seq=self._seq,
            kind=kind,
            time=self._clock() if time is None else time,
            source=source,
            attrs=attrs,
        )
        self._seq += 1
        self.emitted += 1
        if len(self._ring) == self.capacity:
            self.dropped += 1
        self._ring.append(event)
        for subscriber, kinds in self._subscribers:
            if kinds is None or kind in kinds:
                subscriber(event)
        return event

    # ------------------------------------------------------------------
    def events(self, kind: Optional[str] = None) -> List[Event]:
        """Buffered events, oldest first (optionally one kind)."""
        if kind is None:
            return list(self._ring)
        return [e for e in self._ring if e.kind == kind]

    def last(self, count: int = 10) -> List[Event]:
        """The most recent ``count`` buffered events, oldest first."""
        if count <= 0:
            return []
        return list(self._ring)[-count:]

    def clear(self) -> None:
        """Empty the ring buffer (counters and subscribers survive)."""
        self._ring.clear()

    def __len__(self) -> int:
        return len(self._ring)


class NullEventBus:
    """The zero-overhead disabled bus: no events, no storage, ever."""

    enabled = False
    capacity = 0
    dropped = 0
    emitted = 0

    __slots__ = ()

    def use_clock(self, clock) -> None:
        pass

    def subscribe(self, subscriber, kinds=None):
        return subscriber

    def unsubscribe(self, subscriber) -> None:
        pass

    def emit(self, kind, time=None, source="", **attrs) -> None:
        return None

    def events(self, kind=None) -> list:
        return []

    def last(self, count: int = 10) -> list:
        return []

    def clear(self) -> None:
        pass

    def __len__(self) -> int:
        return 0


#: The process-wide disabled bus instrumented code defaults to.
NULL_EVENTS = NullEventBus()
