"""Structured logging wiring for the ``repro`` package.

All library output is routed through the stdlib ``logging`` tree
rooted at ``"repro"`` — bare ``print`` calls are reserved for the CLI and
report renderers. The CLI's ``-v``/``--log-level`` flag calls
:func:`configure_logging`; libraries call :func:`get_logger` at import
time and stay silent until a handler is attached.

Every record carries a ``request_id`` field injected by a filter from
the active :class:`~repro.obs.context.TelemetryContext` (``-`` when no
request is active), so log lines from concurrent platform verbs — and
from pool workers, which re-activate the shipped capsule context — are
attributable without touching any call site.
"""

from __future__ import annotations

import logging
import sys

from repro.obs.context import current_request_id

#: Root logger name of the package.
ROOT = "repro"

#: Accepted ``--log-level`` values.
LEVELS = ("debug", "info", "warning", "error")

#: The ``request_id`` stamped on records emitted outside any request.
NO_REQUEST = "-"

#: One-line format: level initial, logger, request, message.
LOG_FORMAT = "%(levelname).1s %(name)s [%(request_id)s]: %(message)s"


class RequestIdFilter(logging.Filter):
    """Stamps the active request ID onto every record.

    Implemented as a filter (not a formatter) so third-party handlers
    attached to the ``repro`` tree see the field too; it never rejects
    a record. An existing ``request_id`` attribute is respected.
    """

    def filter(self, record: logging.LogRecord) -> bool:
        if not hasattr(record, "request_id"):
            record.request_id = current_request_id() or NO_REQUEST
        return True


def get_logger(name: str) -> logging.Logger:
    """A logger under the ``repro`` tree (``repro.flow``, ...)."""
    if name == ROOT or name.startswith(ROOT + "."):
        return logging.getLogger(name)
    return logging.getLogger(f"{ROOT}.{name}")


def level_from_verbosity(verbose: int) -> str:
    """Map ``-v`` counts onto level names (0→warning, 1→info, 2+→debug)."""
    if verbose <= 0:
        return "warning"
    if verbose == 1:
        return "info"
    return "debug"


def configure_logging(
    level: str = "warning", stream=None, force: bool = False
) -> logging.Logger:
    """Attach a stderr handler to the ``repro`` root at ``level``.

    Idempotent: repeated calls adjust the level of the existing
    handler instead of stacking new ones (``force=True`` replaces it).
    """
    if level not in LEVELS:
        raise ValueError(f"unknown log level {level!r}; use one of {LEVELS}")
    root = logging.getLogger(ROOT)
    numeric = getattr(logging, level.upper())
    root.setLevel(numeric)

    existing = [
        h for h in root.handlers if getattr(h, "_repro_handler", False)
    ]
    if existing and not force:
        for handler in existing:
            handler.setLevel(numeric)
        return root
    for handler in existing:
        root.removeHandler(handler)

    handler = logging.StreamHandler(stream if stream is not None else sys.stderr)
    handler.setLevel(numeric)
    handler.setFormatter(logging.Formatter(LOG_FORMAT))
    handler.addFilter(RequestIdFilter())
    handler._repro_handler = True
    root.addHandler(handler)
    root.propagate = False
    return root
