"""Deterministic hierarchical call-path profiling.

The tracer answers "when did this span run"; the profiler answers
"where does the time go, summed over every call". It keeps a call-path
tree: each node is one path of frame names (``deploy.soc_x`` →
``dispatch:Timeout`` → ``Process._resume``) accumulating a call count
and two time axes per path:

* **host seconds** — wall time measured on an injectable host clock
  (``time.perf_counter`` by default; tests inject a fake). Frames
  store *self* time — the elapsed interval minus the intervals of the
  frames nested inside it — so the self times of a tree sum exactly to
  the root's inclusive time by construction.
* **simulated seconds** — the modelled time of the layer, attributed
  explicitly (:meth:`Profiler.add_sim`, :meth:`Profiler.record_leaf`):
  the DES kernel charges each clock advance to the event dispatch that
  caused it, the CAD flow charges modelled minutes (×60) to its stage
  and tool-job frames. Host time answers "what is slow to *run*";
  simulated time answers "what is slow in the *modelled system*".

Like every obs layer the profiler is deterministic: paths, call
counts and simulated seconds are identical run to run for a seeded
workload (:func:`canonical_tree` strips the host-clock and worker
fields so tests can compare trees across runs and across process
pools). ``NULL_PROFILER`` is the zero-overhead disabled path; hot
loops guard on ``profiler.enabled`` and skip even the no-op calls.

Cross-process propagation: a :class:`ProfileCapsule` is pickled into
each ``BatchBuilder`` work item, the worker activates a fresh profiler
(and tracer), and the parent merges the returned payload back under
the request's path — tagged with the worker id as a non-canonical
annotation — so a pooled sweep produces one coherent profile instead
of per-fork blind spots.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

from repro.errors import PrEspError
from repro.obs.context import TelemetryContext, current_request_id


class ProfilerError(PrEspError):
    """Misuse of the profiling API (unbalanced frames, open tree)."""


#: Path separator of the collapsed-stack export (flamegraph.pl format).
PATH_SEP = ";"

#: Filename prefix of machine-readable profile documents.
PROFILE_PREFIX = "PROFILE_"


class ProfileNode:
    """One call path: self-time accumulators plus named children.

    ``host_s`` and ``sim_s`` hold *self* contributions; the inclusive
    values are derived at export time (own + children), which keeps
    merging worker subtrees a plain recursive addition.
    """

    __slots__ = ("name", "calls", "host_s", "sim_s", "children", "workers", "requests")

    def __init__(self, name: str) -> None:
        self.name = name
        self.calls = 0
        self.host_s = 0.0
        self.sim_s = 0.0
        self.children: Dict[str, "ProfileNode"] = {}
        self.workers: set = set()
        # Request IDs that touched this path — a non-canonical
        # annotation like `workers`: joinable in the JSON export,
        # stripped by canonical_tree (the same seeded workload run
        # under different request IDs keeps an identical tree).
        self.requests: set = set()

    def child(self, name: str) -> "ProfileNode":
        """The named child, created on first use."""
        node = self.children.get(name)
        if node is None:
            node = ProfileNode(name)
            self.children[name] = node
        return node


@dataclass(frozen=True)
class ProfileCapsule:
    """Picklable profiling context carried into pool workers.

    ``path`` is where the parent will graft the worker's subtree;
    ``profile``/``trace`` say which hooks the worker should activate.
    A disabled capsule (the default) activates nothing.
    """

    path: Tuple[str, ...] = ()
    profile: bool = False
    trace: bool = False
    #: The request context the worker re-activates around its build, so
    #: worker-side spans/metrics/log records stay attributable.
    context: Optional[TelemetryContext] = None

    def activate(self) -> "Profiler":
        """A fresh worker-side profiler (or the null one when off)."""
        return Profiler() if self.profile else NULL_PROFILER


class Profiler:
    """Collects a call-path tree against an injectable host clock."""

    enabled = True

    def __init__(self, host_clock: Optional[Callable[[], float]] = None) -> None:
        self._host = host_clock if host_clock is not None else time.perf_counter
        self.root = ProfileNode("root")
        # Stack entries are [node, start, child_host_accumulator]; the
        # root entry never pops, so begin/end always have a parent.
        self._stack: List[List] = [[self.root, 0.0, 0.0]]

    # ------------------------------------------------------------------
    # frames (host-clocked)
    # ------------------------------------------------------------------
    def begin(self, name: str) -> ProfileNode:
        """Open a frame; it nests under the innermost open frame."""
        node = self._stack[-1][0].child(name)
        request_id = current_request_id()
        if request_id is not None:
            node.requests.add(request_id)
        self._stack.append([node, self._host(), 0.0])
        return node

    def end(self) -> None:
        """Close the innermost open frame, charging its self time."""
        if len(self._stack) == 1:
            raise ProfilerError("end() without a matching begin()")
        node, start, child_host = self._stack.pop()
        elapsed = self._host() - start
        node.calls += 1
        node.host_s += elapsed - child_host
        # Charge the full interval to the parent's child accumulator so
        # the parent's self time excludes it.
        self._stack[-1][2] += elapsed

    class _Frame:
        __slots__ = ("_profiler", "_name")

        def __init__(self, profiler, name):
            self._profiler = profiler
            self._name = name

        def __enter__(self) -> ProfileNode:
            return self._profiler.begin(self._name)

        def __exit__(self, exc_type, exc, tb) -> bool:
            self._profiler.end()
            return False

    def frame(self, name: str) -> "_Frame":
        """Context manager: ``with profiler.frame("flow.synthesis"):``."""
        return self._Frame(self, name)

    # ------------------------------------------------------------------
    # simulated/modelled time (explicitly attributed)
    # ------------------------------------------------------------------
    def add_sim(self, seconds: float) -> None:
        """Attribute simulated/modelled seconds to the open frame."""
        if seconds < 0:
            raise ProfilerError(f"negative simulated time: {seconds}")
        self._stack[-1][0].sim_s += seconds

    def record_leaf(
        self,
        path: Union[str, Sequence[str]],
        sim_s: float = 0.0,
        calls: int = 1,
        anchor: str = "current",
    ) -> ProfileNode:
        """Attribute counts/simulated time to a path without host timing.

        ``anchor="current"`` resolves the path under the innermost open
        frame (post-hoc attribution inside the running operation);
        ``anchor="root"`` pins it to the tree root — used for semantic
        views like the runtime recovery ladder, whose events surface
        under arbitrary kernel-callback paths.
        """
        if sim_s < 0:
            raise ProfilerError(f"negative simulated time: {sim_s}")
        if anchor not in ("current", "root"):
            raise ProfilerError(f"unknown anchor {anchor!r}")
        node = self.root if anchor == "root" else self._stack[-1][0]
        names = (path,) if isinstance(path, str) else tuple(path)
        for name in names:
            node = node.child(name)
        node.calls += calls
        node.sim_s += sim_s
        request_id = current_request_id()
        if request_id is not None:
            node.requests.add(request_id)
        return node

    # ------------------------------------------------------------------
    # introspection / export
    # ------------------------------------------------------------------
    @property
    def open_frames(self) -> int:
        """Frames begun but not yet ended."""
        return len(self._stack) - 1

    def current_path(self) -> Tuple[str, ...]:
        """Names of the open frames, outermost first."""
        return tuple(entry[0].name for entry in self._stack[1:])

    def payload(self) -> Dict:
        """The raw (self-time) tree as a picklable dict.

        The wire format of cross-process merging; ``host_s``/``sim_s``
        are *self* values, exactly as accumulated.
        """
        if self.open_frames:
            raise ProfilerError(
                f"cannot export with {self.open_frames} frame(s) still open"
            )
        return _node_payload(self.root)

    def merge_tree(
        self,
        payload: Dict,
        at: Sequence[str] = (),
        tag: Optional[str] = None,
        anchor: str = "current",
    ) -> None:
        """Graft a worker's :meth:`payload` under the path ``at``.

        ``tag`` (typically the worker process name) is recorded on the
        grafted node as a non-canonical annotation: it shows up in the
        JSON export but is stripped by :func:`canonical_tree`, so
        ``jobs=1`` and ``jobs=4`` runs produce identical canonical
        trees.
        """
        if anchor not in ("current", "root"):
            raise ProfilerError(f"unknown anchor {anchor!r}")
        node = self.root if anchor == "root" else self._stack[-1][0]
        for name in at:
            node = node.child(name)
        if tag is not None:
            node.workers.add(str(tag))
        _merge_payload(node, payload)


def _node_payload(node: ProfileNode) -> Dict:
    out: Dict = {
        "name": node.name,
        "calls": node.calls,
        "host_s": node.host_s,
        "sim_s": node.sim_s,
    }
    if node.workers:
        out["workers"] = sorted(node.workers)
    if node.requests:
        out["requests"] = sorted(node.requests)
    if node.children:
        out["children"] = [
            _node_payload(node.children[name]) for name in sorted(node.children)
        ]
    return out


def _merge_payload(node: ProfileNode, payload: Dict) -> None:
    node.calls += int(payload.get("calls", 0))
    node.host_s += float(payload.get("host_s", 0.0))
    node.sim_s += float(payload.get("sim_s", 0.0))
    node.workers.update(payload.get("workers", ()))
    node.requests.update(payload.get("requests", ()))
    for child in payload.get("children", ()):
        _merge_payload(node.child(str(child["name"])), child)


class _NullFrame:
    """Shared no-op frame context of the disabled profiler."""

    __slots__ = ()

    def __enter__(self):
        return None

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False


_NULL_FRAME = _NullFrame()


class NullProfiler:
    """The zero-overhead disabled profiler: no tree, ever."""

    enabled = False
    open_frames = 0

    __slots__ = ()

    def begin(self, name) -> None:
        return None

    def end(self) -> None:
        return None

    def frame(self, name) -> _NullFrame:
        return _NULL_FRAME

    def add_sim(self, seconds) -> None:
        return None

    def record_leaf(self, path, sim_s=0.0, calls=1, anchor="current") -> None:
        return None

    def current_path(self) -> tuple:
        return ()

    def payload(self) -> dict:
        return {}

    def merge_tree(self, payload, at=(), tag=None, anchor="current") -> None:
        return None


#: The process-wide disabled profiler instrumented code defaults to.
NULL_PROFILER = NullProfiler()


# ----------------------------------------------------------------------
# exporters
# ----------------------------------------------------------------------
def _document_node(payload: Dict) -> Dict:
    """Raw (self-time) payload node -> document node with derived values."""
    children = [_document_node(child) for child in payload.get("children", ())]
    self_host = float(payload.get("host_s", 0.0))
    self_sim = float(payload.get("sim_s", 0.0))
    out: Dict = {
        "name": str(payload["name"]),
        "calls": int(payload.get("calls", 0)),
        "self_host_s": self_host,
        "self_sim_s": self_sim,
        "host_s": self_host + sum(c["host_s"] for c in children),
        "sim_s": self_sim + sum(c["sim_s"] for c in children),
    }
    if payload.get("workers"):
        out["workers"] = list(payload["workers"])
    if payload.get("requests"):
        out["requests"] = list(payload["requests"])
    if children:
        out["children"] = children
    return out


def profile_document(
    profiler: Union[Profiler, Dict], experiment: str = ""
) -> Dict:
    """The JSON profile document: derived inclusive/self times per path.

    Accepts a live :class:`Profiler` or a raw :meth:`Profiler.payload`
    dict. ``host_s``/``sim_s`` on each node are inclusive (own +
    children); ``self_host_s``/``self_sim_s`` are the node's own
    contribution. By construction the self host times of the whole tree
    sum exactly to the root's inclusive host time.
    """
    payload = profiler.payload() if isinstance(profiler, Profiler) else profiler
    tree = _document_node(payload) if payload else _document_node(
        {"name": "root", "calls": 0, "host_s": 0.0, "sim_s": 0.0}
    )
    return {
        "experiment": experiment,
        "total_host_s": tree["host_s"],
        "total_sim_s": tree["sim_s"],
        "tree": tree,
    }


def self_host_total(document: Dict) -> float:
    """Sum of every node's self host time (the reconciliation check)."""

    def walk(node: Dict) -> float:
        return float(node.get("self_host_s", 0.0)) + sum(
            walk(child) for child in node.get("children", ())
        )

    return walk(document["tree"])


def collapsed_stacks(document: Dict, weight: str = "host") -> List[str]:
    """Collapsed-stack lines (``a;b;c value``) for flamegraph tooling.

    ``weight`` selects the per-path value: ``"host"`` (self host time
    in integer microseconds), ``"sim"`` (self simulated time in
    microseconds) or ``"calls"``. Zero-weight paths are skipped; lines
    come back sorted, so the export is deterministic.
    """
    if weight not in ("host", "sim", "calls"):
        raise ProfilerError(f"unknown collapsed-stack weight {weight!r}")
    lines: List[str] = []

    def walk(node: Dict, prefix: Tuple[str, ...]) -> None:
        path = prefix + (node["name"],)
        if weight == "calls":
            value = int(node.get("calls", 0))
        else:
            key = "self_host_s" if weight == "host" else "self_sim_s"
            value = int(round(float(node.get(key, 0.0)) * 1e6))
        if value > 0:
            lines.append(f"{PATH_SEP.join(path)} {value}")
        for child in node.get("children", ()):
            walk(child, path)

    for child in document["tree"].get("children", ()):
        walk(child, ())
    return sorted(lines)


def canonical_tree(document_or_node: Dict) -> Dict:
    """The deterministic view of a profile: paths, calls, simulated time.

    Strips every host-clock field and the worker tags, so two runs of
    the same seeded workload — serial or pooled — compare equal.
    """
    node = document_or_node.get("tree", document_or_node)
    out: Dict = {
        "name": node["name"],
        "calls": int(node.get("calls", 0)),
        "sim_s": float(node.get("self_sim_s", node.get("sim_s", 0.0))),
    }
    children = node.get("children", ())
    if children:
        out["children"] = [canonical_tree(child) for child in children]
    return out


def profile_json(document: Dict) -> str:
    """Deterministic JSON text of a profile document."""
    return json.dumps(document, indent=2, sort_keys=True)


def profile_path(directory: Union[str, Path], experiment: str) -> Path:
    """``<directory>/PROFILE_<experiment>.json``."""
    return Path(directory) / f"{PROFILE_PREFIX}{experiment}.json"


def write_profile(
    directory: Union[str, Path], experiment: str, profiler: Union[Profiler, Dict]
) -> Tuple[Path, Path]:
    """Write ``PROFILE_<experiment>.json`` + ``<experiment>.collapsed``.

    Returns (json_path, collapsed_path).
    """
    document = (
        profiler
        if isinstance(profiler, dict) and "tree" in profiler
        else profile_document(profiler, experiment)
    )
    json_path = profile_path(directory, experiment)
    json_path.parent.mkdir(parents=True, exist_ok=True)
    json_path.write_text(profile_json(document) + "\n")
    collapsed_path = json_path.with_name(f"{experiment}.collapsed")
    lines = collapsed_stacks(document)
    collapsed_path.write_text("\n".join(lines) + ("\n" if lines else ""))
    return json_path, collapsed_path


def load_profile(path: Union[str, Path]) -> Dict:
    """Parse one profile document file."""
    path = Path(path)
    try:
        document = json.loads(path.read_text())
        if "tree" not in document:
            raise KeyError("tree")
        return document
    except (OSError, ValueError, KeyError, TypeError) as error:
        raise ProfilerError(f"unreadable profile {path}: {error}") from None


def find_profiles(directory: Union[str, Path]) -> Dict[str, Path]:
    """experiment -> path for every ``PROFILE_*.json`` present."""
    directory = Path(directory)
    if not directory.is_dir():
        return {}
    return {
        path.stem[len(PROFILE_PREFIX):]: path
        for path in sorted(directory.glob(f"{PROFILE_PREFIX}*.json"))
    }
