"""Live health monitoring over the event bus.

The :class:`HealthMonitor` subscribes to a
:class:`~repro.obs.events.EventBus` and folds the runtime manager's
lifecycle events into sliding windows: reconfiguration durations, lock
waits, success/failure outcomes and per-tile lock queue depths. A
:meth:`HealthMonitor.report` call evaluates the watchdog rules against
one instant and returns a :class:`HealthReport` with an
``ok``/``degraded``/``critical`` verdict:

* **stuck reconfiguration** — a reconfiguration started but neither
  completed nor was abandoned, and its age *exceeds* the deadline
  (an age of exactly the deadline is still healthy): ``critical``;
* **failure rate** — failed transfer attempts over all outcomes in the
  window crossing the degraded/critical thresholds;
* **queue depth** — threads queued on one tile's lock crossing the
  threshold: ``degraded``;
* **flow degradation** — the CAD flow shipped a degraded build
  (``flow.degraded`` on the bus): ``degraded``;
* **events dropped** — the bus ring overflowed (drop-oldest) while the
  monitor was attached, so the dashboard's recent-event history is
  incomplete: ``degraded``.

The monitor also keeps a catch-all subscription that checks the
bus-global ``seq`` numbers for continuity; any discontinuity is
counted in ``seq_gaps`` and surfaced in the report's bus section
(subscribers are notified at emit time, *before* drop-oldest takes
effect, so a gap means events were emitted while the monitor was not
listening — or a bus bug).

When the monitored bus also carries CAD flow traffic (a build sharing
the deployment's event bus), the monitor folds the fault-tolerance
events in as cumulative counters: ``flow.job_retried`` and
``flow.job_failed`` tallies plus the dark tiles announced by
``flow.degraded``. These ride the modelled CAD clock rather than the
runtime clock, so they are never windowed — they surface as totals in
the report.

Window percentiles (p50/p95/p99) are interpolated from histogram
buckets (:func:`~repro.obs.metrics.bucket_quantile`), matching what
``Histogram.series()`` exports — the dashboard and the metrics
snapshot estimate tail latency the same way. Like every obs layer the
monitor never reads a wall clock: events carry their own (simulated)
timestamps and ``report`` takes the evaluation instant explicitly.
"""

from __future__ import annotations

import bisect
import enum
from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, List, Optional, Tuple

from repro.errors import PrEspError
from repro.obs import events as ev
from repro.obs.events import Event, EventBus
from repro.obs.metrics import DEFAULT_BUCKETS, bucket_quantile


class HealthError(PrEspError):
    """Misuse of the health-monitoring API (bad window or threshold)."""


class Verdict(enum.Enum):
    """Overall health of a monitored run."""

    OK = "ok"
    DEGRADED = "degraded"
    CRITICAL = "critical"

    @property
    def rank(self) -> int:
        return ("ok", "degraded", "critical").index(self.value)

    @property
    def exit_code(self) -> int:
        """CLI exit status: 0 ok, 1 degraded, 2 critical."""
        return self.rank


def _worst(a: Verdict, b: Verdict) -> Verdict:
    return a if a.rank >= b.rank else b


@dataclass(frozen=True)
class HealthFinding:
    """One triggered watchdog rule."""

    rule: str
    severity: Verdict
    message: str

    def __str__(self) -> str:
        return f"[{self.severity.value}] {self.rule}: {self.message}"


@dataclass(frozen=True)
class WindowStats:
    """Sliding-window distribution summary of one signal."""

    count: int
    mean: float
    minimum: float
    maximum: float
    p50: float
    p95: float
    p99: float

    @classmethod
    def from_samples(cls, samples: List[float]) -> Optional["WindowStats"]:
        """Bucket the samples and interpolate the tail quantiles.

        Returns None for an empty window — the caller renders "no
        data" instead of a fake all-zero distribution.
        """
        if not samples:
            return None
        counts = [0] * (len(DEFAULT_BUCKETS) + 1)
        for value in samples:
            counts[bisect.bisect_left(DEFAULT_BUCKETS, value)] += 1
        low, high = min(samples), max(samples)
        quantiles = {
            q: bucket_quantile(DEFAULT_BUCKETS, counts, q, minimum=low, maximum=high)
            for q in (0.50, 0.95, 0.99)
        }
        return cls(
            count=len(samples),
            mean=sum(samples) / len(samples),
            minimum=low,
            maximum=high,
            p50=quantiles[0.50],
            p95=quantiles[0.95],
            p99=quantiles[0.99],
        )


@dataclass
class HealthReport:
    """One evaluation of the watchdog rules."""

    verdict: Verdict
    findings: List[HealthFinding]
    now: float
    window_s: float
    reconfig_s: Optional[WindowStats]
    lock_wait_s: Optional[WindowStats]
    completions: int
    failures: int
    failure_rate: float
    queue_depth: Dict[str, int]
    #: Reconfigurations in flight: tile -> age in seconds at ``now``.
    active_reconfigs: Dict[str, float] = field(default_factory=dict)
    events_seen: int = 0
    events_dropped: int = 0
    #: Cumulative CAD fault-tolerance counters (modelled clock, unwindowed).
    cad_retries: int = 0
    cad_failed_jobs: List[str] = field(default_factory=list)
    dark_tiles: List[str] = field(default_factory=list)
    #: Cumulative runtime-fault counters (never windowed: a quarantine
    #: hours ago still degrades the deployment now).
    quarantined_tiles: List[str] = field(default_factory=list)
    fallbacks: int = 0
    kernel_hangs: int = 0
    failovers: int = 0
    #: Service-tier resilience state (the daemon's bus only).
    breaker_open: bool = False
    breaker_opens: int = 0
    dead_jobs: List[str] = field(default_factory=list)
    #: Bus transport state: capacity, buffered, emitted, dropped, seq_gaps.
    bus: Dict[str, int] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        """True when no rule fired."""
        return self.verdict is Verdict.OK

    def to_dict(self) -> Dict:
        """JSON-serializable form (``repro monitor --json``)."""

        def window(stats: Optional[WindowStats]) -> Optional[Dict]:
            if stats is None:
                return None
            return {
                "count": stats.count,
                "mean": stats.mean,
                "min": stats.minimum,
                "max": stats.maximum,
                "p50": stats.p50,
                "p95": stats.p95,
                "p99": stats.p99,
            }

        return {
            "verdict": self.verdict.value,
            "now": self.now,
            "window_s": self.window_s,
            "findings": [
                {
                    "rule": f.rule,
                    "severity": f.severity.value,
                    "message": f.message,
                }
                for f in self.findings
            ],
            "reconfig_s": window(self.reconfig_s),
            "lock_wait_s": window(self.lock_wait_s),
            "completions": self.completions,
            "failures": self.failures,
            "failure_rate": self.failure_rate,
            "queue_depth": dict(sorted(self.queue_depth.items())),
            "active_reconfigs": dict(sorted(self.active_reconfigs.items())),
            "events_seen": self.events_seen,
            "events_dropped": self.events_dropped,
            "cad": {
                "retries": self.cad_retries,
                "failed_jobs": list(self.cad_failed_jobs),
                "dark_tiles": list(self.dark_tiles),
            },
            "runtime_faults": {
                "quarantined_tiles": list(self.quarantined_tiles),
                "fallbacks": self.fallbacks,
                "kernel_hangs": self.kernel_hangs,
                "failovers": self.failovers,
            },
            "service": {
                "breaker_open": self.breaker_open,
                "breaker_opens": self.breaker_opens,
                "dead_jobs": list(self.dead_jobs),
            },
            "bus": dict(self.bus),
        }

    def summary_lines(self) -> List[str]:
        """The text dashboard (``repro monitor``)."""

        def dist(label: str, stats: Optional[WindowStats], unit: str) -> str:
            if stats is None:
                return f"{label:14s}: no samples in window"
            return (
                f"{label:14s}: n={stats.count} mean={stats.mean:.6f}{unit} "
                f"p50={stats.p50:.6f}{unit} p95={stats.p95:.6f}{unit} "
                f"p99={stats.p99:.6f}{unit} max={stats.maximum:.6f}{unit}"
            )

        lines = [
            f"verdict       : {self.verdict.value.upper()}",
            f"window        : last {self.window_s:g}s at t={self.now:.6f}s "
            f"({self.events_seen} events, {self.events_dropped} dropped)",
        ]
        if self.bus:
            lines.append(
                f"{'bus':14s}: {self.bus.get('emitted', 0)} emitted, "
                f"{self.bus.get('buffered', 0)} buffered "
                f"(capacity {self.bus.get('capacity', 0)}), "
                f"{self.bus.get('dropped', 0)} dropped, "
                f"{self.bus.get('seq_gaps', 0)} seq gaps"
            )
        lines += [
            dist("reconfig", self.reconfig_s, "s"),
            dist("lock wait", self.lock_wait_s, "s"),
            f"{'outcomes':14s}: {self.completions} completed, "
            f"{self.failures} failed "
            f"(failure rate {self.failure_rate * 100:.1f}%)",
        ]
        if self.active_reconfigs:
            active = ", ".join(
                f"{tile} ({age:.6f}s)"
                for tile, age in sorted(self.active_reconfigs.items())
            )
            lines.append(f"{'in flight':14s}: {active}")
        depth = {t: d for t, d in sorted(self.queue_depth.items()) if d > 0}
        if depth:
            lines.append(
                f"{'lock queues':14s}: "
                + ", ".join(f"{t}={d}" for t, d in depth.items())
            )
        if self.cad_retries or self.cad_failed_jobs or self.dark_tiles:
            cad = (
                f"{'cad flow':14s}: {self.cad_retries} retried attempts, "
                f"{len(self.cad_failed_jobs)} permanent failures"
            )
            if self.dark_tiles:
                cad += f", dark tiles {', '.join(self.dark_tiles)}"
            lines.append(cad)
        if (
            self.quarantined_tiles
            or self.fallbacks
            or self.kernel_hangs
            or self.failovers
        ):
            runtime = (
                f"{'runtime faults':14s}: {self.fallbacks} fallbacks, "
                f"{self.kernel_hangs} kernel hangs, "
                f"{self.failovers} failovers"
            )
            if self.quarantined_tiles:
                runtime += f", quarantined {', '.join(self.quarantined_tiles)}"
            lines.append(runtime)
        if self.findings:
            lines.append("findings:")
            lines.extend(f"  {finding}" for finding in self.findings)
        else:
            lines.append("findings      : none")
        return lines


class HealthMonitor:
    """Folds bus events into sliding windows and watchdog verdicts."""

    #: Event kinds the monitor subscribes to.
    KINDS = (
        ev.RECONFIG_STARTED,
        ev.RECONFIG_COMPLETED,
        ev.RECONFIG_FAILED,
        ev.RECONFIG_FALLBACK,
        ev.KERNEL_HUNG,
        ev.TILE_QUARANTINED,
        ev.SCHED_FAILOVER,
        ev.LOCK_REQUESTED,
        ev.LOCK_ACQUIRED,
        ev.CAD_JOB_RETRIED,
        ev.CAD_JOB_FAILED,
        ev.FLOW_DEGRADED,
        ev.SERVICE_JOB_DEAD,
        ev.SERVICE_JOB_REQUEUED,
        ev.SERVICE_BREAKER_OPENED,
        ev.SERVICE_BREAKER_CLOSED,
    )

    def __init__(
        self,
        bus: EventBus,
        window_s: float = 60.0,
        reconfig_deadline_s: float = 1.0,
        failure_rate_degraded: float = 0.05,
        failure_rate_critical: float = 0.5,
        queue_depth_degraded: int = 4,
    ) -> None:
        if window_s <= 0:
            raise HealthError(f"window must be positive: {window_s}")
        if reconfig_deadline_s <= 0:
            raise HealthError(f"deadline must be positive: {reconfig_deadline_s}")
        if not 0.0 <= failure_rate_degraded <= failure_rate_critical <= 1.0:
            raise HealthError(
                "failure-rate thresholds must satisfy "
                f"0 <= degraded <= critical <= 1, got "
                f"{failure_rate_degraded}/{failure_rate_critical}"
            )
        if queue_depth_degraded <= 0:
            raise HealthError(f"queue-depth threshold must be positive: {queue_depth_degraded}")
        self.bus = bus
        self.window_s = window_s
        self.reconfig_deadline_s = reconfig_deadline_s
        self.failure_rate_degraded = failure_rate_degraded
        self.failure_rate_critical = failure_rate_critical
        self.queue_depth_degraded = queue_depth_degraded

        self._active: Dict[str, float] = {}
        self._durations: Deque[Tuple[float, float]] = deque()
        self._waits: Deque[Tuple[float, float]] = deque()
        self._outcomes: Deque[Tuple[float, bool]] = deque()
        self._queue_depth: Dict[str, int] = {}
        self._cad_retries = 0
        self._cad_failed_jobs: List[str] = []
        self._dark_tiles: Tuple[str, ...] = ()
        self._quarantined: List[str] = []
        self._fallbacks = 0
        self._kernel_hangs = 0
        self._failovers = 0
        self._breaker_open = False
        self._breaker_opens = 0
        self._dead_jobs: List[str] = []
        self._last_time = 0.0
        self.events_seen = 0
        #: Ring drops already on the bus when the monitor attached —
        #: only drops *while watching* degrade the verdict.
        self._dropped_at_attach = bus.dropped
        #: Bus-seq discontinuities the catch-all subscription observed.
        self.seq_gaps = 0
        self._next_seq: Optional[int] = None
        bus.subscribe(self._on_event, kinds=self.KINDS)
        bus.subscribe(self._on_any)

    # ------------------------------------------------------------------
    def _on_any(self, event: Event) -> None:
        """Catch-all continuity check over the bus-global ``seq``."""
        if self._next_seq is not None and event.seq != self._next_seq:
            self.seq_gaps += event.seq - self._next_seq
        self._next_seq = event.seq + 1

    def _on_event(self, event: Event) -> None:
        self.events_seen += 1
        # CAD flow events carry modelled CAD minutes, not runtime
        # seconds — fold them into cumulative counters without letting
        # their timestamps advance the runtime window clock.
        if event.kind == ev.CAD_JOB_RETRIED:
            self._cad_retries += 1
            return
        if event.kind == ev.CAD_JOB_FAILED:
            self._cad_failed_jobs.append(
                f"{event.source}/{event.attrs.get('job', '?')}"
            )
            return
        if event.kind == ev.FLOW_DEGRADED:
            self._dark_tiles = tuple(event.attrs.get("rps", ()))
            return
        # Service-tier events ride the daemon's bus with no meaningful
        # simulated clock; fold them as cumulative state, unwindowed.
        if event.kind == ev.SERVICE_JOB_DEAD:
            if event.source not in self._dead_jobs:
                self._dead_jobs.append(event.source)
            return
        if event.kind == ev.SERVICE_JOB_REQUEUED:
            # A manual revive takes the job out of the dead letter.
            if event.attrs.get("manual") and event.source in self._dead_jobs:
                self._dead_jobs.remove(event.source)
            return
        if event.kind == ev.SERVICE_BREAKER_OPENED:
            self._breaker_open = True
            self._breaker_opens += 1
            return
        if event.kind == ev.SERVICE_BREAKER_CLOSED:
            self._breaker_open = False
            return
        self._last_time = max(self._last_time, event.time)
        if event.kind == ev.RECONFIG_STARTED:
            self._active[event.source] = event.time
        elif event.kind == ev.RECONFIG_COMPLETED:
            self._active.pop(event.source, None)
            duration = float(event.attrs.get("duration_s", 0.0))
            self._durations.append((event.time, duration))
            self._outcomes.append((event.time, True))
        elif event.kind == ev.RECONFIG_FAILED:
            if event.attrs.get("abandoned", False):
                self._active.pop(event.source, None)
            self._outcomes.append((event.time, False))
        elif event.kind == ev.RECONFIG_FALLBACK:
            self._fallbacks += 1
        elif event.kind == ev.KERNEL_HUNG:
            # A hung kernel is a failed runtime outcome for the rate rule.
            self._kernel_hangs += 1
            self._outcomes.append((event.time, False))
        elif event.kind == ev.TILE_QUARANTINED:
            if event.source not in self._quarantined:
                self._quarantined.append(event.source)
            self._active.pop(event.source, None)
        elif event.kind == ev.SCHED_FAILOVER:
            self._failovers += 1
        elif event.kind == ev.LOCK_REQUESTED:
            self._queue_depth[event.source] = (
                self._queue_depth.get(event.source, 0) + 1
            )
        elif event.kind == ev.LOCK_ACQUIRED:
            self._queue_depth[event.source] = max(
                0, self._queue_depth.get(event.source, 0) - 1
            )
            self._waits.append((event.time, float(event.attrs.get("wait_s", 0.0))))

    # ------------------------------------------------------------------
    def _prune(self, now: float) -> None:
        horizon = now - self.window_s
        for window in (self._durations, self._waits, self._outcomes):
            while window and window[0][0] < horizon:
                window.popleft()

    def report(self, now: Optional[float] = None) -> HealthReport:
        """Evaluate the watchdog rules at instant ``now``.

        ``now`` defaults to the latest event timestamp seen — right for
        a post-run verdict; pass the live simulation time to catch
        in-flight stalls.
        """
        if now is None:
            now = self._last_time
        self._prune(now)
        findings: List[HealthFinding] = []
        verdict = Verdict.OK

        active_ages = {
            tile: now - started for tile, started in sorted(self._active.items())
        }
        for tile, age in active_ages.items():
            # An age of exactly the deadline is still on time; only a
            # strict overrun is stuck.
            if age > self.reconfig_deadline_s:
                verdict = _worst(verdict, Verdict.CRITICAL)
                findings.append(
                    HealthFinding(
                        rule="stuck-reconfiguration",
                        severity=Verdict.CRITICAL,
                        message=(
                            f"{tile}: reconfiguration in flight for {age:.6f}s "
                            f"(deadline {self.reconfig_deadline_s:g}s)"
                        ),
                    )
                )

        completions = sum(1 for _, good in self._outcomes if good)
        failures = len(self._outcomes) - completions
        failure_rate = (
            failures / len(self._outcomes) if self._outcomes else 0.0
        )
        if self._outcomes and failure_rate >= self.failure_rate_degraded:
            severity = (
                Verdict.CRITICAL
                if failure_rate >= self.failure_rate_critical
                else Verdict.DEGRADED
            )
            verdict = _worst(verdict, severity)
            findings.append(
                HealthFinding(
                    rule="failure-rate",
                    severity=severity,
                    message=(
                        f"{failures}/{len(self._outcomes)} transfer outcomes "
                        f"failed ({failure_rate * 100:.1f}% >= "
                        f"{self.failure_rate_degraded * 100:g}%)"
                    ),
                )
            )

        for tile, depth in sorted(self._queue_depth.items()):
            if depth >= self.queue_depth_degraded:
                verdict = _worst(verdict, Verdict.DEGRADED)
                findings.append(
                    HealthFinding(
                        rule="queue-depth",
                        severity=Verdict.DEGRADED,
                        message=(
                            f"{tile}: {depth} threads queued on the tile lock "
                            f"(threshold {self.queue_depth_degraded})"
                        ),
                    )
                )

        if self._dark_tiles:
            verdict = _worst(verdict, Verdict.DEGRADED)
            findings.append(
                HealthFinding(
                    rule="flow-degraded",
                    severity=Verdict.DEGRADED,
                    message=(
                        "build completed without tiles "
                        + ", ".join(self._dark_tiles)
                        + " (blanking bitstreams only)"
                    ),
                )
            )

        if self._quarantined:
            verdict = _worst(verdict, Verdict.DEGRADED)
            findings.append(
                HealthFinding(
                    rule="tile-quarantined",
                    severity=Verdict.DEGRADED,
                    message=(
                        "tiles "
                        + ", ".join(self._quarantined)
                        + " quarantined after persistent runtime faults"
                    ),
                )
            )
        if self._fallbacks:
            verdict = _worst(verdict, Verdict.DEGRADED)
            findings.append(
                HealthFinding(
                    rule="bitstream-fallback",
                    severity=Verdict.DEGRADED,
                    message=(
                        f"{self._fallbacks} reconfiguration(s) fell back to a "
                        "last-known-good bitstream"
                    ),
                )
            )
        if self._failovers:
            verdict = _worst(verdict, Verdict.DEGRADED)
            findings.append(
                HealthFinding(
                    rule="scheduler-failover",
                    severity=Verdict.DEGRADED,
                    message=(
                        f"{self._failovers} instance(s) re-planned off a "
                        "quarantined tile"
                    ),
                )
            )

        if self._breaker_open:
            verdict = _worst(verdict, Verdict.CRITICAL)
            findings.append(
                HealthFinding(
                    rule="breaker-open",
                    severity=Verdict.CRITICAL,
                    message=(
                        "the admission breaker is open: submits are being "
                        "shed until recovery probes succeed"
                    ),
                )
            )
        if self._dead_jobs:
            verdict = _worst(verdict, Verdict.DEGRADED)
            findings.append(
                HealthFinding(
                    rule="dead-letter",
                    severity=Verdict.DEGRADED,
                    message=(
                        "jobs "
                        + ", ".join(self._dead_jobs)
                        + " exhausted their attempt budgets and await a "
                        "manual requeue"
                    ),
                )
            )

        dropped_watching = self.bus.dropped - self._dropped_at_attach
        if dropped_watching > 0:
            verdict = _worst(verdict, Verdict.DEGRADED)
            findings.append(
                HealthFinding(
                    rule="events-dropped",
                    severity=Verdict.DEGRADED,
                    message=(
                        f"{dropped_watching} event(s) dropped from the bus "
                        f"ring (capacity {self.bus.capacity}) while "
                        "monitoring — the recent-event history is incomplete"
                    ),
                )
            )

        return HealthReport(
            verdict=verdict,
            findings=findings,
            now=now,
            window_s=self.window_s,
            reconfig_s=WindowStats.from_samples([d for _, d in self._durations]),
            lock_wait_s=WindowStats.from_samples([w for _, w in self._waits]),
            completions=completions,
            failures=failures,
            failure_rate=failure_rate,
            queue_depth=dict(self._queue_depth),
            active_reconfigs=active_ages,
            events_seen=self.events_seen,
            events_dropped=self.bus.dropped,
            cad_retries=self._cad_retries,
            cad_failed_jobs=list(self._cad_failed_jobs),
            dark_tiles=list(self._dark_tiles),
            quarantined_tiles=list(self._quarantined),
            fallbacks=self._fallbacks,
            kernel_hangs=self._kernel_hangs,
            failovers=self._failovers,
            breaker_open=self._breaker_open,
            breaker_opens=self._breaker_opens,
            dead_jobs=list(self._dead_jobs),
            bus={
                "capacity": self.bus.capacity,
                "buffered": len(self.bus),
                "emitted": self._next_seq if self._next_seq is not None else 0,
                "dropped": self.bus.dropped,
                "seq_gaps": self.seq_gaps,
            },
        )
