"""A small labeled-metrics registry (counters, gauges, histograms).

The registry is the machine-readable counterpart of the human reports:
`collect_stats` and `flow_report` read the same underlying records the
instruments are fed from, so the two views cannot drift apart. The
snapshot format is a flat, deterministically ordered dict — trivially
JSON-serializable for ``repro deploy --json`` and CI dashboards.

Labels follow the Prometheus convention: an instrument is registered
once by name, and each distinct label combination is a separate
series. Snapshot keys render as ``name{k=v,...}``.

When a :class:`~repro.obs.context.TelemetryContext` is active, every
recording implicitly carries its ``request``/``tenant`` labels
(explicit labels of the same name win), so per-request series appear
without threading the context through call sites. The null registry
never consults the context variable — disabled instrumentation stays
free.
"""

from __future__ import annotations

import bisect
from typing import Dict, Iterable, List, Optional, Tuple

from repro.errors import PrEspError
from repro.obs.context import current_context


class MetricsError(PrEspError):
    """Misuse of the metrics API (type conflict, bad value)."""


LabelKey = Tuple[Tuple[str, str], ...]


def _label_key(labels: Dict[str, str]) -> LabelKey:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


def _contextual(labels: Dict[str, str]) -> Dict[str, str]:
    """Merge the active telemetry context's labels under explicit ones."""
    context = current_context()
    if context is None:
        return labels
    merged = context.labels()
    merged.update(labels)
    return merged


def _series_name(name: str, key: LabelKey) -> str:
    if not key:
        return name
    rendered = ",".join(f"{k}={v}" for k, v in key)
    return f"{name}{{{rendered}}}"


class Counter:
    """A monotonically increasing value per label combination."""

    kind = "counter"

    def __init__(self, name: str, description: str = "") -> None:
        self.name = name
        self.description = description
        self._values: Dict[LabelKey, float] = {}

    def inc(self, value: float = 1.0, **labels) -> None:
        """Add ``value`` (must be non-negative) to the labeled series."""
        if value < 0:
            raise MetricsError(f"counter {self.name}: negative increment {value}")
        key = _label_key(_contextual(labels))
        self._values[key] = self._values.get(key, 0.0) + value

    def value(self, **labels) -> float:
        """Current value of one labeled series (0 if never incremented)."""
        return self._values.get(_label_key(labels), 0.0)

    def total(self) -> float:
        """Sum over every label combination."""
        return sum(self._values.values())

    def series(self) -> Dict[str, float]:
        return {
            _series_name(self.name, key): value
            for key, value in self._values.items()
        }

    def items(self) -> List[Tuple[LabelKey, float]]:
        """``(label_key, value)`` pairs, label-ordered (exporter view)."""
        return sorted(self._values.items())


class Gauge:
    """A point-in-time value per label combination."""

    kind = "gauge"

    def __init__(self, name: str, description: str = "") -> None:
        self.name = name
        self.description = description
        self._values: Dict[LabelKey, float] = {}

    def set(self, value: float, **labels) -> None:
        """Overwrite the labeled series with ``value``."""
        self._values[_label_key(_contextual(labels))] = float(value)

    def value(self, **labels) -> float:
        """Current value of one labeled series (0 if never set)."""
        return self._values.get(_label_key(labels), 0.0)

    def series(self) -> Dict[str, float]:
        return {
            _series_name(self.name, key): value
            for key, value in self._values.items()
        }

    def items(self) -> List[Tuple[LabelKey, float]]:
        """``(label_key, value)`` pairs, label-ordered (exporter view)."""
        return sorted(self._values.items())


#: Default histogram buckets: wide enough for both milliseconds of
#: reconfiguration time and tens of CAD minutes.
DEFAULT_BUCKETS = (
    0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0, 10.0, 50.0, 100.0, 500.0
)


def bucket_quantile(
    bounds: Tuple[float, ...],
    bucket_counts: List[int],
    q: float,
    minimum: Optional[float] = None,
    maximum: Optional[float] = None,
) -> Optional[float]:
    """Estimate the ``q``-quantile from histogram bucket counts.

    Linear interpolation inside the bucket holding the target rank
    (the Prometheus ``histogram_quantile`` estimator), tightened by the
    exact observed ``minimum``/``maximum`` when available: the first
    bucket interpolates from ``minimum`` instead of 0, the overflow
    bucket from the last bound to ``maximum``. Returns None for an
    empty distribution.
    """
    if not 0.0 <= q <= 1.0:
        raise MetricsError(f"quantile must be in [0, 1], got {q}")
    total = sum(bucket_counts)
    if total == 0:
        return None
    rank = q * total
    cumulative = 0
    last = len(bucket_counts) - 1
    for index, count in enumerate(bucket_counts):
        cumulative += count
        if count == 0 or (cumulative < rank and index != last):
            continue
        if index == 0:
            lower = minimum if minimum is not None else 0.0
            upper = bounds[0]
        elif index > len(bounds) - 1:  # overflow bucket
            lower = bounds[-1]
            upper = maximum if maximum is not None else bounds[-1]
        else:
            lower = bounds[index - 1]
            upper = bounds[index]
        fraction = (rank - (cumulative - count)) / count
        fraction = min(1.0, max(0.0, fraction))
        value = lower + (upper - lower) * fraction
        if minimum is not None:
            value = max(value, minimum)
        if maximum is not None:
            value = min(value, maximum)
        return value
    return None  # pragma: no cover - total > 0 guarantees a bucket hit


class _HistogramSeries:
    __slots__ = ("count", "total", "minimum", "maximum", "bucket_counts")

    def __init__(self, num_buckets: int) -> None:
        self.count = 0
        self.total = 0.0
        self.minimum: Optional[float] = None
        self.maximum: Optional[float] = None
        self.bucket_counts = [0] * (num_buckets + 1)  # +1 overflow


class Histogram:
    """A distribution per label combination (count/sum/min/max/buckets)."""

    kind = "histogram"

    def __init__(
        self,
        name: str,
        description: str = "",
        buckets: Iterable[float] = DEFAULT_BUCKETS,
    ) -> None:
        self.name = name
        self.description = description
        self.buckets: Tuple[float, ...] = tuple(sorted(buckets))
        if not self.buckets:
            raise MetricsError(f"histogram {name}: needs at least one bucket")
        self._series: Dict[LabelKey, _HistogramSeries] = {}

    def observe(self, value: float, **labels) -> None:
        """Record one sample into the labeled distribution."""
        key = _label_key(_contextual(labels))
        series = self._series.get(key)
        if series is None:
            series = self._series[key] = _HistogramSeries(len(self.buckets))
        series.count += 1
        series.total += value
        series.minimum = value if series.minimum is None else min(series.minimum, value)
        series.maximum = value if series.maximum is None else max(series.maximum, value)
        series.bucket_counts[bisect.bisect_left(self.buckets, value)] += 1

    def count(self, **labels) -> int:
        """Number of samples in one labeled series."""
        series = self._series.get(_label_key(labels))
        return series.count if series else 0

    def sum(self, **labels) -> float:
        """Sum of samples in one labeled series."""
        series = self._series.get(_label_key(labels))
        return series.total if series else 0.0

    def mean(self, **labels) -> float:
        """Mean sample of one labeled series (0 when empty)."""
        series = self._series.get(_label_key(labels))
        if not series or series.count == 0:
            return 0.0
        return series.total / series.count

    def quantile(self, q: float, **labels) -> Optional[float]:
        """Estimated ``q``-quantile of one labeled series (None if empty).

        Interpolated from the bucket counts (see :func:`bucket_quantile`),
        so the estimate's resolution is the bucket layout — exact at the
        observed min/max, within one bucket everywhere else.
        """
        series = self._series.get(_label_key(labels))
        if not series or series.count == 0:
            return None
        return bucket_quantile(
            self.buckets,
            series.bucket_counts,
            q,
            minimum=series.minimum,
            maximum=series.maximum,
        )

    #: The tail-latency quantiles ``series()`` exports.
    EXPORTED_QUANTILES = ((0.50, "p50"), (0.95, "p95"), (0.99, "p99"))

    def series(self) -> Dict[str, float]:
        out: Dict[str, float] = {}
        for key, series in self._series.items():
            base = _series_name(self.name, key)
            out[f"{base}.count"] = float(series.count)
            out[f"{base}.sum"] = series.total
            # min/max (and quantiles) are omitted for an empty series:
            # a 0.0 placeholder is indistinguishable from a real sample.
            if series.count:
                out[f"{base}.min"] = series.minimum
                out[f"{base}.max"] = series.maximum
                for q, label in self.EXPORTED_QUANTILES:
                    out[f"{base}.{label}"] = bucket_quantile(
                        self.buckets,
                        series.bucket_counts,
                        q,
                        minimum=series.minimum,
                        maximum=series.maximum,
                    )
            cumulative = 0
            for bound, count in zip(self.buckets, series.bucket_counts):
                cumulative += count
                out[f"{base}.bucket.le={bound:g}"] = float(cumulative)
            out[f"{base}.bucket.le=inf"] = float(series.count)
        return out

    def items(self) -> List[Tuple[LabelKey, "_HistogramSeries"]]:
        """``(label_key, series)`` pairs, label-ordered (exporter view)."""
        return sorted(self._series.items(), key=lambda item: item[0])


class MetricsRegistry:
    """Registers and snapshots instruments.

    Instrument registration is idempotent by (name, kind): asking for
    an existing counter returns it; asking for the same name as a
    different kind is an error.
    """

    enabled = True

    def __init__(self) -> None:
        self._instruments: Dict[str, object] = {}

    def _get(self, name: str, kind, *args, **kwargs):
        existing = self._instruments.get(name)
        if existing is not None:
            if not isinstance(existing, kind):
                raise MetricsError(
                    f"metric {name!r} already registered as "
                    f"{existing.kind}, not {kind.kind}"
                )
            return existing
        instrument = kind(name, *args, **kwargs)
        self._instruments[name] = instrument
        return instrument

    def counter(self, name: str, description: str = "") -> Counter:
        """Get-or-create a counter."""
        return self._get(name, Counter, description)

    def gauge(self, name: str, description: str = "") -> Gauge:
        """Get-or-create a gauge."""
        return self._get(name, Gauge, description)

    def histogram(
        self, name: str, description: str = "", buckets: Iterable[float] = DEFAULT_BUCKETS
    ) -> Histogram:
        """Get-or-create a histogram."""
        return self._get(name, Histogram, description, buckets)

    def instruments(self) -> List[object]:
        """All registered instruments, name-ordered."""
        return [self._instruments[name] for name in sorted(self._instruments)]

    def snapshot(self) -> Dict[str, float]:
        """Flat ``{series_name: value}`` dict, deterministically ordered."""
        flat: Dict[str, float] = {}
        for instrument in self.instruments():
            flat.update(instrument.series())
        return dict(sorted(flat.items()))


class _NullInstrument:
    """One shared do-nothing instrument for the disabled registry."""

    __slots__ = ()
    name = "null"
    description = ""
    kind = "null"

    def inc(self, value: float = 1.0, **labels) -> None:
        pass

    def set(self, value: float, **labels) -> None:
        pass

    def observe(self, value: float, **labels) -> None:
        pass

    def value(self, **labels) -> float:
        return 0.0

    def total(self) -> float:
        return 0.0

    def count(self, **labels) -> int:
        return 0

    def sum(self, **labels) -> float:
        return 0.0

    def mean(self, **labels) -> float:
        return 0.0

    def quantile(self, q: float, **labels) -> None:
        return None

    def series(self) -> Dict[str, float]:
        return {}

    def items(self) -> list:
        return []


_NULL_INSTRUMENT = _NullInstrument()


class NullMetricsRegistry:
    """Disabled registry: hands out one shared no-op instrument."""

    enabled = False
    __slots__ = ()

    def counter(self, name: str, description: str = "") -> _NullInstrument:
        return _NULL_INSTRUMENT

    def gauge(self, name: str, description: str = "") -> _NullInstrument:
        return _NULL_INSTRUMENT

    def histogram(self, name: str, description: str = "", buckets=DEFAULT_BUCKETS) -> _NullInstrument:
        return _NULL_INSTRUMENT

    def instruments(self) -> list:
        return []

    def snapshot(self) -> Dict[str, float]:
        return {}


#: The process-wide disabled registry instrumented code defaults to.
NULL_METRICS = NullMetricsRegistry()
