"""A small labeled-metrics registry (counters, gauges, histograms).

The registry is the machine-readable counterpart of the human reports:
`collect_stats` and `flow_report` read the same underlying records the
instruments are fed from, so the two views cannot drift apart. The
snapshot format is a flat, deterministically ordered dict — trivially
JSON-serializable for ``repro deploy --json`` and CI dashboards.

Labels follow the Prometheus convention: an instrument is registered
once by name, and each distinct label combination is a separate
series. Snapshot keys render as ``name{k=v,...}``.
"""

from __future__ import annotations

import bisect
from typing import Dict, Iterable, List, Optional, Tuple

from repro.errors import PrEspError


class MetricsError(PrEspError):
    """Misuse of the metrics API (type conflict, bad value)."""


LabelKey = Tuple[Tuple[str, str], ...]


def _label_key(labels: Dict[str, str]) -> LabelKey:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


def _series_name(name: str, key: LabelKey) -> str:
    if not key:
        return name
    rendered = ",".join(f"{k}={v}" for k, v in key)
    return f"{name}{{{rendered}}}"


class Counter:
    """A monotonically increasing value per label combination."""

    kind = "counter"

    def __init__(self, name: str, description: str = "") -> None:
        self.name = name
        self.description = description
        self._values: Dict[LabelKey, float] = {}

    def inc(self, value: float = 1.0, **labels) -> None:
        """Add ``value`` (must be non-negative) to the labeled series."""
        if value < 0:
            raise MetricsError(f"counter {self.name}: negative increment {value}")
        key = _label_key(labels)
        self._values[key] = self._values.get(key, 0.0) + value

    def value(self, **labels) -> float:
        """Current value of one labeled series (0 if never incremented)."""
        return self._values.get(_label_key(labels), 0.0)

    def total(self) -> float:
        """Sum over every label combination."""
        return sum(self._values.values())

    def series(self) -> Dict[str, float]:
        return {
            _series_name(self.name, key): value
            for key, value in self._values.items()
        }


class Gauge:
    """A point-in-time value per label combination."""

    kind = "gauge"

    def __init__(self, name: str, description: str = "") -> None:
        self.name = name
        self.description = description
        self._values: Dict[LabelKey, float] = {}

    def set(self, value: float, **labels) -> None:
        """Overwrite the labeled series with ``value``."""
        self._values[_label_key(labels)] = float(value)

    def value(self, **labels) -> float:
        """Current value of one labeled series (0 if never set)."""
        return self._values.get(_label_key(labels), 0.0)

    def series(self) -> Dict[str, float]:
        return {
            _series_name(self.name, key): value
            for key, value in self._values.items()
        }


#: Default histogram buckets: wide enough for both milliseconds of
#: reconfiguration time and tens of CAD minutes.
DEFAULT_BUCKETS = (
    0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0, 10.0, 50.0, 100.0, 500.0
)


class _HistogramSeries:
    __slots__ = ("count", "total", "minimum", "maximum", "bucket_counts")

    def __init__(self, num_buckets: int) -> None:
        self.count = 0
        self.total = 0.0
        self.minimum: Optional[float] = None
        self.maximum: Optional[float] = None
        self.bucket_counts = [0] * (num_buckets + 1)  # +1 overflow


class Histogram:
    """A distribution per label combination (count/sum/min/max/buckets)."""

    kind = "histogram"

    def __init__(
        self,
        name: str,
        description: str = "",
        buckets: Iterable[float] = DEFAULT_BUCKETS,
    ) -> None:
        self.name = name
        self.description = description
        self.buckets: Tuple[float, ...] = tuple(sorted(buckets))
        if not self.buckets:
            raise MetricsError(f"histogram {name}: needs at least one bucket")
        self._series: Dict[LabelKey, _HistogramSeries] = {}

    def observe(self, value: float, **labels) -> None:
        """Record one sample into the labeled distribution."""
        key = _label_key(labels)
        series = self._series.get(key)
        if series is None:
            series = self._series[key] = _HistogramSeries(len(self.buckets))
        series.count += 1
        series.total += value
        series.minimum = value if series.minimum is None else min(series.minimum, value)
        series.maximum = value if series.maximum is None else max(series.maximum, value)
        series.bucket_counts[bisect.bisect_left(self.buckets, value)] += 1

    def count(self, **labels) -> int:
        """Number of samples in one labeled series."""
        series = self._series.get(_label_key(labels))
        return series.count if series else 0

    def sum(self, **labels) -> float:
        """Sum of samples in one labeled series."""
        series = self._series.get(_label_key(labels))
        return series.total if series else 0.0

    def mean(self, **labels) -> float:
        """Mean sample of one labeled series (0 when empty)."""
        series = self._series.get(_label_key(labels))
        if not series or series.count == 0:
            return 0.0
        return series.total / series.count

    def series(self) -> Dict[str, float]:
        out: Dict[str, float] = {}
        for key, series in self._series.items():
            base = _series_name(self.name, key)
            out[f"{base}.count"] = float(series.count)
            out[f"{base}.sum"] = series.total
            out[f"{base}.min"] = series.minimum if series.minimum is not None else 0.0
            out[f"{base}.max"] = series.maximum if series.maximum is not None else 0.0
        return out


class MetricsRegistry:
    """Registers and snapshots instruments.

    Instrument registration is idempotent by (name, kind): asking for
    an existing counter returns it; asking for the same name as a
    different kind is an error.
    """

    enabled = True

    def __init__(self) -> None:
        self._instruments: Dict[str, object] = {}

    def _get(self, name: str, kind, *args, **kwargs):
        existing = self._instruments.get(name)
        if existing is not None:
            if not isinstance(existing, kind):
                raise MetricsError(
                    f"metric {name!r} already registered as "
                    f"{existing.kind}, not {kind.kind}"
                )
            return existing
        instrument = kind(name, *args, **kwargs)
        self._instruments[name] = instrument
        return instrument

    def counter(self, name: str, description: str = "") -> Counter:
        """Get-or-create a counter."""
        return self._get(name, Counter, description)

    def gauge(self, name: str, description: str = "") -> Gauge:
        """Get-or-create a gauge."""
        return self._get(name, Gauge, description)

    def histogram(
        self, name: str, description: str = "", buckets: Iterable[float] = DEFAULT_BUCKETS
    ) -> Histogram:
        """Get-or-create a histogram."""
        return self._get(name, Histogram, description, buckets)

    def instruments(self) -> List[object]:
        """All registered instruments, name-ordered."""
        return [self._instruments[name] for name in sorted(self._instruments)]

    def snapshot(self) -> Dict[str, float]:
        """Flat ``{series_name: value}`` dict, deterministically ordered."""
        flat: Dict[str, float] = {}
        for instrument in self.instruments():
            flat.update(instrument.series())
        return dict(sorted(flat.items()))


class _NullInstrument:
    """One shared do-nothing instrument for the disabled registry."""

    __slots__ = ()
    name = "null"
    description = ""
    kind = "null"

    def inc(self, value: float = 1.0, **labels) -> None:
        pass

    def set(self, value: float, **labels) -> None:
        pass

    def observe(self, value: float, **labels) -> None:
        pass

    def value(self, **labels) -> float:
        return 0.0

    def total(self) -> float:
        return 0.0

    def count(self, **labels) -> int:
        return 0

    def sum(self, **labels) -> float:
        return 0.0

    def mean(self, **labels) -> float:
        return 0.0

    def series(self) -> Dict[str, float]:
        return {}


_NULL_INSTRUMENT = _NullInstrument()


class NullMetricsRegistry:
    """Disabled registry: hands out one shared no-op instrument."""

    enabled = False
    __slots__ = ()

    def counter(self, name: str, description: str = "") -> _NullInstrument:
        return _NULL_INSTRUMENT

    def gauge(self, name: str, description: str = "") -> _NullInstrument:
        return _NULL_INSTRUMENT

    def histogram(self, name: str, description: str = "", buckets=DEFAULT_BUCKETS) -> _NullInstrument:
        return _NULL_INSTRUMENT

    def instruments(self) -> list:
        return []

    def snapshot(self) -> Dict[str, float]:
        return {}


#: The process-wide disabled registry instrumented code defaults to.
NULL_METRICS = NullMetricsRegistry()
