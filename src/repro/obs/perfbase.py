"""Machine-readable bench summaries and perf-regression baselines.

The benches under ``benchmarks/`` print human tables; this module is
their machine-checkable counterpart. Each bench writes a
``BENCH_<experiment>.json`` summary — the key table values (modelled
minutes, reconfiguration counts, latencies) plus informational
metadata such as wall-clock — and a committed *baseline* under
``benchmarks/baselines/`` pins the expected value of every metric with
a per-metric relative tolerance. ``repro bench-diff`` (and the CI
``bench-diff`` job) compares the two and fails on any
tolerance-exceeding drift, which turns "the tables looked fine last
month" into an enforced invariant.

The key table values come from the calibrated runtime model and the
DES kernel, so they are bit-reproducible run to run: baselines can pin
them tightly. Wall-clock lives in ``meta`` and is *never* compared —
machine speed is not a property of the code under test.

Regression direction is per metric: ``"higher"`` means only an
increase beyond tolerance is bad (time-like metrics), ``"lower"``
means only a decrease (throughput-like), ``"both"`` (the default)
flags drift either way — right for modelled values that should not
move at all.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Mapping, Optional, Union

from repro.errors import PrEspError


class PerfBaseError(PrEspError):
    """Malformed summary/baseline files or bad comparison input."""


#: Filename prefix of the machine-readable bench summaries.
BENCH_PREFIX = "BENCH_"

#: Default relative tolerance when a baseline entry does not set one.
DEFAULT_TOLERANCE = 0.2

_DIRECTIONS = ("higher", "lower", "both")


# ----------------------------------------------------------------------
# summaries
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class BenchSummary:
    """One bench run's machine-readable output."""

    experiment: str
    metrics: Dict[str, float]
    meta: Dict[str, object] = field(default_factory=dict)

    def to_dict(self) -> Dict:
        return {
            "experiment": self.experiment,
            "metrics": {k: self.metrics[k] for k in sorted(self.metrics)},
            "meta": {k: self.meta[k] for k in sorted(self.meta)},
        }


def summary_path(directory: Union[str, Path], experiment: str) -> Path:
    """``<directory>/BENCH_<experiment>.json``."""
    return Path(directory) / f"{BENCH_PREFIX}{experiment}.json"


def write_summary(
    directory: Union[str, Path],
    experiment: str,
    metrics: Mapping[str, float],
    meta: Optional[Mapping[str, object]] = None,
) -> Path:
    """Write one deterministic ``BENCH_<experiment>.json``; returns it."""
    summary = BenchSummary(
        experiment=experiment,
        metrics={str(k): float(v) for k, v in metrics.items()},
        meta=dict(meta or {}),
    )
    path = summary_path(directory, experiment)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(summary.to_dict(), indent=2, sort_keys=True) + "\n")
    return path


def load_summary(path: Union[str, Path]) -> BenchSummary:
    """Parse one summary file."""
    path = Path(path)
    try:
        payload = json.loads(path.read_text())
        return BenchSummary(
            experiment=str(payload["experiment"]),
            metrics={str(k): float(v) for k, v in payload["metrics"].items()},
            meta=dict(payload.get("meta", {})),
        )
    except (OSError, ValueError, KeyError, TypeError) as error:
        raise PerfBaseError(f"unreadable bench summary {path}: {error}") from None


def find_summaries(directory: Union[str, Path]) -> Dict[str, Path]:
    """experiment -> summary path for every ``BENCH_*.json`` present."""
    directory = Path(directory)
    if not directory.is_dir():
        return {}
    out: Dict[str, Path] = {}
    for path in sorted(directory.glob(f"{BENCH_PREFIX}*.json")):
        out[path.stem[len(BENCH_PREFIX):]] = path
    return out


# ----------------------------------------------------------------------
# baselines
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class BaselineEntry:
    """Expected value of one metric plus its acceptance band."""

    value: float
    tolerance: float = DEFAULT_TOLERANCE
    direction: str = "both"

    def __post_init__(self) -> None:
        if self.tolerance < 0:
            raise PerfBaseError(f"tolerance must be non-negative: {self.tolerance}")
        if self.direction not in _DIRECTIONS:
            raise PerfBaseError(
                f"direction must be one of {_DIRECTIONS}, got {self.direction!r}"
            )


@dataclass(frozen=True)
class Baseline:
    """The committed expectation for one experiment."""

    experiment: str
    entries: Dict[str, BaselineEntry]


def baseline_path(directory: Union[str, Path], experiment: str) -> Path:
    """``<directory>/<experiment>.json``."""
    return Path(directory) / f"{experiment}.json"


def write_baseline(directory: Union[str, Path], baseline: Baseline) -> Path:
    """Persist one baseline file; returns its path."""
    path = baseline_path(directory, baseline.experiment)
    path.parent.mkdir(parents=True, exist_ok=True)
    payload = {
        "experiment": baseline.experiment,
        "metrics": {
            name: {
                "value": entry.value,
                "tolerance": entry.tolerance,
                "direction": entry.direction,
            }
            for name, entry in sorted(baseline.entries.items())
        },
    }
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return path


def load_baseline(path: Union[str, Path]) -> Baseline:
    """Parse one baseline file."""
    path = Path(path)
    try:
        payload = json.loads(path.read_text())
        entries = {
            str(name): BaselineEntry(
                value=float(spec["value"]),
                tolerance=float(spec.get("tolerance", DEFAULT_TOLERANCE)),
                direction=str(spec.get("direction", "both")),
            )
            for name, spec in payload["metrics"].items()
        }
        return Baseline(experiment=str(payload["experiment"]), entries=entries)
    except (OSError, ValueError, KeyError, TypeError) as error:
        raise PerfBaseError(f"unreadable baseline {path}: {error}") from None


def baseline_from_summary(
    summary: BenchSummary,
    tolerance: float = DEFAULT_TOLERANCE,
    direction: str = "both",
) -> Baseline:
    """Seed a baseline from one measured summary."""
    return Baseline(
        experiment=summary.experiment,
        entries={
            name: BaselineEntry(value=value, tolerance=tolerance, direction=direction)
            for name, value in summary.metrics.items()
        },
    )


def find_baselines(directory: Union[str, Path]) -> Dict[str, Path]:
    """experiment -> baseline path for every committed baseline."""
    directory = Path(directory)
    if not directory.is_dir():
        return {}
    return {path.stem: path for path in sorted(directory.glob("*.json"))}


# ----------------------------------------------------------------------
# comparison
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class MetricDelta:
    """One metric's baseline-vs-current judgement."""

    name: str
    baseline: float
    current: Optional[float]
    tolerance: float
    direction: str
    status: str  # "ok" | "regression" | "missing"

    @property
    def rel_delta(self) -> Optional[float]:
        """Signed relative change vs the baseline (None when absent)."""
        if self.current is None:
            return None
        if self.baseline == 0.0:
            return 0.0 if self.current == 0.0 else float("inf")
        return (self.current - self.baseline) / abs(self.baseline)


@dataclass
class ComparisonResult:
    """Outcome of diffing one experiment against its baseline."""

    experiment: str
    deltas: List[MetricDelta]
    missing_summary: bool = False

    @property
    def regressions(self) -> List[MetricDelta]:
        return [d for d in self.deltas if d.status != "ok"]

    @property
    def ok(self) -> bool:
        """True when the summary exists and every metric is in band."""
        return not self.missing_summary and not self.regressions

    def summary_lines(self) -> List[str]:
        """Per-metric judgement lines (``repro bench-diff`` output)."""
        if self.missing_summary:
            return [
                f"{self.experiment}: MISSING — baseline committed but no "
                f"{BENCH_PREFIX}{self.experiment}.json summary was produced"
            ]
        lines = [
            f"{self.experiment}: "
            + ("ok" if self.ok else f"{len(self.regressions)} regression(s)")
        ]
        for delta in self.deltas:
            if delta.current is None:
                lines.append(
                    f"  {delta.name:40s} MISSING (baseline {delta.baseline:g})"
                )
                continue
            rel = delta.rel_delta
            lines.append(
                f"  {delta.name:40s} {delta.status.upper():10s} "
                f"baseline {delta.baseline:g} current {delta.current:g} "
                f"({rel:+.1%}, tolerance ±{delta.tolerance:.0%} "
                f"{delta.direction})"
            )
        return lines


def _is_regression(entry: BaselineEntry, current: float) -> bool:
    if entry.value == 0.0:
        drift = abs(current)
        signed = current
    else:
        signed = (current - entry.value) / abs(entry.value)
        drift = abs(signed)
    if drift <= entry.tolerance:
        return False
    if entry.direction == "higher":
        return signed > 0
    if entry.direction == "lower":
        return signed < 0
    return True


def compare(summary: BenchSummary, baseline: Baseline) -> ComparisonResult:
    """Judge every baselined metric of one experiment.

    Metrics present in the baseline but absent from the summary count
    as failures (a silently dropped metric must not pass CI); metrics
    the summary grew that have no baseline yet are ignored here — seed
    them with :func:`baseline_from_summary` when intentional.
    """
    if summary.experiment != baseline.experiment:
        raise PerfBaseError(
            f"summary {summary.experiment!r} does not match baseline "
            f"{baseline.experiment!r}"
        )
    deltas: List[MetricDelta] = []
    for name, entry in sorted(baseline.entries.items()):
        current = summary.metrics.get(name)
        if current is None:
            status = "missing"
        elif _is_regression(entry, current):
            status = "regression"
        else:
            status = "ok"
        deltas.append(
            MetricDelta(
                name=name,
                baseline=entry.value,
                current=current,
                tolerance=entry.tolerance,
                direction=entry.direction,
                status=status,
            )
        )
    return ComparisonResult(experiment=summary.experiment, deltas=deltas)


def compare_directories(
    results_dir: Union[str, Path], baselines_dir: Union[str, Path]
) -> List[ComparisonResult]:
    """Diff every committed baseline against the produced summaries.

    A baseline without a matching ``BENCH_*.json`` yields a
    ``missing_summary`` result (a deleted bench must not silently drop
    its guarantee); summaries without baselines are simply not judged.
    """
    summaries = find_summaries(results_dir)
    results: List[ComparisonResult] = []
    for experiment, path in sorted(find_baselines(baselines_dir).items()):
        baseline = load_baseline(path)
        summary_file = summaries.get(experiment)
        if summary_file is None:
            results.append(
                ComparisonResult(
                    experiment=experiment, deltas=[], missing_summary=True
                )
            )
            continue
        results.append(compare(load_summary(summary_file), baseline))
    return results
