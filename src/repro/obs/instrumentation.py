"""One bundle for the observability hooks.

Every instrumented layer of the reproduction takes the same hooks —
a span tracer, a metrics registry, an event bus, a call-path profiler
— and threading them through as separate keyword arguments scaled
badly as the platform API grew. :class:`Instrumentation` carries them
as one value with null-object defaults, so the fully-disabled
configuration (``OFF``) costs nothing and needs no conditionals at
call sites.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.obs.events import NULL_EVENTS
from repro.obs.metrics import NULL_METRICS
from repro.obs.profiler import NULL_PROFILER
from repro.obs.tracer import NULL_TRACER


@dataclass(frozen=True)
class Instrumentation:
    """The tracer/metrics/events/profiler bundle instrumented code consumes.

    Each field defaults to its null object, so partially-enabled
    bundles (say, events only) are built by naming just that field.
    """

    tracer: object = NULL_TRACER
    metrics: object = NULL_METRICS
    events: object = NULL_EVENTS
    profiler: object = NULL_PROFILER

    @property
    def enabled(self) -> bool:
        """True when any of the hooks is a live implementation."""
        return bool(
            getattr(self.tracer, "enabled", False)
            or getattr(self.metrics, "enabled", False)
            or getattr(self.events, "enabled", False)
            or getattr(self.profiler, "enabled", False)
        )

    def with_events(self, events) -> "Instrumentation":
        """A copy with the event bus swapped (monitor wiring)."""
        return replace(self, events=events)


#: The shared fully-disabled bundle (all null objects).
OFF = Instrumentation()
