"""Profile baselines and hot-path regression gating.

The perfbase layer pins *end metrics* (modelled minutes, counts); this
module pins the *shape of the time* — where the host self-time of a
profiled workload goes. A committed baseline under
``benchmarks/baselines/profiles/`` records the expected host self-time
**share** of each significant call path; ``repro profile-diff``
compares a freshly produced ``PROFILE_<experiment>.json`` against it
and fails when:

* a baselined path's share drifts beyond its absolute band (a hot path
  got relatively hotter or colder),
* a path that is not in the baseline now carries at least the hotspot
  threshold of total self time (a **new hotspot** appeared), or
* the profile for a committed baseline was never produced.

Shares — fractions of the root's inclusive host time — are compared
instead of absolute times because machine speed is not a property of
the code under test; a uniformly faster box leaves every share intact,
while an accidental O(n²) in the NoC router loop shifts the
distribution and trips the gate. Call counts and simulated seconds are
exactly reproducible and are pinned by the determinism tests instead.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Tuple, Union

from repro.errors import PrEspError
from repro.obs.profiler import PATH_SEP, find_profiles, load_profile


class ProfDiffError(PrEspError):
    """Malformed profile baselines or bad comparison input."""


#: Default absolute band on a path's host self-time share.
DEFAULT_BAND = 0.15

#: Default share above which an unbaselined path counts as a new hotspot.
DEFAULT_HOTSPOT_THRESHOLD = 0.10

#: Default minimum share for a path to be recorded when seeding.
DEFAULT_MIN_SHARE = 0.02


def self_time_shares(document: Dict) -> Dict[str, float]:
    """path -> host self-time share, flattened from a profile document.

    Paths are ``;``-joined frame names starting below the root; the
    share denominator is the root's inclusive host time (all shares sum
    to 1 on a non-empty profile).
    """
    tree = document.get("tree")
    if tree is None:
        raise ProfDiffError("profile document has no tree")
    total = float(tree.get("host_s", 0.0))
    shares: Dict[str, float] = {}

    def walk(node: Dict, prefix: Tuple[str, ...]) -> None:
        path = prefix + (str(node["name"]),)
        self_host = float(node.get("self_host_s", 0.0))
        if self_host > 0.0 and total > 0.0:
            key = PATH_SEP.join(path)
            shares[key] = shares.get(key, 0.0) + self_host / total
        for child in node.get("children", ()):
            walk(child, path)

    for child in tree.get("children", ()):
        walk(child, ())
    return shares


# ----------------------------------------------------------------------
# baselines
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ProfileBaseline:
    """The committed hot-path expectation for one profiled experiment."""

    experiment: str
    paths: Dict[str, float]
    band: float = DEFAULT_BAND
    hotspot_threshold: float = DEFAULT_HOTSPOT_THRESHOLD

    def __post_init__(self) -> None:
        if self.band < 0:
            raise ProfDiffError(f"band must be non-negative: {self.band}")
        if not 0 < self.hotspot_threshold <= 1:
            raise ProfDiffError(
                f"hotspot threshold must be in (0, 1]: {self.hotspot_threshold}"
            )


def profile_baseline_path(directory: Union[str, Path], experiment: str) -> Path:
    """``<directory>/<experiment>.json``."""
    return Path(directory) / f"{experiment}.json"


def write_profile_baseline(
    directory: Union[str, Path], baseline: ProfileBaseline
) -> Path:
    """Persist one profile baseline; returns its path."""
    path = profile_baseline_path(directory, baseline.experiment)
    path.parent.mkdir(parents=True, exist_ok=True)
    payload = {
        "experiment": baseline.experiment,
        "band": baseline.band,
        "hotspot_threshold": baseline.hotspot_threshold,
        "paths": {name: baseline.paths[name] for name in sorted(baseline.paths)},
    }
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return path


def load_profile_baseline(path: Union[str, Path]) -> ProfileBaseline:
    """Parse one profile baseline file."""
    path = Path(path)
    try:
        payload = json.loads(path.read_text())
        return ProfileBaseline(
            experiment=str(payload["experiment"]),
            paths={str(k): float(v) for k, v in payload["paths"].items()},
            band=float(payload.get("band", DEFAULT_BAND)),
            hotspot_threshold=float(
                payload.get("hotspot_threshold", DEFAULT_HOTSPOT_THRESHOLD)
            ),
        )
    except (OSError, ValueError, KeyError, TypeError) as error:
        raise ProfDiffError(f"unreadable profile baseline {path}: {error}") from None


def baseline_from_profile(
    document: Dict,
    band: float = DEFAULT_BAND,
    hotspot_threshold: float = DEFAULT_HOTSPOT_THRESHOLD,
    min_share: float = DEFAULT_MIN_SHARE,
) -> ProfileBaseline:
    """Seed a baseline from one measured profile document.

    Only paths carrying at least ``min_share`` of self time are pinned
    — the long tail of sub-percent paths is noise, and anything that
    *grows* past ``hotspot_threshold`` is caught by the new-hotspot
    rule even without an entry.
    """
    shares = self_time_shares(document)
    return ProfileBaseline(
        experiment=str(document.get("experiment", "")),
        paths={path: share for path, share in shares.items() if share >= min_share},
        band=band,
        hotspot_threshold=hotspot_threshold,
    )


def find_profile_baselines(directory: Union[str, Path]) -> Dict[str, Path]:
    """experiment -> baseline path for every committed profile baseline."""
    directory = Path(directory)
    if not directory.is_dir():
        return {}
    return {path.stem: path for path in sorted(directory.glob("*.json"))}


# ----------------------------------------------------------------------
# comparison
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ShareDelta:
    """One call path's baseline-vs-current judgement."""

    path: str
    baseline: Optional[float]  # None for a new hotspot
    current: float
    band: float
    status: str  # "ok" | "regression" | "new-hotspot"

    @property
    def delta(self) -> Optional[float]:
        """Signed absolute share change (None for a new hotspot)."""
        if self.baseline is None:
            return None
        return self.current - self.baseline


@dataclass
class ProfileComparisonResult:
    """Outcome of diffing one experiment's profile against its baseline."""

    experiment: str
    deltas: List[ShareDelta]
    missing_profile: bool = False

    @property
    def failures(self) -> List[ShareDelta]:
        return [d for d in self.deltas if d.status != "ok"]

    @property
    def ok(self) -> bool:
        """True when the profile exists and every path is in band."""
        return not self.missing_profile and not self.failures

    def summary_lines(self) -> List[str]:
        """Per-path judgement lines (``repro profile-diff`` output)."""
        if self.missing_profile:
            return [
                f"{self.experiment}: MISSING — profile baseline committed but "
                f"no PROFILE_{self.experiment}.json was produced"
            ]
        lines = [
            f"{self.experiment}: "
            + ("ok" if self.ok else f"{len(self.failures)} hot-path failure(s)")
        ]
        for delta in self.deltas:
            if delta.baseline is None:
                lines.append(
                    f"  {delta.path:60s} NEW-HOTSPOT share {delta.current:.1%}"
                )
                continue
            lines.append(
                f"  {delta.path:60s} {delta.status.upper():12s} "
                f"baseline {delta.baseline:.1%} current {delta.current:.1%} "
                f"({delta.delta:+.1%}, band ±{delta.band:.0%})"
            )
        return lines


def compare_profile(document: Dict, baseline: ProfileBaseline) -> ProfileComparisonResult:
    """Judge every baselined path plus any new hotspot of one profile.

    A baselined path whose current share moved more than ``band``
    (absolutely) fails — including a path that vanished entirely, whose
    current share is 0. A current path absent from the baseline fails
    as a new hotspot once it carries at least ``hotspot_threshold`` of
    total self time; smaller unbaselined paths are ignored.
    """
    experiment = str(document.get("experiment", ""))
    if experiment != baseline.experiment:
        raise ProfDiffError(
            f"profile {experiment!r} does not match baseline "
            f"{baseline.experiment!r}"
        )
    current = self_time_shares(document)
    deltas: List[ShareDelta] = []
    for path, expected in sorted(baseline.paths.items()):
        share = current.get(path, 0.0)
        status = "ok" if abs(share - expected) <= baseline.band else "regression"
        deltas.append(
            ShareDelta(
                path=path,
                baseline=expected,
                current=share,
                band=baseline.band,
                status=status,
            )
        )
    for path, share in sorted(current.items()):
        if path in baseline.paths or share < baseline.hotspot_threshold:
            continue
        deltas.append(
            ShareDelta(
                path=path,
                baseline=None,
                current=share,
                band=baseline.band,
                status="new-hotspot",
            )
        )
    return ProfileComparisonResult(experiment=experiment, deltas=deltas)


def compare_profile_directories(
    results_dir: Union[str, Path], baselines_dir: Union[str, Path]
) -> List[ProfileComparisonResult]:
    """Diff every committed profile baseline against produced profiles.

    A baseline without a matching ``PROFILE_*.json`` yields a
    ``missing_profile`` result; profiles without baselines are not
    judged — seed them with :func:`baseline_from_profile` (or
    ``repro profile-diff --update``) when intentional.
    """
    profiles = find_profiles(results_dir)
    results: List[ProfileComparisonResult] = []
    for experiment, path in sorted(find_profile_baselines(baselines_dir).items()):
        baseline = load_profile_baseline(path)
        profile_file = profiles.get(experiment)
        if profile_file is None:
            results.append(
                ProfileComparisonResult(
                    experiment=experiment, deltas=[], missing_profile=True
                )
            )
            continue
        results.append(compare_profile(load_profile(profile_file), baseline))
    return results
