"""Exception hierarchy for the PR-ESP reproduction.

Every package raises subclasses of :class:`PrEspError` so callers can
catch platform failures without also swallowing programming errors.
"""

from __future__ import annotations


class PrEspError(Exception):
    """Base class of all errors raised by the ``repro`` library."""


class ConfigurationError(PrEspError):
    """An SoC configuration is malformed or violates a platform rule."""


class FabricError(PrEspError):
    """A device/fabric operation is illegal (bad coordinates, overflow)."""


class ResourceError(FabricError):
    """A resource request cannot be satisfied by the target region."""


class FloorplanError(PrEspError):
    """The floorplanner could not produce a legal set of pblocks."""


class DprRuleViolation(PrEspError):
    """A design construct violates a Xilinx DPR/DFX design rule.

    The paper lists two concrete ones that motivated the reconfigurable
    tile: clock-modifying logic inside a reconfigurable partition and
    route-through paths crossing it.
    """


class SynthesisError(PrEspError):
    """Simulated synthesis failed (unresolved black box, bad hierarchy)."""


class ImplementationError(PrEspError):
    """Simulated place-and-route or bitstream generation failed."""


class FlowError(PrEspError):
    """The DPR flow orchestration hit an inconsistent state."""


class SimulationError(PrEspError):
    """The discrete-event simulation kernel was misused."""


class ReconfigurationError(PrEspError):
    """The runtime reconfiguration manager rejected or failed a request."""


class DriverError(ReconfigurationError):
    """Driver registration/lookup failed in the runtime manager."""


class StuckTransferError(ReconfigurationError):
    """A bitstream transfer exceeded the reconfiguration deadline.

    Raised by the manager's watchdog when the PRC holds the ICAP past
    the recovery policy's deadline; the transfer is aborted (DFXC
    reset) so the ICAP is freed for the retry.
    """

    fault_kind = "stuck"


class KernelHangError(ReconfigurationError):
    """An accelerator invocation hung past its execution deadline.

    Raised after the watchdog's retry budget for hung kernels is
    exhausted; the tile is reset (driver unloaded, region dark).
    """

    fault_kind = "hang"


class TileQuarantinedError(ReconfigurationError):
    """The tile was quarantined after persistent failures.

    The manager rejects further invocations; schedulers are expected
    to re-plan the work onto surviving tiles (or software).
    """


class NocError(PrEspError):
    """Illegal NoC construction or routing request."""
