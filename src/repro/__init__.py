"""PR-ESP reproduction: design and programming of partially
reconfigurable SoCs (DATE 2023) on fully simulated substrates.

Public entry points:

* :mod:`repro.api` — the five-verb facade (``build``, ``build_many``,
  ``deploy``, ``compare``, ``monitor``) the CLI, examples and benches
  are written against;
* :class:`repro.core.PrEspPlatform` — the full platform object behind
  the facade: build SoCs through the automated DPR flow, compare
  against the monolithic baseline, profile and deploy the WAMI
  application;
* :mod:`repro.core.designs` — the paper's evaluation SoCs;
* :mod:`repro.soc` / :mod:`repro.fabric` / :mod:`repro.noc` /
  :mod:`repro.vivado` / :mod:`repro.floorplan` / :mod:`repro.flow` /
  :mod:`repro.runtime` / :mod:`repro.wami` / :mod:`repro.energy` — the
  individual subsystems.
"""

from repro.core.platform import BuildResult, PrEspPlatform, WamiRunReport
from repro.core.metrics import DesignMetrics, compute_metrics
from repro.core.strategy import ImplementationStrategy, choose_strategy
from repro.soc.config import SocConfig
from repro.soc.tiles import CpuCore, ReconfigurableTile, Tile, TileKind

__version__ = "1.0.0"

__all__ = [
    "PrEspPlatform",
    "BuildResult",
    "WamiRunReport",
    "DesignMetrics",
    "compute_metrics",
    "ImplementationStrategy",
    "choose_strategy",
    "SocConfig",
    "Tile",
    "TileKind",
    "CpuCore",
    "ReconfigurableTile",
    "__version__",
]
