"""Bitstream generation with the compression model.

Partial bitstream size is determined by the *region*, not the module:
every configuration frame of the pblock's columns must be written. The
model charges a per-LUT-of-area cost for the frames plus a fixed
command/header overhead, and applies Vivado's optional compression,
whose effectiveness degrades as the region fills with real logic
(denser configuration data has less frame-level redundancy). PR-ESP
enables compression by default "to reduce the memory access latency
during reconfiguration" (Sec. VI).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional

from repro.errors import ImplementationError
from repro.fabric.resources import ResourceVector

#: Configuration-frame bytes per LUT of *region area* (full VC707
#: bitstream ≈ 19.3 MB over ≈ 300k LUTs ≈ 64 B/LUT).
BYTES_PER_AREA_LUT = 64

#: Fixed partial-bitstream overhead: sync words, frame-address setup,
#: per-region clearing commands.
PARTIAL_OVERHEAD_BYTES = 60 * 1024

#: Compression ratio model: ratio = base + slope * occupancy.
COMPRESSION_BASE = 0.035
COMPRESSION_SLOPE = 0.055


class BitstreamKind(enum.Enum):
    """Full-device or partial (one reconfigurable partition)."""

    FULL = "full"
    PARTIAL = "partial"


@dataclass(frozen=True)
class Bitstream:
    """One generated bitstream."""

    name: str
    kind: BitstreamKind
    size_bytes: int
    compressed: bool
    #: For partial bitstreams: the target reconfigurable partition.
    target_rp: Optional[str] = None
    #: For partial bitstreams: the accelerator (mode) it loads.
    mode: Optional[str] = None

    def __post_init__(self) -> None:
        if self.size_bytes <= 0:
            raise ImplementationError(f"{self.name}: bitstream must have positive size")
        if self.kind is BitstreamKind.PARTIAL and not self.target_rp:
            raise ImplementationError(f"{self.name}: partial bitstream needs a target RP")

    @property
    def size_kib(self) -> float:
        """Size in KiB (the unit of Table VI)."""
        return self.size_bytes / 1024.0


class BitstreamGenerator:
    """Produces full and partial bitstreams from routed designs."""

    def __init__(self, compress: bool = True) -> None:
        self.compress = compress

    # ------------------------------------------------------------------
    def compression_ratio(self, occupancy: float) -> float:
        """Compressed/uncompressed ratio at a given region occupancy."""
        occupancy = min(max(occupancy, 0.0), 1.0)
        return COMPRESSION_BASE + COMPRESSION_SLOPE * occupancy

    def partial_bitstream(
        self,
        rp_name: str,
        mode_name: str,
        region_resources: ResourceVector,
        module_resources: ResourceVector,
    ) -> Bitstream:
        """Partial bitstream for ``mode_name`` loaded into ``rp_name``.

        ``region_resources`` is what the floorplanned pblock encloses;
        ``module_resources`` what the mode actually uses.
        """
        area_luts = region_resources.lut
        if area_luts <= 0:
            raise ImplementationError(f"{rp_name}: region has no LUT area")
        if module_resources.lut > area_luts:
            raise ImplementationError(
                f"{rp_name}: module ({module_resources.lut} LUTs) exceeds the "
                f"region ({area_luts} LUTs)"
            )
        raw = area_luts * BYTES_PER_AREA_LUT
        if self.compress:
            occupancy = module_resources.lut / area_luts
            raw = int(raw * self.compression_ratio(occupancy))
        size = raw + PARTIAL_OVERHEAD_BYTES
        return Bitstream(
            name=f"{rp_name}_{mode_name}.pbs",
            kind=BitstreamKind.PARTIAL,
            size_bytes=size,
            compressed=self.compress,
            target_rp=rp_name,
            mode=mode_name,
        )

    def blanking_bitstream(self, rp_name: str, region_resources: ResourceVector) -> Bitstream:
        """Greybox/blanking bitstream that erases a region (occupancy 0)."""
        raw = region_resources.lut * BYTES_PER_AREA_LUT
        if self.compress:
            raw = int(raw * self.compression_ratio(0.0))
        return Bitstream(
            name=f"{rp_name}_blank.pbs",
            kind=BitstreamKind.PARTIAL,
            size_bytes=raw + PARTIAL_OVERHEAD_BYTES,
            compressed=self.compress,
            target_rp=rp_name,
            mode="blank",
        )

    def full_bitstream(self, design: str, device_resources: ResourceVector) -> Bitstream:
        """Full-device bitstream (never compressed in the PR-ESP flow:
        the initial configuration happens once, off the critical path)."""
        size = device_resources.lut * BYTES_PER_AREA_LUT + PARTIAL_OVERHEAD_BYTES
        return Bitstream(
            name=f"{design}.bit",
            kind=BitstreamKind.FULL,
            size_bytes=size,
            compressed=False,
        )
