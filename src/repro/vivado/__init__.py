"""A simulated Xilinx Vivado: synthesis, P&R, bitstreams, job server.

The paper's flow drives Vivado 2019.2; offline reproduction replaces
the tool with a model that exposes the same operational surface — OoC
synthesis producing netlist checkpoints, static-with-placeholders P&R,
in-context incremental P&R of reconfigurable tiles, full-design serial
runs, and (compressed) bitstream generation — and charges CPU time from
a runtime model calibrated against every timing observation published
in Tables III and V.
"""

from repro.vivado.runtime_model import (
    JobKind,
    RuntimeCurve,
    RuntimeModel,
    CALIBRATED_MODEL,
    fit_runtime_model,
)
from repro.vivado.checkpoint import NetlistCheckpoint, RoutedCheckpoint
from repro.vivado.synthesis import SynthesisEngine, SynthesisResult
from repro.vivado.par import ParEngine, ParResult, ParMode
from repro.vivado.bitstream import (
    Bitstream,
    BitstreamKind,
    BitstreamGenerator,
)
from repro.vivado.tool import VivadoInstance, ToolJournalEntry
from repro.vivado.server import VivadoServer, ToolJob, ScheduleResult
from repro.vivado.timing import (
    PartitionTiming,
    TimingReport,
    analyze_timing,
    estimate_fmax_mhz,
)
from repro.vivado.characterization import (
    Characterizer,
    CharacterizationPoint,
    CharacterizationRun,
    characterization_design,
    default_design_space,
    synthetic_accelerator,
)

__all__ = [
    "JobKind",
    "RuntimeCurve",
    "RuntimeModel",
    "CALIBRATED_MODEL",
    "fit_runtime_model",
    "NetlistCheckpoint",
    "RoutedCheckpoint",
    "SynthesisEngine",
    "SynthesisResult",
    "ParEngine",
    "ParResult",
    "ParMode",
    "Bitstream",
    "BitstreamKind",
    "BitstreamGenerator",
    "VivadoInstance",
    "ToolJournalEntry",
    "VivadoServer",
    "ToolJob",
    "ScheduleResult",
    "Characterizer",
    "CharacterizationPoint",
    "CharacterizationRun",
    "characterization_design",
    "default_design_space",
    "synthetic_accelerator",
    "PartitionTiming",
    "TimingReport",
    "analyze_timing",
    "estimate_fmax_mhz",
]
