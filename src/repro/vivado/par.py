"""Simulated place-and-route.

Three modes mirror the runs the PR-ESP flow launches:

* ``STATIC_WITH_PLACEHOLDERS`` — place and route the static netlist
  with pre-built empty hard macros filling the reconfigurable black
  boxes, then lock the routing (the intermediate step of the parallel
  strategies);
* ``IN_CONTEXT`` — open the locked static checkpoint and implement one
  group of reconfigurable tiles inside their pblocks (one such run per
  parallel tool instance; its time is the paper's Ω);
* ``FULL_SERIAL`` — implement the whole DPR design in one run (τ = 1),
  or the standard Xilinx flow's single-instance compilation.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Sequence

from repro.errors import ImplementationError
from repro.fabric.device import Device
from repro.fabric.pblock import Pblock, check_pblock
from repro.fabric.resources import ResourceVector
from repro.vivado.checkpoint import NetlistCheckpoint, RoutedCheckpoint
from repro.vivado.runtime_model import CALIBRATED_MODEL, JobKind, RuntimeModel


class ParMode(enum.Enum):
    """The P&R run modes of the flow."""

    STATIC_WITH_PLACEHOLDERS = "static_placeholders"
    IN_CONTEXT = "in_context"
    FULL_SERIAL = "full_serial"
    MONOLITHIC = "monolithic"  # standard-flow single-instance DPR compile


@dataclass(frozen=True)
class ParResult:
    """Routed checkpoint plus charged CPU time."""

    checkpoint: RoutedCheckpoint
    cpu_minutes: float


_MODE_TO_JOB = {
    ParMode.STATIC_WITH_PLACEHOLDERS: JobKind.STATIC_PAR,
    ParMode.IN_CONTEXT: JobKind.CONTEXT_PAR,
    ParMode.FULL_SERIAL: JobKind.SERIAL_DPR_PAR,
    ParMode.MONOLITHIC: JobKind.MONO_DPR_PAR,
}


def job_kind_for_mode(mode: ParMode) -> JobKind:
    """The runtime-model job kind a P&R mode is charged as.

    Public because the fault-tolerant flow keys its retry planning on
    the same kinds the cost model uses — one taxonomy for both cost
    and failure probability.
    """
    try:
        return _MODE_TO_JOB[mode]
    except KeyError:  # pragma: no cover - enum exhaustive today
        raise ImplementationError(f"no job kind for P&R mode {mode}") from None


class ParEngine:
    """Runs simulated P&R jobs against a runtime model."""

    def __init__(self, model: RuntimeModel = CALIBRATED_MODEL) -> None:
        self.model = model

    def run_static(
        self,
        static_netlist: NetlistCheckpoint,
        device: Device,
        pblocks: Sequence[Pblock],
        rp_demands: Sequence[ResourceVector],
    ) -> ParResult:
        """Static pre-route with placeholder macros in the black boxes.

        The pblocks are validated against the device and each RP's
        demand before routing (the placeholder macros are prepared
        offline in the real flow, so they add no timing overhead — the
        run is charged only for the static netlist size).
        """
        if len(pblocks) != len(static_netlist.black_boxes):
            raise ImplementationError(
                f"{static_netlist.design}: {len(static_netlist.black_boxes)} black "
                f"boxes but {len(pblocks)} pblocks"
            )
        if len(rp_demands) != len(pblocks):
            raise ImplementationError(
                f"{static_netlist.design}: demand list does not match pblocks"
            )
        placed = list(pblocks)
        for pblock, demand in zip(placed, rp_demands):
            report = check_pblock(device, pblock, demand, others=placed)
            if not report.legal:
                raise ImplementationError(
                    f"{static_netlist.design}: illegal pblock {pblock.name}: "
                    + "; ".join(report.violations)
                )
        cpu = self.model.job_minutes(JobKind.STATIC_PAR, static_netlist.kluts)
        checkpoint = RoutedCheckpoint(
            design=f"{static_netlist.design}_static_routed",
            kluts=static_netlist.kluts,
            locked_static=True,
            pblocks=tuple(placed),
            cpu_minutes=cpu,
        )
        return ParResult(checkpoint=checkpoint, cpu_minutes=cpu)

    def run_in_context(
        self,
        static_routed: RoutedCheckpoint,
        group: Sequence[NetlistCheckpoint],
        pblock_names: Sequence[str],
    ) -> ParResult:
        """Implement a group of reconfigurable netlists in context.

        Requires a locked static checkpoint; every member of the group
        must be an OoC netlist and must target one of the checkpoint's
        pblocks. Charged for the summed group size (the paper's Ω
        grows with the group's total LUTs).
        """
        if not static_routed.locked_static:
            raise ImplementationError(
                f"{static_routed.design}: in-context P&R needs a locked static design"
            )
        if not group:
            raise ImplementationError("in-context P&R of an empty group")
        if len(pblock_names) != len(group):
            raise ImplementationError("one target pblock per group member required")
        known = {p.name for p in static_routed.pblocks}
        for netlist, pblock_name in zip(group, pblock_names):
            if not netlist.ooc:
                raise ImplementationError(
                    f"{netlist.design}: in-context member must be an OoC netlist"
                )
            if pblock_name not in known:
                raise ImplementationError(
                    f"{netlist.design}: unknown target pblock {pblock_name!r}"
                )
        group_kluts = sum(n.kluts for n in group)
        cpu = self.model.job_minutes(JobKind.CONTEXT_PAR, group_kluts)
        checkpoint = RoutedCheckpoint(
            design="+".join(n.design for n in group) + "_routed",
            kluts=group_kluts,
            locked_static=False,
            pblocks=static_routed.pblocks,
            cpu_minutes=cpu,
        )
        return ParResult(checkpoint=checkpoint, cpu_minutes=cpu)

    def run_full(
        self,
        static_netlist: NetlistCheckpoint,
        rp_netlists: Sequence[NetlistCheckpoint],
        device: Device,
        pblocks: Sequence[Pblock],
        rp_demands: Sequence[ResourceVector],
        mode: ParMode = ParMode.FULL_SERIAL,
    ) -> ParResult:
        """Whole-design single-instance P&R (serial PR-ESP or baseline).

        In the serial PR-ESP run the reconfigurable netlists are charged
        at the model's reconfigurable-LUT weight (pblock-constrained
        placement); the monolithic baseline passes one global netlist
        and an empty RP list (its curve was fitted on total size).
        """
        if mode not in (ParMode.FULL_SERIAL, ParMode.MONOLITHIC):
            raise ImplementationError(f"run_full cannot execute mode {mode}")
        placed = list(pblocks)
        for pblock, demand in zip(placed, rp_demands):
            report = check_pblock(device, pblock, demand, others=placed)
            if not report.legal:
                raise ImplementationError(
                    f"illegal pblock {pblock.name}: " + "; ".join(report.violations)
                )
        static_kluts = static_netlist.kluts
        reconf_kluts = sum(n.kluts for n in rp_netlists)
        if mode is ParMode.FULL_SERIAL:
            cpu = self.model.serial_par_minutes(static_kluts, reconf_kluts)
        else:
            cpu = self.model.job_minutes(
                JobKind.MONO_DPR_PAR, static_kluts + reconf_kluts
            )
        checkpoint = RoutedCheckpoint(
            design=static_netlist.design + "_full_routed",
            kluts=static_kluts + reconf_kluts,
            locked_static=True,
            pblocks=tuple(placed),
            cpu_minutes=cpu,
        )
        return ParResult(checkpoint=checkpoint, cpu_minutes=cpu)
