"""A Vivado tool instance: stateful façade over the simulated engines.

Each instance mirrors one launched ``vivado -mode batch`` process: it
executes a sequence of commands (synthesis, P&R, bitstream writes),
accumulates CPU time, and keeps a journal of what ran — the equivalent
of the .jou file, which the flow's reports surface.

When constructed with a :class:`~repro.vivado.faults.FaultPlanner`,
synthesis and P&R commands run under the CAD fault model: a failed
attempt burns its full modelled runtime, waits the policy's backoff,
and retries — all charged to the instance so the schedule makespan
reflects the retries. A job that exhausts its attempts raises
:class:`~repro.vivado.faults.CadFaultError` *after* charging the burned
minutes. Bitstream writes are exempt: their cost is absorbed in the
fitted P&R curves, and the flow relies on blanking images always being
writable to keep degraded builds loadable.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.fabric.device import Device
from repro.obs.logconfig import get_logger
from repro.fabric.pblock import Pblock
from repro.fabric.resources import ResourceVector
from repro.soc.rtl import Module
from repro.vivado.bitstream import Bitstream, BitstreamGenerator
from repro.vivado.checkpoint import NetlistCheckpoint, RoutedCheckpoint
from repro.vivado.faults import CadFaultError, FaultPlanner
from repro.vivado.par import ParEngine, ParMode, job_kind_for_mode
from repro.vivado.runtime_model import CALIBRATED_MODEL, JobKind, RuntimeModel
from repro.vivado.synthesis import SynthesisEngine

logger = get_logger("vivado.tool")


@dataclass(frozen=True)
class ToolJournalEntry:
    """One executed command with its charged CPU minutes."""

    command: str
    cpu_minutes: float


class VivadoInstance:
    """One simulated tool process."""

    def __init__(
        self,
        name: str,
        model: RuntimeModel = CALIBRATED_MODEL,
        compress_bitstreams: bool = True,
        planner: Optional[FaultPlanner] = None,
        stage: str = "",
    ) -> None:
        self.name = name
        self.model = model
        self.planner = planner
        self.stage = stage
        self._synth = SynthesisEngine(model)
        self._par = ParEngine(model)
        self._bitgen = BitstreamGenerator(compress=compress_bitstreams)
        self.journal: List[ToolJournalEntry] = []
        self.cpu_minutes: float = 0.0

    # ------------------------------------------------------------------
    def _charge(self, command: str, cpu_minutes: float) -> None:
        self.journal.append(ToolJournalEntry(command=command, cpu_minutes=cpu_minutes))
        self.cpu_minutes += cpu_minutes
        logger.debug("%s: %s (%.2f min)", self.name, command, cpu_minutes)

    def _charge_job(self, kind: JobKind, command: str, base_minutes: float) -> None:
        """Charge one retryable CAD job, expanding attempts if faulty.

        Without a planner (or when the job succeeds first try) the
        journal is byte-identical to the fault-free instance. A
        permanently failed job charges everything it burned, then
        raises :class:`CadFaultError`.
        """
        if self.planner is None:
            self._charge(command, base_minutes)
            return
        execution = self.planner.run(kind, self.stage, self.name, base_minutes)
        if len(execution.attempts) == 1 and execution.succeeded:
            self._charge(command, base_minutes)
            return
        for attempt in execution.attempts:
            if attempt.backoff_minutes > 0:
                self._charge(
                    f"# retry backoff before attempt {attempt.index}",
                    attempt.backoff_minutes,
                )
            status = "ok" if attempt.succeeded else "FAILED"
            self._charge(
                f"{command} [attempt {attempt.index}: {status}]",
                attempt.busy_minutes,
            )
        if not execution.succeeded:
            logger.warning(
                "%s: %s failed permanently after %d attempts",
                self.name,
                command,
                len(execution.attempts),
            )
            raise CadFaultError(execution)

    # ------------------------------------------------------------------
    # synthesis
    # ------------------------------------------------------------------
    def synth_design(
        self,
        module: Module,
        ooc: bool = True,
        black_box_names: Sequence[str] = (),
    ) -> NetlistCheckpoint:
        """``synth_design [-mode out_of_context]`` on a module subtree."""
        result = self._synth.synth_module(module, ooc=ooc, black_box_names=black_box_names)
        mode = "-mode out_of_context " if ooc else ""
        self._charge_job(
            JobKind.OOC_SYNTH if ooc else JobKind.GLOBAL_SYNTH,
            f"synth_design {mode}-top {module.name}",
            result.cpu_minutes,
        )
        return result.checkpoint

    # ------------------------------------------------------------------
    # implementation
    # ------------------------------------------------------------------
    def implement_static(
        self,
        static_netlist: NetlistCheckpoint,
        device: Device,
        pblocks: Sequence[Pblock],
        rp_demands: Sequence[ResourceVector],
    ) -> RoutedCheckpoint:
        """place_design + route_design of the static part with placeholders."""
        result = self._par.run_static(static_netlist, device, pblocks, rp_demands)
        self._charge_job(
            job_kind_for_mode(ParMode.STATIC_WITH_PLACEHOLDERS),
            f"place_design; route_design; lock_design -level routing "
            f"[{static_netlist.design}]",
            result.cpu_minutes,
        )
        return result.checkpoint

    def implement_in_context(
        self,
        static_routed: RoutedCheckpoint,
        group: Sequence[NetlistCheckpoint],
        pblock_names: Sequence[str],
    ) -> RoutedCheckpoint:
        """Incremental implementation of a group of RPs in context."""
        result = self._par.run_in_context(static_routed, group, pblock_names)
        names = ", ".join(n.design for n in group)
        self._charge_job(
            job_kind_for_mode(ParMode.IN_CONTEXT),
            f"place_design; route_design [in-context: {names}]",
            result.cpu_minutes,
        )
        return result.checkpoint

    def implement_full(
        self,
        static_netlist: NetlistCheckpoint,
        rp_netlists: Sequence[NetlistCheckpoint],
        device: Device,
        pblocks: Sequence[Pblock],
        rp_demands: Sequence[ResourceVector],
        mode: ParMode = ParMode.FULL_SERIAL,
    ) -> RoutedCheckpoint:
        """Whole-design single-instance implementation."""
        result = self._par.run_full(
            static_netlist, rp_netlists, device, pblocks, rp_demands, mode=mode
        )
        self._charge_job(
            job_kind_for_mode(mode),
            f"place_design; route_design [{mode.value}, "
            f"{1 + len(rp_netlists)} netlists]",
            result.cpu_minutes,
        )
        return result.checkpoint

    # ------------------------------------------------------------------
    # bitstreams
    # ------------------------------------------------------------------
    def write_partial_bitstream(
        self,
        rp_name: str,
        mode_name: str,
        region_resources: ResourceVector,
        module_resources: ResourceVector,
    ) -> Bitstream:
        """``write_bitstream -cell`` for one reconfigurable module."""
        bitstream = self._bitgen.partial_bitstream(
            rp_name, mode_name, region_resources, module_resources
        )
        cpu = self.model.job_minutes(JobKind.BITGEN, region_resources.lut / 1000.0)
        self._charge(f"write_bitstream -cell {rp_name} {bitstream.name}", cpu)
        return bitstream

    def write_blanking_bitstream(
        self, rp_name: str, region_resources: ResourceVector
    ) -> Bitstream:
        """``write_bitstream`` of the empty greybox for one region."""
        bitstream = self._bitgen.blanking_bitstream(rp_name, region_resources)
        cpu = self.model.job_minutes(JobKind.BITGEN, region_resources.lut / 1000.0)
        self._charge(f"write_bitstream -cell {rp_name} {bitstream.name}", cpu)
        return bitstream

    def write_full_bitstream(self, design: str, device: Device) -> Bitstream:
        """``write_bitstream`` of the assembled full design."""
        bitstream = self._bitgen.full_bitstream(design, device.capacity())
        cpu = self.model.job_minutes(JobKind.BITGEN, device.capacity().lut / 1000.0)
        self._charge(f"write_bitstream {bitstream.name}", cpu)
        return bitstream
