"""The calibrated CAD-runtime model.

Every timing the paper reports is a Vivado CPU-runtime measurement on
an i7/64GB workstation. The reproduction replaces those measurements
with power-law curves

    t(L) = c + a * L**p          (L in kLUT, t in minutes)

one per job kind, least-squares fitted against the 40+ observations of
Tables III, IV and V (see ``tools/calibrate_runtime_model.py``, which
re-derives the constants from the published tables and the design
models in ``repro.core.designs``). Vivado runtimes are noisy — the
paper itself reports 48..98 minutes for identically-sized static runs —
so the curves capture the cost *landscape*, not exact points; the
EXPERIMENTS.md error bands quantify the residuals.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Tuple

from repro.core.metrics import DesignMetrics
from repro.core.strategy import ImplementationStrategy
from repro.errors import ImplementationError
from repro.units import MINUTE


class JobKind(enum.Enum):
    """CAD job kinds with distinct runtime behaviour."""

    OOC_SYNTH = "ooc_synth"  # out-of-context synthesis of one netlist
    GLOBAL_SYNTH = "global_synth"  # monolithic full-design synthesis
    STATIC_PAR = "static_par"  # static-only P&R with placeholder macros
    CONTEXT_PAR = "context_par"  # in-context P&R of a group of RPs (Ω)
    SERIAL_DPR_PAR = "serial_dpr_par"  # PR-ESP serial full-design P&R
    MONO_DPR_PAR = "mono_dpr_par"  # standard Xilinx DPR single-instance P&R
    BITGEN = "bitgen"  # bitstream generation


@dataclass(frozen=True)
class RuntimeCurve:
    """One power-law runtime curve t(L) = c + a * L**p (minutes, kLUT)."""

    c: float
    a: float
    p: float

    def minutes(self, kluts: float) -> float:
        """Runtime in minutes for a job over ``kluts`` thousand LUTs."""
        if kluts < 0:
            raise ImplementationError(f"negative design size: {kluts} kLUT")
        return self.c + self.a * kluts**self.p

    def seconds(self, kluts: float) -> float:
        """Runtime in seconds."""
        return self.minutes(kluts) * MINUTE


#: Placement inside reconfigurable pblocks is slower per LUT than free
#: placement (region constraints, partition-pin routing), so the serial
#: DPR run weights reconfigurable LUTs by this factor when computing its
#: effective size. Fitted together with the serial curve.
RECONF_LUT_WEIGHT = 1.10


class RuntimeModel:
    """A set of per-job-kind curves plus strategy-level estimators."""

    def __init__(
        self,
        curves: Dict[JobKind, RuntimeCurve],
        reconf_weight: float = RECONF_LUT_WEIGHT,
    ) -> None:
        missing = set(JobKind) - set(curves)
        if missing:
            raise ImplementationError(
                f"runtime model missing curves for {sorted(k.value for k in missing)}"
            )
        if reconf_weight < 1.0:
            raise ImplementationError(
                f"reconfigurable-LUT weight must be >= 1, got {reconf_weight}"
            )
        self.curves = dict(curves)
        self.reconf_weight = reconf_weight

    # ------------------------------------------------------------------
    # per-job costs
    # ------------------------------------------------------------------
    def job_minutes(self, kind: JobKind, kluts: float) -> float:
        """Minutes for one job of ``kind`` over ``kluts``."""
        return self.curves[kind].minutes(kluts)

    def job_seconds(self, kind: JobKind, kluts: float) -> float:
        """Seconds for one job of ``kind`` over ``kluts``."""
        return self.curves[kind].seconds(kluts)

    # ------------------------------------------------------------------
    # strategy-level P&R estimates (the quantities of Tables III/IV)
    # ------------------------------------------------------------------
    def static_par_minutes(self, static_kluts: float) -> float:
        """t_static — static pre-route with placeholder hard macros."""
        return self.job_minutes(JobKind.STATIC_PAR, static_kluts)

    def context_par_minutes(self, group_kluts: float) -> float:
        """Ω — in-context P&R of one group of reconfigurable tiles."""
        return self.job_minutes(JobKind.CONTEXT_PAR, group_kluts)

    def serial_par_minutes(self, static_kluts: float, reconf_kluts: float) -> float:
        """Serial (τ=1) full-design DPR P&R.

        The effective size weights reconfigurable LUTs by
        ``reconf_weight`` — placing into pblocks is slower per LUT.
        """
        effective = static_kluts + self.reconf_weight * reconf_kluts
        return self.job_minutes(JobKind.SERIAL_DPR_PAR, effective)

    def estimate_par_total(
        self,
        metrics: DesignMetrics,
        strategy: ImplementationStrategy,
        tau: Optional[int] = None,
    ) -> float:
        """Total P&R minutes for a strategy (T_P&R of Table IV).

        * serial: one full-design run;
        * fully-parallel: t_static + max_i Ω(tile_i);
        * semi-parallel: t_static + max over the τ LPT groups.
        """
        static_k = metrics.static_luts / 1000.0
        rp_k = [l / 1000.0 for l in metrics.rp_luts]
        if strategy is ImplementationStrategy.SERIAL:
            return self.serial_par_minutes(static_k, sum(rp_k))
        if strategy is ImplementationStrategy.FULLY_PARALLEL:
            omega = max(self.context_par_minutes(k) for k in rp_k)
            return self.static_par_minutes(static_k) + omega
        if strategy is ImplementationStrategy.SEMI_PARALLEL:
            # Imported here: repro.flow depends on repro.vivado at module
            # load, so the reverse edge must stay lazy.
            from repro.flow.grouping import balanced_groups

            groups_tau = tau if tau is not None else 2
            groups_tau = max(1, min(groups_tau, len(rp_k)))
            groups = balanced_groups(rp_k, groups_tau, weight=lambda k: k)
            omega = max(self.context_par_minutes(sum(g)) for g in groups)
            return self.static_par_minutes(static_k) + omega
        raise ImplementationError(f"unknown strategy {strategy}")  # pragma: no cover

    def strategy_estimator(self, tau: int = 2):
        """Adapter matching :data:`repro.core.strategy.RuntimeEstimator`."""

        def estimate(metrics: DesignMetrics, strategy: ImplementationStrategy) -> float:
            return self.estimate_par_total(metrics, strategy, tau=tau)

        return estimate


# ----------------------------------------------------------------------
# fitting
# ----------------------------------------------------------------------
def fit_runtime_curve(
    observations: Sequence[Tuple[float, float]],
    p_bounds: Tuple[float, float] = (0.3, 2.0),
) -> RuntimeCurve:
    """Least-squares fit of one curve to (kLUT, minutes) observations.

    With fewer than three observations the exponent is pinned to 1.0
    (affine fit) to avoid an under-determined problem.
    """
    import numpy as np
    from scipy.optimize import least_squares

    obs = list(observations)
    if not obs:
        raise ImplementationError("cannot fit a curve to zero observations")
    sizes = np.array([o[0] for o in obs], dtype=float)
    times = np.array([o[1] for o in obs], dtype=float)

    if len(obs) < 3:
        # Affine through the data (least squares on c, a with p = 1).
        a_mat = np.vstack([np.ones_like(sizes), sizes]).T
        coeff, *_ = np.linalg.lstsq(a_mat, times, rcond=None)
        c, a = float(max(coeff[0], 0.0)), float(max(coeff[1], 1e-6))
        return RuntimeCurve(c=c, a=a, p=1.0)

    def residuals(params: "np.ndarray") -> "np.ndarray":
        c, a, p = params
        return c + a * sizes**p - times

    mean_t = float(times.mean())
    mean_l = float(sizes.mean())
    c_upper = max(float(times.min()), 1.0)  # offset below the smallest obs
    start = [min(0.2 * mean_t, 0.9 * c_upper), 0.8 * mean_t / max(mean_l, 1.0), 1.0]
    fit = least_squares(
        residuals,
        start,
        bounds=([0.0, 1e-6, p_bounds[0]], [c_upper, 1e3, p_bounds[1]]),
    )
    c, a, p = (float(v) for v in fit.x)
    return RuntimeCurve(c=c, a=a, p=p)


def fit_runtime_model(
    observations: Dict[JobKind, Sequence[Tuple[float, float]]],
) -> RuntimeModel:
    """Fit a full model; kinds without observations keep the calibrated
    defaults below."""
    curves = dict(_CALIBRATED_CURVES)
    for kind, obs in observations.items():
        if obs:
            curves[kind] = fit_runtime_curve(obs)
    return RuntimeModel(curves)


# ----------------------------------------------------------------------
# calibrated constants
# ----------------------------------------------------------------------
# Derived by tools/calibrate_runtime_model.py from Tables III/IV/V.
# Re-run that script after touching accelerator sizes or tile costs and
# paste its output here.
_CALIBRATED_CURVES: Dict[JobKind, RuntimeCurve] = {
    JobKind.OOC_SYNTH: RuntimeCurve(c=42.0000, a=1.647902, p=0.3000),
    JobKind.GLOBAL_SYNTH: RuntimeCurve(c=52.3667, a=0.000959, p=2.0000),
    JobKind.STATIC_PAR: RuntimeCurve(c=0.0000, a=1.759774, p=0.8885),
    JobKind.CONTEXT_PAR: RuntimeCurve(c=0.0000, a=8.072631, p=0.5370),
    JobKind.SERIAL_DPR_PAR: RuntimeCurve(c=0.0000, a=0.027260, p=1.6764),
    JobKind.MONO_DPR_PAR: RuntimeCurve(c=114.5114, a=0.000874, p=2.0000),
    # The paper's timings do not separate write_bitstream from P&R, so
    # its cost is absorbed in the fitted P&R curves; the explicit BITGEN
    # job is kept near-zero to avoid double counting while still
    # appearing in tool journals.
    JobKind.BITGEN: RuntimeCurve(c=0.0, a=0.0005, p=1.0),
}

#: The model used throughout the library.
CALIBRATED_MODEL = RuntimeModel(_CALIBRATED_CURVES)
