"""Simulated synthesis: RTL module trees to netlist checkpoints.

Synthesis "reads" the RTL hierarchy (``repro.soc.rtl``), resolves leaf
LUT annotations into a netlist size, validates black-box instances, and
charges CPU time from the runtime model. Out-of-context mode mirrors
Vivado's ``synth_design -mode out_of_context``: no I/O insertion and a
checkpoint that can later be stitched into a parent run — the feature
the PR-ESP flow exploits to parallelize all syntheses.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.errors import SynthesisError
from repro.soc.rtl import Module
from repro.vivado.checkpoint import NetlistCheckpoint
from repro.vivado.runtime_model import CALIBRATED_MODEL, JobKind, RuntimeModel


@dataclass(frozen=True)
class SynthesisResult:
    """Checkpoint plus the CPU time the run charged."""

    checkpoint: NetlistCheckpoint
    cpu_minutes: float


class SynthesisEngine:
    """Runs simulated syntheses against a runtime model."""

    def __init__(self, model: RuntimeModel = CALIBRATED_MODEL) -> None:
        self.model = model

    def synth_module(
        self,
        module: Module,
        ooc: bool = True,
        black_box_names: Sequence[str] = (),
    ) -> SynthesisResult:
        """Synthesize one module subtree.

        ``black_box_names`` are instances inside the subtree to leave
        unresolved (the static part synthesizes reconfigurable wrappers
        as black boxes). Their LUT contributions are excluded from the
        netlist size.
        """
        black_set = set(black_box_names)
        found: set = set()
        luts = 0

        def visit(node: Module) -> None:
            if node.name in black_set:
                found.add(node.name)
                return
            luts_here = node.luts
            nonlocal luts
            luts += luts_here
            for child in node.children:
                visit(child)

        visit(module)
        missing = black_set - found
        if missing:
            raise SynthesisError(
                f"{module.name}: black boxes not found in hierarchy: {sorted(missing)}"
            )
        kluts = luts / 1000.0
        kind = JobKind.OOC_SYNTH if ooc else JobKind.GLOBAL_SYNTH
        cpu_minutes = self.model.job_minutes(kind, kluts)
        checkpoint = NetlistCheckpoint(
            design=module.name,
            kluts=kluts,
            ooc=ooc,
            black_boxes=tuple(sorted(black_set)),
        )
        return SynthesisResult(checkpoint=checkpoint, cpu_minutes=cpu_minutes)

    def synth_global(self, top: Module) -> SynthesisResult:
        """Monolithic full-design synthesis (the baseline flow's mode)."""
        return self.synth_module(top, ooc=False, black_box_names=())
