"""The Vivado characterization methodology as reusable code.

Sec. IV: "we performed an exhaustive characterization of the Vivado
tool... built an empirical model that correlates the size of a DPR
design against the total compilation time for P&R under different
parallelism configurations". The paper spent hundreds of CPU-hours on
four hand-built SoCs; this module industrializes the loop:

1. *generate* synthetic SoCs spanning the (κ, α_av, γ) space,
2. *measure* each at every feasible parallelism level through the flow,
3. *fit* fresh runtime curves from the observations,

so the characterization can be re-run whenever the cost model changes —
and so users targeting a different CAD tool have a harness to calibrate
against their own measurements.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.strategy import ImplementationStrategy
from repro.errors import ConfigurationError
from repro.flow.batch import BatchBuilder, BuildRequest, cached_build
from repro.flow.cache import FlowCache
from repro.flow.dpr_flow import DprFlow, FlowResult
from repro.soc.config import SocConfig
from repro.soc.esp_library import AcceleratorIP, HlsFlow
from repro.soc.tiles import ReconfigurableTile, Tile, TileKind
from repro.fabric.resources import ResourceVector
from repro.vivado.runtime_model import (
    JobKind,
    RuntimeModel,
    fit_runtime_model,
)


def synthetic_accelerator(name: str, luts: int) -> AcceleratorIP:
    """A parametric accelerator IP for characterization designs."""
    return AcceleratorIP(
        name=name,
        hls_flow=HlsFlow.RTL,
        resources=ResourceVector(
            lut=luts,
            ff=int(luts * 1.1),
            bram=max(2, luts // 1500),
            dsp=max(0, luts // 1000),
        ),
        description=f"synthetic characterization accelerator ({luts} LUTs)",
    )


def characterization_design(
    name: str,
    tile_luts: Sequence[int],
    host_cpu: bool = False,
    board: str = "vc707",
) -> SocConfig:
    """A characterization SoC with one synthetic accelerator per tile."""
    if not tile_luts:
        raise ConfigurationError("characterization design needs tiles")
    statics: List[Tile] = [
        Tile(kind=TileKind.MEM, name="mem0"),
        Tile(kind=TileKind.AUX, name="aux0"),
    ]
    if not host_cpu:
        statics.insert(0, Tile(kind=TileKind.CPU, name="cpu0"))
    tiles = statics + [
        ReconfigurableTile(
            name=f"rt{i}", modes=[synthetic_accelerator(f"synth_{name}_{i}", luts)]
        )
        for i, luts in enumerate(tile_luts)
    ]
    if host_cpu:
        tiles.append(ReconfigurableTile(name="rt_cpu", modes=[], host_cpu=True))
    total = len(tiles)
    cols = 3
    rows = (total + cols - 1) // cols
    while rows * cols < total:
        rows += 1
    return SocConfig.assemble(name, board=board, rows=rows, cols=cols, tiles=tiles)


@dataclass(frozen=True)
class CharacterizationPoint:
    """One measured (design, τ) point."""

    design: str
    tau: int
    strategy: ImplementationStrategy
    static_kluts: float
    group_makespan_kluts: float
    t_static_minutes: Optional[float]
    max_omega_minutes: Optional[float]
    total_minutes: float


@dataclass
class CharacterizationRun:
    """A full sweep: all designs at all parallelism levels."""

    points: List[CharacterizationPoint] = field(default_factory=list)

    def best_tau(self, design: str) -> int:
        """Fastest parallelism level measured for ``design``."""
        candidates = [p for p in self.points if p.design == design]
        if not candidates:
            raise ConfigurationError(f"no points for design {design!r}")
        return min(candidates, key=lambda p: p.total_minutes).tau

    def observations(self) -> Dict[JobKind, List[Tuple[float, float]]]:
        """(kLUT, minutes) samples per job kind, ready for refitting."""
        obs: Dict[JobKind, List[Tuple[float, float]]] = {
            JobKind.STATIC_PAR: [],
            JobKind.CONTEXT_PAR: [],
            JobKind.SERIAL_DPR_PAR: [],
        }
        for point in self.points:
            if point.tau == 1:
                # Effective serial size is not recoverable from the point
                # alone (needs the reconfigurable weight); store the raw
                # static+reconf total — adequate for refitting trends.
                obs[JobKind.SERIAL_DPR_PAR].append(
                    (point.static_kluts + point.group_makespan_kluts, point.total_minutes)
                )
            else:
                if point.t_static_minutes is not None:
                    obs[JobKind.STATIC_PAR].append(
                        (point.static_kluts, point.t_static_minutes)
                    )
                if point.max_omega_minutes is not None:
                    obs[JobKind.CONTEXT_PAR].append(
                        (point.group_makespan_kluts, point.max_omega_minutes)
                    )
        return obs


def strategy_for_tau(num_rps: int, tau: int) -> ImplementationStrategy:
    """The strategy an explicit parallelism level τ maps to."""
    if tau == 1:
        return ImplementationStrategy.SERIAL
    if tau >= num_rps:
        return ImplementationStrategy.FULLY_PARALLEL
    return ImplementationStrategy.SEMI_PARALLEL


class Characterizer:
    """Runs the sweep of Sec. IV over arbitrary designs.

    ``cache`` short-circuits repeat (design, τ) builds; ``jobs`` fans
    the sweep's remaining builds out over worker processes.
    """

    def __init__(
        self,
        flow: Optional[DprFlow] = None,
        cache: Optional[FlowCache] = None,
        jobs: int = 1,
    ) -> None:
        self.flow = flow or DprFlow()
        self.cache = cache
        self.batch = BatchBuilder(flow=self.flow, cache=cache, jobs=jobs)

    def close(self) -> None:
        """Shut down the sweep's warm worker pool (idempotent)."""
        self.batch.close()

    def __enter__(self) -> "Characterizer":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def taus_for(self, config: SocConfig, max_tau: Optional[int] = None) -> List[int]:
        """Feasible parallelism levels: 1..N (optionally capped)."""
        n = len(config.reconfigurable_tiles)
        cap = min(n, max_tau) if max_tau else n
        return list(range(1, cap + 1))

    def measure(self, config: SocConfig, tau: int) -> CharacterizationPoint:
        """Run the flow at an explicit τ and record the point."""
        strategy = strategy_for_tau(len(config.reconfigurable_tiles), tau)
        result, _ = cached_build(
            self.flow,
            self.cache,
            config,
            strategy_override=strategy,
            semi_tau=tau,
        )
        return self._point(config, tau, strategy, result)

    def _point(
        self,
        config: SocConfig,
        tau: int,
        strategy: ImplementationStrategy,
        result: FlowResult,
    ) -> CharacterizationPoint:
        group_kluts = self._group_makespan_kluts(result, tau)
        return CharacterizationPoint(
            design=config.name,
            tau=tau,
            strategy=strategy,
            static_kluts=config.static_luts() / 1000.0,
            group_makespan_kluts=group_kluts,
            t_static_minutes=result.static_par_minutes,
            max_omega_minutes=result.max_omega_minutes,
            total_minutes=result.par_makespan_minutes,
        )

    @staticmethod
    def _group_makespan_kluts(result: FlowResult, tau: int) -> float:
        sizes = {rp.name: rp.synthesis_luts for rp in result.partition.rps}
        if tau == 1:
            return sum(sizes.values()) / 1000.0
        return max(
            sum(sizes[name] for name in run.rp_names)
            for run in result.plan.context_runs
        ) / 1000.0

    def sweep(
        self, configs: Sequence[SocConfig], max_tau: Optional[int] = None
    ) -> CharacterizationRun:
        """Measure every config at every feasible τ.

        The whole grid goes through the batch build service in one
        shot, so cached points are skipped and the rest parallelize
        across the configured worker processes. Characterization needs
        every point, so a failed build raises.
        """
        grid = [
            (config, tau)
            for config in configs
            for tau in self.taus_for(config, max_tau)
        ]
        requests = [
            BuildRequest(
                config=config,
                strategy_override=strategy_for_tau(
                    len(config.reconfigurable_tiles), tau
                ),
                semi_tau=tau,
            )
            for config, tau in grid
        ]
        outcomes = self.batch.build_many(requests)
        run = CharacterizationRun()
        for (config, tau), request, outcome in zip(grid, requests, outcomes):
            run.points.append(
                self._point(
                    config, tau, request.strategy_override, outcome.unwrap()
                )
            )
        return run

    def refit(self, run: CharacterizationRun) -> RuntimeModel:
        """Fit fresh curves from a sweep's observations."""
        return fit_runtime_model(run.observations())


def default_design_space() -> List[SocConfig]:
    """A compact design space covering the paper's four classes."""
    return [
        # Class 1.1: large static, many small tiles.
        characterization_design("chz_11", [3_000] * 10),
        # Class 1.2: large static, large tiles exceeding it combined.
        characterization_design("chz_12", [30_000, 34_000, 28_000, 33_000]),
        # Class 1.3: reconfigurable total ~ static.
        characterization_design("chz_13", [28_000, 27_000, 28_000]),
        # Class 2.1: CPU hosted in an RP, small static.
        characterization_design("chz_21", [30_000, 34_000, 26_000], host_cpu=True),
    ]
