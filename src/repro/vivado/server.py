"""Multi-instance job scheduling.

The PR-ESP flow launches several Vivado processes at once; wall-clock
time is then governed by how jobs map onto instances. The server takes
a set of jobs with CPU costs and a parallelism width and computes the
schedule makespan — the quantity the paper's T_tot columns measure —
while recording which instance ran what.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from functools import cached_property
from typing import Dict, List, Sequence, Tuple

from repro.errors import FlowError
from repro.obs.logconfig import get_logger

logger = get_logger("vivado.server")


@dataclass(frozen=True)
class ToolJob:
    """One schedulable tool run."""

    name: str
    cpu_minutes: float
    #: Jobs that must complete before this one starts (by name).
    depends_on: Tuple[str, ...] = ()

    def __post_init__(self) -> None:
        if self.cpu_minutes < 0:
            raise FlowError(f"job {self.name}: negative CPU time")


@dataclass(frozen=True)
class ScheduledJob:
    """A job with its placement in the schedule."""

    job: ToolJob
    instance: int
    start_minutes: float
    end_minutes: float


@dataclass(frozen=True)
class ScheduleResult:
    """Outcome of scheduling a job set."""

    jobs: Tuple[ScheduledJob, ...]
    makespan_minutes: float
    instances_used: int

    @cached_property
    def _jobs_by_name(self) -> Dict[str, ScheduledJob]:
        """Lazily built name -> placement index (job names are unique)."""
        return {scheduled.job.name: scheduled for scheduled in self.jobs}

    def job_named(self, name: str) -> ScheduledJob:
        """Lookup by job name."""
        try:
            return self._jobs_by_name[name]
        except KeyError:
            raise FlowError(f"no scheduled job named {name!r}") from None


class VivadoServer:
    """Greedy list scheduler over a bounded pool of tool instances."""

    def __init__(self, max_instances: int) -> None:
        if max_instances <= 0:
            raise FlowError(f"need at least one tool instance, got {max_instances}")
        self.max_instances = max_instances

    def schedule(self, jobs: Sequence[ToolJob]) -> ScheduleResult:
        """Schedule ``jobs`` honoring dependencies and the instance cap.

        Ready jobs are dispatched longest-first onto the earliest-free
        instance (LPT list scheduling); dependencies must form a DAG.
        """
        if not jobs:
            raise FlowError("cannot schedule an empty job set")
        by_name = {job.name: job for job in jobs}
        if len(by_name) != len(jobs):
            raise FlowError("job names must be unique")
        for job in jobs:
            for dep in job.depends_on:
                if dep not in by_name:
                    raise FlowError(f"job {job.name} depends on unknown job {dep!r}")

        finish_time: dict = {}
        scheduled: List[ScheduledJob] = []
        # (free_at, instance_index) min-heap of instances.
        instances = [(0.0, i) for i in range(self.max_instances)]
        heapq.heapify(instances)
        remaining = {job.name for job in jobs}

        while remaining:
            ready = [
                by_name[name]
                for name in remaining
                if all(dep in finish_time for dep in by_name[name].depends_on)
            ]
            if not ready:
                raise FlowError("dependency cycle detected in job set")
            ready.sort(key=lambda j: (-j.cpu_minutes, j.name))
            for job in ready:
                free_at, index = heapq.heappop(instances)
                deps_done = max(
                    (finish_time[d] for d in job.depends_on), default=0.0
                )
                start = max(free_at, deps_done)
                end = start + job.cpu_minutes
                heapq.heappush(instances, (end, index))
                finish_time[job.name] = end
                scheduled.append(
                    ScheduledJob(job=job, instance=index, start_minutes=start, end_minutes=end)
                )
                remaining.discard(job.name)

        makespan = max(s.end_minutes for s in scheduled)
        used = len({s.instance for s in scheduled})
        logger.debug(
            "scheduled %d jobs on %d/%d instances, makespan %.1f min",
            len(scheduled),
            used,
            self.max_instances,
            makespan,
        )
        return ScheduleResult(
            jobs=tuple(sorted(scheduled, key=lambda s: (s.start_minutes, s.instance))),
            makespan_minutes=makespan,
            instances_used=used,
        )
