"""Design checkpoints (the .dcp files the real flow shuttles around)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from repro.errors import ImplementationError
from repro.fabric.pblock import Pblock


@dataclass(frozen=True)
class NetlistCheckpoint:
    """A post-synthesis netlist checkpoint.

    ``ooc`` marks out-of-context synthesis results (no I/O buffers; the
    unit can be stitched into a parent context later). ``black_boxes``
    names unresolved module instances the implementation step must fill
    with routed partitions or placeholder macros.
    """

    design: str
    kluts: float
    ooc: bool = False
    black_boxes: Tuple[str, ...] = ()

    def __post_init__(self) -> None:
        if self.kluts < 0:
            raise ImplementationError(f"{self.design}: negative netlist size")

    @property
    def is_assemblable(self) -> bool:
        """True if this checkpoint can be linked into a parent design."""
        return self.ooc


@dataclass(frozen=True)
class RoutedCheckpoint:
    """A placed-and-routed checkpoint.

    ``locked_static`` marks checkpoints whose static portion is routed
    and locked (the DFX requirement before implementing reconfigurable
    modules in context). ``pblocks`` are the reconfigurable-partition
    placements baked into the checkpoint.
    """

    design: str
    kluts: float
    locked_static: bool = False
    pblocks: Tuple[Pblock, ...] = ()
    #: CPU minutes the producing run charged (provenance/telemetry).
    cpu_minutes: float = 0.0

    def __post_init__(self) -> None:
        if self.kluts < 0:
            raise ImplementationError(f"{self.design}: negative routed size")
        if self.cpu_minutes < 0:
            raise ImplementationError(f"{self.design}: negative CPU time")
