"""A deterministic CAD fault model with retry/backoff planning.

Real DPR flows lose Vivado jobs to license hiccups, OOM kills and
transient tool crashes; the paper's hundreds-of-jobs orchestration only
stays push-button if the flow absorbs those failures. This module
models them the same way the rest of the reproduction models CAD cost:
*deterministically*, on the modelled CAD-minute clock.

Two ingredients:

* :class:`CadFaultModel` — seeded per-:class:`~repro.vivado.
  runtime_model.JobKind` failure probabilities plus targeted
  :meth:`~CadFaultModel.inject_fault` arming (the compile-time mirror
  of :meth:`repro.runtime.faults.RuntimeFaultModel.inject`). Every draw is
  a pure hash of ``(seed, kind, job, attempt)``, so the failure
  timeline of a build depends only on the seed and the job identities —
  never on execution order, process count, or resume boundaries.
* :class:`RetryPolicy` — bounded attempts with exponential backoff and
  seeded jitter, charged in modelled CAD minutes so retried jobs
  genuinely reshape the schedule makespan.

:func:`plan_job_execution` combines the two into a
:class:`JobExecution` — the full attempt timeline of one tool job —
which the flow charges onto its :class:`~repro.vivado.tool.
VivadoInstance` and surfaces in reports, events and checkpoints.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Dict, Mapping, Optional, Tuple

from repro.errors import FlowError
from repro.vivado.runtime_model import JobKind


class CadFaultError(FlowError):
    """A CAD job exhausted its retry budget.

    Carries the full :class:`JobExecution` so callers (the flow's
    degradation logic, reports) can account for the minutes burned.
    """

    def __init__(self, execution: "JobExecution") -> None:
        self.execution = execution
        super().__init__(
            f"job {execution.job_name} ({execution.kind.value}) failed "
            f"permanently after {len(execution.attempts)} attempts "
            f"({execution.total_minutes:.1f} CAD minutes burned)"
        )


def _unit_draw(*parts: object) -> float:
    """A deterministic uniform draw in [0, 1) keyed by ``parts``.

    SHA-256 over the joined key gives order-independence: the same
    (seed, kind, job, attempt) tuple draws the same number whether the
    job runs first, last, in a worker process, or after a resume.
    """
    key = "|".join(str(p) for p in parts).encode("utf-8")
    digest = hashlib.sha256(key).digest()
    return int.from_bytes(digest[:8], "big") / float(1 << 64)


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded retries with exponential backoff in CAD minutes.

    The backoff before attempt ``n`` (n >= 2) is::

        min(backoff_minutes * factor**(n - 2), cap_minutes) * (1 + j)

    where ``j`` is a seeded jitter draw in ``[0, jitter]``. The jitter
    is applied *after* the cap, so the bound visible to schedulers is
    ``cap_minutes * (1 + jitter)``.
    """

    max_attempts: int = 3
    backoff_minutes: float = 2.0
    factor: float = 2.0
    cap_minutes: float = 30.0
    jitter: float = 0.25

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise FlowError(f"retry policy needs >= 1 attempt, got {self.max_attempts}")
        if self.backoff_minutes < 0 or self.cap_minutes < 0:
            raise FlowError("backoff and cap must be non-negative")
        if self.factor < 1.0:
            raise FlowError(f"backoff factor must be >= 1, got {self.factor}")
        if not 0.0 <= self.jitter <= 1.0:
            raise FlowError(f"jitter must be in [0, 1], got {self.jitter}")

    @property
    def max_backoff_minutes(self) -> float:
        """Upper bound of any single backoff wait."""
        return self.cap_minutes * (1.0 + self.jitter)

    def backoff_before(self, attempt: int, seed: int, job_name: str) -> float:
        """Backoff minutes charged before ``attempt`` (1-based).

        Attempt 1 starts immediately; attempt ``n`` waits the capped
        exponential plus the seeded jitter for ``(seed, job, n)``.
        """
        if attempt <= 1:
            return 0.0
        base = min(
            self.backoff_minutes * self.factor ** (attempt - 2), self.cap_minutes
        )
        jitter = self.jitter * _unit_draw(seed, "backoff", job_name, attempt)
        return base * (1.0 + jitter)


#: Retry policy of the default flow: three attempts, 2-minute base
#: backoff doubling to a 30-minute cap, 25% seeded jitter.
DEFAULT_RETRY_POLICY = RetryPolicy()

#: A policy that never retries (one attempt, fail fast).
NO_RETRY = RetryPolicy(max_attempts=1, backoff_minutes=0.0, cap_minutes=0.0, jitter=0.0)


@dataclass(frozen=True)
class JobAttempt:
    """One attempt of a tool job on the modelled clock."""

    index: int  # 1-based
    succeeded: bool
    busy_minutes: float  # tool time burned by this attempt
    backoff_minutes: float  # wait charged before this attempt started


@dataclass(frozen=True)
class JobExecution:
    """The complete (deterministic) attempt timeline of one tool job."""

    job_name: str
    kind: JobKind
    attempts: Tuple[JobAttempt, ...]

    @property
    def succeeded(self) -> bool:
        """True when the final attempt completed."""
        return bool(self.attempts) and self.attempts[-1].succeeded

    @property
    def retries(self) -> int:
        """Failed attempts that were followed by another attempt."""
        return max(0, len(self.attempts) - 1)

    @property
    def total_minutes(self) -> float:
        """Instance-occupancy minutes: busy time plus backoff waits."""
        return sum(a.busy_minutes + a.backoff_minutes for a in self.attempts)

    def to_dict(self) -> Dict:
        """JSON form (checkpoint manifests, summary dicts)."""
        return {
            "job": self.job_name,
            "kind": self.kind.value,
            "succeeded": self.succeeded,
            "total_minutes": self.total_minutes,
            "attempts": [
                {
                    "index": a.index,
                    "succeeded": a.succeeded,
                    "busy_minutes": a.busy_minutes,
                    "backoff_minutes": a.backoff_minutes,
                }
                for a in self.attempts
            ],
        }


class CadFaultModel:
    """Seeded, order-independent CAD job failures.

    ``rates`` maps a :class:`JobKind` to its per-attempt failure
    probability (kinds absent from the map never fail stochastically).
    :meth:`inject_fault` arms targeted failures for one job regardless
    of the stochastic rates — mirroring the runtime's
    ``RuntimeFaultModel.inject`` hook, but on the compile side.

    The model is stateless with respect to stochastic draws (pure
    hashing), so re-planning the same job after a resume reproduces the
    same outcome. Targeted injections are consumed per (stage, job)
    pair in attempt order and also survive re-planning: an injection of
    ``count`` faults makes the job's first ``count`` attempts fail
    deterministically.
    """

    def __init__(
        self,
        seed: int = 0,
        rates: Optional[Mapping[JobKind, float]] = None,
    ) -> None:
        for kind, rate in (rates or {}).items():
            if not isinstance(kind, JobKind):
                raise FlowError(f"fault rates must be keyed by JobKind, got {kind!r}")
            if not 0.0 <= rate < 1.0:
                raise FlowError(
                    f"failure probability for {kind.value} must be in [0, 1), got {rate}"
                )
        self.seed = seed
        self.rates: Dict[JobKind, float] = dict(rates or {})
        self._injected: Dict[Tuple[str, str], int] = {}

    @property
    def enabled(self) -> bool:
        """True when any stochastic rate or injection is armed."""
        return bool(self.rates) or bool(self._injected)

    # ------------------------------------------------------------------
    def inject_fault(self, stage: str, job: str, count: int = 1) -> None:
        """Arm ``count`` deterministic failures for ``job`` in ``stage``.

        ``stage`` is the flow stage name (``synthesis``,
        ``implementation``, ``bitstreams``); ``job`` the tool-job name
        (``synth_rt0``, ``impl_ctx_1``...). With ``count`` at or above
        the retry policy's attempt budget the job fails permanently.
        """
        if count <= 0:
            raise FlowError(f"fault count must be positive, got {count}")
        self._injected[(stage, job)] = self._injected.get((stage, job), 0) + count

    def injected_count(self, stage: str, job: str) -> int:
        """Armed targeted failures for (stage, job)."""
        return self._injected.get((stage, job), 0)

    def attempt_fails(self, kind: JobKind, stage: str, job: str, attempt: int) -> bool:
        """Deterministic outcome of one attempt (1-based)."""
        if attempt <= self._injected.get((stage, job), 0):
            return True
        rate = self.rates.get(kind, 0.0)
        if rate <= 0.0:
            return False
        return _unit_draw(self.seed, kind.value, stage, job, attempt) < rate

    # ------------------------------------------------------------------
    def fingerprint(self) -> Dict:
        """Cache-key form: everything that can change a build's outcome."""
        return {
            "seed": self.seed,
            "rates": {
                kind.value: rate
                for kind, rate in sorted(self.rates.items(), key=lambda kv: kv[0].value)
            },
            "injected": {
                f"{stage}/{job}": count
                for (stage, job), count in sorted(self._injected.items())
            },
        }


class _NoFaults(CadFaultModel):
    """The always-healthy model instrumented code defaults to."""

    def __init__(self) -> None:
        super().__init__(seed=0, rates=None)

    def inject_fault(self, stage: str, job: str, count: int = 1) -> None:
        raise FlowError(
            "cannot inject faults into the shared NO_FAULTS model; "
            "construct a CadFaultModel instead"
        )


#: Shared disabled model: no job ever fails.
NO_FAULTS = _NoFaults()


def plan_job_execution(
    faults: CadFaultModel,
    policy: RetryPolicy,
    kind: JobKind,
    stage: str,
    job_name: str,
    base_minutes: float,
) -> JobExecution:
    """The deterministic attempt timeline of one job.

    Each attempt burns the job's full modelled runtime (a crashed
    Vivado run is paid for in wall time whether or not it produced a
    checkpoint); failed attempts are followed by the policy's backoff.
    The returned execution may end in failure — callers decide whether
    that aborts the flow or degrades it.
    """
    if base_minutes < 0:
        raise FlowError(f"job {job_name}: negative base runtime")
    attempts = []
    for index in range(1, policy.max_attempts + 1):
        backoff = policy.backoff_before(index, faults.seed, job_name)
        failed = faults.attempt_fails(kind, stage, job_name, index)
        attempts.append(
            JobAttempt(
                index=index,
                succeeded=not failed,
                busy_minutes=base_minutes,
                backoff_minutes=backoff,
            )
        )
        if not failed:
            break
    return JobExecution(job_name=job_name, kind=kind, attempts=tuple(attempts))


@dataclass
class FaultPlanner:
    """Per-build fault bookkeeping: plans executions, keeps the ledger.

    One planner is created per ``DprFlow.build()`` call; it owns the
    (model, policy) pair, accumulates every :class:`JobExecution` it
    planned, and answers the aggregate questions the report and the
    summary dict ask (total retries, permanently failed jobs).
    """

    faults: CadFaultModel = NO_FAULTS
    policy: RetryPolicy = DEFAULT_RETRY_POLICY
    executions: Dict[str, JobExecution] = field(default_factory=dict)

    def run(
        self, kind: JobKind, stage: str, job_name: str, base_minutes: float
    ) -> JobExecution:
        """Plan (and record) one job's execution; never raises."""
        execution = plan_job_execution(
            self.faults, self.policy, kind, stage, job_name, base_minutes
        )
        self.executions[job_name] = execution
        return execution

    def restore(self, execution: JobExecution) -> None:
        """Re-admit a checkpointed execution into the ledger on resume."""
        self.executions[execution.job_name] = execution

    @property
    def total_retries(self) -> int:
        return sum(e.retries for e in self.executions.values())

    @property
    def failed_jobs(self) -> Tuple[JobExecution, ...]:
        return tuple(
            e for _, e in sorted(self.executions.items()) if not e.succeeded
        )

    def executions_dict(self) -> Dict[str, Dict]:
        """Name-sorted JSON form of every planned execution."""
        return {name: e.to_dict() for name, e in sorted(self.executions.items())}
