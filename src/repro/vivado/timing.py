"""Post-route timing estimation.

The paper's SoCs run at 78 MHz on the VC707. This module adds the
missing piece a designer asks next — *will my partition meet timing?* —
with an empirical Fmax model per implemented partition:

    fmax = BASE / (1 + congestion(utilization)) / (1 + depth(kluts))

* ``congestion`` grows once pblock LUT utilization passes the headroom
  knee (~55%): a packed region routes through detours;
* ``depth`` grows logarithmically with netlist size: bigger blocks have
  deeper critical paths and longer average nets.

The constants are set so comfortably floorplanned mid-size accelerators
land in the 120-180 MHz band typical of HLS-generated Virtex-7 designs,
leaving ample slack at the paper's 78 MHz system clock, while regions
packed past ~90% utilization dip toward it.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List

from repro.errors import ImplementationError

#: Upper bound for a trivial block on -2 speed grade Virtex-7, MHz.
BASE_FMAX_MHZ = 200.0

#: Utilization above which congestion starts to bite.
CONGESTION_KNEE = 0.55

#: Congestion slope: full utilization costs this fraction of Fmax.
CONGESTION_SLOPE = 1.2

#: Logic-depth slope per ln(kLUT).
DEPTH_SLOPE = 0.055

#: The paper's deployment clock.
SYSTEM_CLOCK_MHZ = 78.0


def estimate_fmax_mhz(kluts: float, utilization: float) -> float:
    """Achievable clock for a partition of ``kluts`` at ``utilization``."""
    if kluts < 0:
        raise ImplementationError(f"negative partition size: {kluts}")
    if not 0.0 <= utilization <= 1.0:
        raise ImplementationError(f"utilization {utilization} outside [0, 1]")
    congestion = CONGESTION_SLOPE * max(0.0, utilization - CONGESTION_KNEE) / (
        1.0 - CONGESTION_KNEE
    )
    depth = DEPTH_SLOPE * math.log1p(kluts)
    return BASE_FMAX_MHZ / (1.0 + congestion) / (1.0 + depth)


@dataclass(frozen=True)
class PartitionTiming:
    """Timing estimate of one partition (static part or RP)."""

    name: str
    kluts: float
    utilization: float
    fmax_mhz: float

    def meets(self, clock_mhz: float = SYSTEM_CLOCK_MHZ) -> bool:
        """True when the partition closes timing at ``clock_mhz``."""
        return self.fmax_mhz >= clock_mhz

    @property
    def slack_ns(self) -> float:
        """Setup slack at the system clock (negative = violation)."""
        return 1000.0 / SYSTEM_CLOCK_MHZ - 1000.0 / self.fmax_mhz


@dataclass
class TimingReport:
    """Design-level timing estimate."""

    partitions: List[PartitionTiming]
    clock_mhz: float = SYSTEM_CLOCK_MHZ

    @property
    def system_fmax_mhz(self) -> float:
        """The design's achievable clock (slowest partition)."""
        return min(p.fmax_mhz for p in self.partitions)

    @property
    def meets_timing(self) -> bool:
        """True when every partition closes at the target clock."""
        return all(p.meets(self.clock_mhz) for p in self.partitions)

    def violations(self) -> List[PartitionTiming]:
        """Partitions that miss the target clock."""
        return [p for p in self.partitions if not p.meets(self.clock_mhz)]


def analyze_timing(flow_result, clock_mhz: float = SYSTEM_CLOCK_MHZ) -> TimingReport:
    """Timing report for a completed flow run.

    The static part is assumed spread over the non-reconfigurable
    fabric (low utilization); each RP's utilization is its demand over
    its floorplanned region.
    """
    from repro.flow.dpr_flow import FlowResult

    if not isinstance(flow_result, FlowResult):
        raise ImplementationError("analyze_timing expects a FlowResult")

    partitions: List[PartitionTiming] = []
    device = flow_result.config.device()
    reserved = sum(a.provided.lut for a in flow_result.floorplan.assignments)
    static_luts = flow_result.partition.static.luts
    static_avail = max(device.capacity().lut - reserved, static_luts)
    partitions.append(
        PartitionTiming(
            name="static",
            kluts=static_luts / 1000.0,
            utilization=static_luts / static_avail,
            fmax_mhz=estimate_fmax_mhz(
                static_luts / 1000.0, static_luts / static_avail
            ),
        )
    )
    for assignment in flow_result.floorplan.assignments:
        kluts = assignment.demand.lut / 1000.0
        utilization = assignment.lut_utilization
        partitions.append(
            PartitionTiming(
                name=assignment.rp_name,
                kluts=kluts,
                utilization=utilization,
                fmax_mhz=estimate_fmax_mhz(kluts, utilization),
            )
        )
    return TimingReport(partitions=partitions, clock_mhz=clock_mhz)
