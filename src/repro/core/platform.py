"""The PR-ESP platform facade.

One object ties the whole reproduction together: ``build()`` runs the
automated DPR flow (the paper's single make target), ``compare_with_
monolithic()`` reproduces the Table V experiment for one SoC,
``profile_wami()`` reproduces the Fig. 3 profiling methodology (a 2x2
SoC with a single accelerator tile), and ``deploy_wami()`` programs a
built SoC and runs the WAMI application under the runtime manager,
returning performance and energy (the Fig. 4 experiment).
"""

from __future__ import annotations

import contextlib
from dataclasses import dataclass
from typing import Callable, Dict, Iterator, List, Optional, Sequence, Tuple

from repro.core.strategy import ImplementationStrategy
from repro.energy.measure import EnergyReport, measure_energy
from repro.energy.power import DEFAULT_POWER_MODEL, PowerModel
from repro.errors import ConfigurationError
from repro.flow.batch import BatchBuilder, BuildOutcome, BuildRequest, cached_build
from repro.flow.dpr_flow import DprFlow, FlowResult
from repro.flow.monolithic import MonolithicFlow, MonolithicResult
from repro.flow.options import BuildOptions
from repro.noc.analytic import NocModel
from repro.noc.mesh import Mesh
from repro.obs.bridge import bridge_timeline, publish_runtime_stats
from repro.obs.context import RequestIdFactory, TelemetryContext, activate
from repro.obs.events import EventBus
from repro.obs.health import HealthMonitor, HealthReport
from repro.obs.instrumentation import OFF, Instrumentation
from repro.obs.metrics import NULL_METRICS
from repro.obs.profiler import NULL_PROFILER
from repro.obs.tracer import NULL_TRACER
from repro.obs.tsdb import TelemetryStore
from repro.runtime.api import DprUserApi
from repro.runtime.driver import AcceleratorDriver, DriverRegistry
from repro.runtime.executor import AppExecutor, ExecutionTimeline
from repro.runtime.faults import (
    NO_RUNTIME_FAULTS,
    RuntimeFaultKind,
    RuntimeFaultModel,
    RuntimeFaultOptions,
)
from repro.runtime.manager import ReconfigurationManager
from repro.runtime.memory import BitstreamStore
from repro.runtime.prc import PrcDevice
from repro.runtime.stats import RuntimeStats, collect_stats
from repro.sim.kernel import Simulator
from repro.soc.config import SocConfig
from repro.soc.tiles import ReconfigurableTile, Tile, TileKind
from repro.vivado.runtime_model import CALIBRATED_MODEL, RuntimeModel
from repro.wami.accelerators import WAMI_ACCELERATORS, wami_accelerator
from repro.wami.app import WamiApplication
from repro.wami.graph import WamiStage

#: SoC clock of the paper's deployment (VC707 at 78 MHz).
DEPLOYMENT_CLOCK_HZ = 78e6


@dataclass
class WamiRunReport:
    """Outcome of running WAMI on a built SoC."""

    config: SocConfig
    frames: int
    timeline: ExecutionTimeline
    energy: EnergyReport
    reconfigurations: int
    software_stages: Tuple[WamiStage, ...]
    runtime_stats: Optional[RuntimeStats] = None

    @property
    def seconds_per_frame(self) -> float:
        """Average frame latency."""
        return self.timeline.makespan_s / self.frames

    @property
    def joules_per_frame(self) -> float:
        """Average energy per frame."""
        return self.energy.joules_per_frame

    def to_summary_dict(self, metrics: Optional[Dict[str, float]] = None) -> Dict:
        """JSON-serializable report (``repro deploy --json``).

        ``metrics`` is an optional registry snapshot to embed alongside
        the report, so the machine output carries both views of the
        same run.
        """
        summary = {
            "soc": self.config.name,
            "frames": self.frames,
            "seconds_per_frame": self.seconds_per_frame,
            "joules_per_frame": self.joules_per_frame,
            "average_power_w": self.energy.average_power_w,
            "makespan_s": self.timeline.makespan_s,
            "reconfigurations": self.reconfigurations,
            "reconfiguration_time_s": self.timeline.reconfiguration_time(),
            "software_stages": [s.kernel_name for s in self.software_stages],
        }
        if self.runtime_stats is not None:
            summary["runtime"] = self.runtime_stats.to_dict()
        if metrics is not None:
            summary["metrics"] = metrics
        return summary


@dataclass
class WamiProfile:
    """Fig. 3-style profile of one accelerator on the 2x2 profiling SoC."""

    stage: WamiStage
    luts: int
    exec_time_s: float
    partial_bitstream_kib: float
    region_kluts: float


@dataclass(frozen=True)
class BuildResult:
    """``build()`` output: the flow result plus the optional baseline."""

    flow: FlowResult
    baseline: Optional[MonolithicResult] = None
    cached: bool = False

    @property
    def speedup_vs_baseline(self) -> Optional[float]:
        """Baseline-total over PR-ESP-total (None without a baseline)."""
        if self.baseline is None:
            return None
        return self.baseline.total_minutes / self.flow.total_minutes


class PrEspPlatform:
    """Top-level entry point of the reproduction."""

    def __init__(
        self,
        model: RuntimeModel = CALIBRATED_MODEL,
        max_instances: int = 16,
        compress_bitstreams: bool = True,
        power_model: PowerModel = DEFAULT_POWER_MODEL,
        prc_fetch_bytes_per_cycle: Optional[float] = None,
        noc_model: Optional[NocModel] = None,
        instrumentation: Optional[Instrumentation] = None,
        options: Optional[BuildOptions] = None,
        runtime_options: Optional[RuntimeFaultOptions] = None,
        request_ids: Optional[RequestIdFactory] = None,
        telemetry: Optional[TelemetryStore] = None,
    ) -> None:
        """``instrumentation`` bundles tracer/metrics/events once for
        every platform operation; ``options`` bundles the build-side
        configuration (cache, batch jobs, fault/retry policy,
        checkpoint directory); ``runtime_options`` bundles the
        deploy-side runtime fault model and watchdog/recovery policy
        (the DES mirror of the CAD fault options).

        ``request_ids`` turns on request-scoped telemetry: every verb
        mints (or accepts via ``context=``) a
        :class:`~repro.obs.context.TelemetryContext` and activates it,
        so the live instrumentation stamps each span, event, metric
        sample and profile leaf with the request ID. ``telemetry``
        attaches a :class:`~repro.obs.tsdb.TelemetryStore` that
        snapshots the metrics registry after every verb — the series
        the SLO tracker and the ``repro dashboard`` verb read. Both
        default off, preserving context-free label keys.
        """
        self.options = options if options is not None else BuildOptions()
        self.runtime_options = (
            runtime_options if runtime_options is not None else RuntimeFaultOptions()
        )
        self.instrumentation = (
            instrumentation if instrumentation is not None else OFF
        )
        self.request_ids = request_ids
        self.telemetry = telemetry
        self.model = model
        self.power_model = power_model
        self.prc_fetch_bytes_per_cycle = prc_fetch_bytes_per_cycle
        #: NoC timing backend for deployments (None = PrcDevice default,
        #: the analytic model; ``NocModel.CYCLE`` replays fetch bursts
        #: through the flit-level simulator as a cross-check).
        self.noc_model = noc_model
        self.flow = DprFlow(
            model=model,
            max_instances=max_instances,
            compress_bitstreams=compress_bitstreams,
            faults=self.options.faults,
            retry=self.options.retry,
        )
        self.baseline_flow = MonolithicFlow(
            model=model, compress_bitstreams=compress_bitstreams
        )
        self.cache = self.options.cache
        self.batch = self._make_batch(self.options.jobs)
        #: Batches for per-call ``jobs=`` overrides, keyed by job count,
        #: so each override reuses one warm worker pool instead of
        #: forking a throwaway pool per call.
        self._override_batches: Dict[int, BatchBuilder] = {}

    @contextlib.contextmanager
    def _request(
        self, verb: str, context: Optional[TelemetryContext]
    ) -> Iterator[Optional[TelemetryContext]]:
        """Activate the verb's telemetry context around its body.

        An explicit ``context=`` wins; otherwise one is minted from the
        platform's :class:`RequestIdFactory` when configured, and with
        neither the verb runs unattributed (the seed behaviour — label
        keys stay context-free). On exit the platform's
        :class:`TelemetryStore`, when configured, records one registry
        snapshot — failed verbs included, so SLO burn sees their
        failure counters.
        """
        if context is None and self.request_ids is not None:
            context = self.request_ids.mint(verb)
        try:
            with activate(context):
                yield context
        finally:
            if self.telemetry is not None:
                self.telemetry.record(self.instrumentation.metrics)

    def _make_batch(self, jobs: int) -> BatchBuilder:
        """A build service sharing the platform's flow/cache/obs bundle."""
        return BatchBuilder(
            flow=self.flow,
            cache=self.cache,
            jobs=jobs,
            metrics=self.instrumentation.metrics,
            events=self.instrumentation.events,
            tracer=self.instrumentation.tracer,
            profiler=self.instrumentation.profiler,
        )

    # ------------------------------------------------------------------
    # compilation
    # ------------------------------------------------------------------
    def build(
        self,
        config: SocConfig,
        strategy_override: Optional[ImplementationStrategy] = None,
        with_baseline: bool = False,
        resume: Optional[bool] = None,
        context: Optional[TelemetryContext] = None,
    ) -> BuildResult:
        """Compile ``config`` with the PR-ESP flow (plus baseline if asked).

        The platform's :class:`Instrumentation` receives the flow's
        stage and tool-job spans plus the retry/failure/degradation
        events. When the platform's :class:`BuildOptions` carry a
        :class:`~repro.flow.cache.FlowCache`, a repeat build of the
        same configuration is served from it (and still traced — the
        flow replays the cached result's spans); with a
        ``checkpoint_dir`` the build is stage-checkpointed, and
        ``resume`` (defaulting to the options' flag) restores the
        matching prefix of a previously killed build.

        ``context=`` attributes the build to an existing request;
        without one the platform's ID factory (when configured) mints a
        fresh ``build-...`` context.
        """
        tracer = self.instrumentation.tracer
        with self._request("build", context):
            flow_result, cached = cached_build(
                self.flow,
                self.cache,
                config,
                strategy_override=strategy_override,
                tracer=tracer,
                events=self.instrumentation.events,
                profiler=self.instrumentation.profiler,
                registry=self.instrumentation.metrics,
                checkpoint_dir=self.options.checkpoint_dir,
                resume=self.options.resume if resume is None else resume,
            )
            baseline = self.baseline_flow.build(config) if with_baseline else None
        return BuildResult(flow=flow_result, baseline=baseline, cached=cached)

    def build_many(
        self,
        requests: Sequence[BuildRequest],
        jobs: Optional[int] = None,
        context: Optional[TelemetryContext] = None,
    ) -> List[BuildOutcome]:
        """Fan a batch of build requests out over the build service.

        ``jobs`` overrides the worker count the platform was
        constructed with (1 = serial in-process). Outcomes keep the
        request order; a failing request carries its own ``BuildError``
        instead of aborting the batch. The whole batch runs under one
        telemetry context (``context=`` or a minted ``batch-...`` one);
        pool workers re-activate it from their shipped capsule, so
        worker-side telemetry joins the batch's request ID.
        """
        batch = self.batch
        if jobs is not None and jobs != batch.jobs:
            batch = self._override_batches.get(jobs)
            if batch is None:
                batch = self._override_batches[jobs] = self._make_batch(jobs)
        with self._request("batch", context):
            return batch.build_many(requests)

    def close(self) -> None:
        """Release platform-owned resources (the warm build pools).

        Idempotent; the platform stays usable — the next parallel batch
        simply starts a fresh pool. Also runs on context-manager exit.
        """
        self.batch.close()
        for batch in self._override_batches.values():
            batch.close()
        self._override_batches.clear()

    def __enter__(self) -> "PrEspPlatform":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def compare_with_monolithic(
        self, config: SocConfig, context: Optional[TelemetryContext] = None
    ) -> Tuple[FlowResult, MonolithicResult]:
        """The Table V experiment for one SoC."""
        with self._request("compare", context) as ctx:
            result = self.build(config, with_baseline=True, context=ctx)
        assert result.baseline is not None
        return result.flow, result.baseline

    # ------------------------------------------------------------------
    # profiling (Fig. 3 methodology)
    # ------------------------------------------------------------------
    def profile_wami(self, stage: WamiStage) -> WamiProfile:
        """Profile one WAMI accelerator on a 2x2 single-tile SoC."""
        profile = wami_accelerator(stage)
        config = SocConfig.assemble(
            name=f"profile_{profile.name}",
            board="vc707",
            rows=2,
            cols=2,
            tiles=[
                Tile(kind=TileKind.CPU, name="cpu0"),
                Tile(kind=TileKind.MEM, name="mem0"),
                Tile(kind=TileKind.AUX, name="aux0"),
                ReconfigurableTile(name="rt0", modes=[profile.as_ip()]),
            ],
        )
        flow_result = self.flow.build(config)
        partials = flow_result.partial_bitstreams()
        assignment = flow_result.floorplan.assignment_for("rt0")
        return WamiProfile(
            stage=stage,
            luts=profile.luts,
            exec_time_s=profile.exec_time_s,
            partial_bitstream_kib=partials[0].size_kib,
            region_kluts=assignment.provided.lut / 1000.0,
        )

    # ------------------------------------------------------------------
    # deployment (Fig. 4 methodology)
    # ------------------------------------------------------------------
    def deploy_wami(
        self,
        config: SocConfig,
        flow_result: Optional[FlowResult] = None,
        frames: int = 1,
        app: Optional[WamiApplication] = None,
        power_gating: bool = False,
        pipelined: bool = False,
        prc_setup: Optional[Callable[[PrcDevice], None]] = None,
        instrumentation: Optional[Instrumentation] = None,
        runtime_options: Optional[RuntimeFaultOptions] = None,
        context: Optional[TelemetryContext] = None,
    ) -> WamiRunReport:
        """Program a built SoC and run WAMI for ``frames`` frames.

        Builds the SoC first when ``flow_result`` is not supplied.
        ``power_gating`` enables the blank-after-frame policy: each tile
        erases its region once its frame work completes, and the energy
        account charges region power only for configured windows.
        ``pipelined`` overlaps consecutive frames (an extension: the
        paper processes frames without pipelining).

        Observability comes from ``instrumentation`` (falling back to
        the platform's bundle): the tracer is bound to the DES clock
        (simulated seconds) and receives the kernel-level protocol
        spans (lock-wait, decouple, ICAP, exec) live plus the
        application-level timeline spans via the lossless bridge — one
        merged Fig. 4 trace; the metrics registry receives the
        manager/PRC counters and the `RuntimeStats` gauges; the event
        bus receives the manager's lifecycle events (reconfig
        requested/started/completed/failed, driver swaps, lock waits)
        — subscribe a :class:`~repro.obs.health.HealthMonitor` for
        live watchdogs; a live profiler gets a ``deploy.<soc>``
        call-path subtree (per-event-type DES dispatch frames charged
        the clock advances they cause, per-callback-site frames, NoC
        transfer windows, and the runtime recovery ladder as
        root-anchored ``runtime.*`` leaves). ``prc_setup`` is called
        with the constructed PRC before the run starts — the hook for
        installing a targeted :class:`~repro.runtime.faults.
        RuntimeFaultModel` on ``prc.faults``.

        ``runtime_options`` (falling back to the platform's bundle)
        carries the runtime fault model and watchdog/recovery policy.
        The model is a *specification*: the deployment draws from a
        fresh per-run copy (:meth:`RuntimeFaultModel.fresh`), so
        repeated same-seed deploys replay the identical fault timeline.
        """
        if frames <= 0:
            raise ConfigurationError("frames must be positive")
        inst = (
            instrumentation if instrumentation is not None else self.instrumentation
        )
        profiler = inst.profiler
        with self._request("deploy", context):
            if not profiler.enabled:
                return self._deploy_wami(
                    config, flow_result, frames, app, power_gating, pipelined,
                    prc_setup, inst, runtime_options,
                )
            # One deployment = one profile subtree: the DES dispatch, NoC
            # and runtime-recovery attributions all nest under it.
            profiler.begin(f"deploy.{config.name}")
            try:
                return self._deploy_wami(
                    config, flow_result, frames, app, power_gating, pipelined,
                    prc_setup, inst, runtime_options,
                )
            finally:
                profiler.end()

    def _deploy_wami(
        self,
        config: SocConfig,
        flow_result: Optional[FlowResult],
        frames: int,
        app: Optional[WamiApplication],
        power_gating: bool,
        pipelined: bool,
        prc_setup: Optional[Callable[[PrcDevice], None]],
        inst: Instrumentation,
        runtime_options: Optional[RuntimeFaultOptions],
    ) -> WamiRunReport:
        tracer, metrics, events = inst.tracer, inst.metrics, inst.events
        profiler = inst.profiler
        if flow_result is None:
            flow_result = self.flow.build(
                config, events=events, profiler=profiler, registry=metrics
            )
        if flow_result.config.name != config.name:
            raise ConfigurationError(
                "flow result belongs to a different SoC "
                f"({flow_result.config.name!r} vs {config.name!r})"
            )
        application = app or WamiApplication()
        ropts = (
            runtime_options if runtime_options is not None else self.runtime_options
        )
        faults = ropts.faults
        if faults is not NO_RUNTIME_FAULTS:
            faults = faults.fresh()

        sim = Simulator()
        tracer.use_clock(lambda: sim.now)
        events.use_clock(lambda: sim.now)
        sim.attach_observability(profiler=profiler, tracer=tracer)
        mesh = Mesh(
            rows=config.rows, cols=config.cols, clock_hz=DEPLOYMENT_CLOCK_HZ
        )
        mem_tile = config.tiles_of_kind(TileKind.MEM)[0]
        aux_tile = config.tiles_of_kind(TileKind.AUX)[0]
        prc_kwargs = {}
        if self.prc_fetch_bytes_per_cycle is not None:
            prc_kwargs["fetch_bytes_per_cycle"] = self.prc_fetch_bytes_per_cycle
        if self.noc_model is not None:
            prc_kwargs["noc_model"] = self.noc_model
        prc = PrcDevice(
            sim,
            mesh,
            mem_position=config.position_of(mem_tile.name),
            aux_position=config.position_of(aux_tile.name),
            clock_hz=DEPLOYMENT_CLOCK_HZ,
            tracer=tracer,
            metrics=metrics,
            profiler=profiler,
            faults=faults,
            **prc_kwargs,
        )
        if prc_setup is not None:
            prc_setup(prc)
        store = BitstreamStore()
        store.load_flow_output(flow_result.bitstreams)
        registry = DriverRegistry()
        for profile in WAMI_ACCELERATORS.values():
            registry.install(
                AcceleratorDriver(
                    accelerator=profile.name, exec_time_s=profile.exec_time_s
                )
            )
        manager = ReconfigurationManager(
            sim,
            prc,
            store,
            registry,
            tracer=tracer,
            metrics=metrics,
            events=events,
            profiler=profiler,
            recovery=ropts.recovery,
        )
        for tile in config.reconfigurable_tiles:
            manager.attach_tile(tile.name)

        api = DprUserApi(manager)
        tasks = application.tasks_for_soc(config)
        executor = AppExecutor(
            sim, api, tasks, blank_after_frame=power_gating, events=events
        )
        timeline = executor.run(frames=frames, pipelined=pipelined)

        region_kluts: Dict[str, float] = {
            assignment.rp_name: assignment.provided.lut / 1000.0
            for assignment in flow_result.floorplan.assignments
        }
        energy = measure_energy(
            timeline=timeline,
            frames=frames,
            static_kluts=config.static_luts() / 1000.0,
            region_kluts=region_kluts,
            mode_power_w=application.mode_power_w(),
            task_modes=application.task_modes(),
            model=self.power_model,
            configured_fraction=(
                manager.configured_fractions() if power_gating else None
            ),
        )
        runtime_stats = collect_stats(manager, failovers=executor.failovers)
        bridge_timeline(timeline, tracer)
        publish_runtime_stats(runtime_stats, metrics)
        return WamiRunReport(
            config=config,
            frames=frames,
            timeline=timeline,
            energy=energy,
            reconfigurations=manager.total_reconfigurations(),
            software_stages=tuple(application.software_stages(config)),
            runtime_stats=runtime_stats,
        )

    def monitor_wami(
        self,
        config: SocConfig,
        frames: int = 1,
        flow_result: Optional[FlowResult] = None,
        reconfig_deadline_s: float = 1.0,
        window_s: float = 60.0,
        failure_rate_degraded: float = 0.05,
        failure_rate_critical: float = 0.5,
        queue_depth_degraded: int = 4,
        inject_failures: Optional[Sequence[Tuple[str, str, int]]] = None,
        bus: Optional[EventBus] = None,
        metrics=NULL_METRICS,
        tracer=NULL_TRACER,
        profiler=NULL_PROFILER,
        runtime_options: Optional[RuntimeFaultOptions] = None,
        context: Optional[TelemetryContext] = None,
    ) -> Tuple[WamiRunReport, HealthReport, EventBus]:
        """Deploy WAMI with a health monitor attached (``repro monitor``).

        Wires an :class:`~repro.obs.events.EventBus` plus a
        :class:`~repro.obs.health.HealthMonitor` into
        :meth:`deploy_wami` and returns the run report, the end-of-run
        health verdict, and the bus (its ring buffer holds the recent
        events for the dashboard). ``inject_failures`` is a sequence of
        ``(tile, mode, count)`` triples armed as targeted CRC faults on
        the run's :class:`RuntimeFaultModel` — the way to exercise the
        failure-rate watchdog deliberately. ``runtime_options``
        (falling back to the platform's bundle) supplies the base fault
        model and recovery policy; injections are layered on a per-call
        copy, so the bundle itself is never mutated.
        """
        bus = bus if bus is not None else EventBus()
        monitor = HealthMonitor(
            bus,
            window_s=window_s,
            reconfig_deadline_s=reconfig_deadline_s,
            failure_rate_degraded=failure_rate_degraded,
            failure_rate_critical=failure_rate_critical,
            queue_depth_degraded=queue_depth_degraded,
        )
        ropts = (
            runtime_options if runtime_options is not None else self.runtime_options
        )
        if inject_failures:
            base = ropts.faults
            model = (
                base.fresh() if base is not NO_RUNTIME_FAULTS else RuntimeFaultModel()
            )
            for tile, mode, count in inject_failures:
                model.inject(
                    str(tile),
                    str(mode),
                    RuntimeFaultKind.BITSTREAM_CORRUPTION,
                    count=int(count),
                )
            ropts = RuntimeFaultOptions(faults=model, recovery=ropts.recovery)
        with self._request("monitor", context) as ctx:
            report = self.deploy_wami(
                config,
                flow_result=flow_result,
                frames=frames,
                instrumentation=Instrumentation(
                    tracer=tracer, metrics=metrics, events=bus, profiler=profiler
                ),
                runtime_options=ropts,
                context=ctx,
            )
        return report, monitor.report(), bus
