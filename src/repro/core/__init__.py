"""The paper's primary contribution: size-driven DPR flow orchestration.

``metrics`` computes the κ/α_av/γ design-size metrics of Eq. 1;
``classes`` implements the Group/Class taxonomy of Sec. IV;
``strategy`` the Table-I decision algorithm; ``designs`` the eight
evaluation SoCs plus the three WAMI deployment SoCs; and ``platform``
the :class:`PrEspPlatform` facade whose ``build()`` is the paper's
"single make target".
"""

from repro.core.metrics import DesignMetrics, compute_metrics
from repro.core.classes import DesignClass, DesignGroup, GammaBand, classify
from repro.core.strategy import (
    ImplementationStrategy,
    StrategyDecision,
    choose_strategy,
)
from repro.core.designs import (
    characterization_socs,
    soc_1,
    soc_2,
    soc_3,
    soc_4,
    wami_parallelism_socs,
    wami_soc_a,
    wami_soc_b,
    wami_soc_c,
    wami_soc_d,
    wami_deployment_socs,
    wami_soc_x,
    wami_soc_y,
    wami_soc_z,
    WAMI_TILE_ALLOCATION,
)
from repro.core.platform import BuildResult, PrEspPlatform

__all__ = [
    "DesignMetrics",
    "compute_metrics",
    "DesignGroup",
    "DesignClass",
    "GammaBand",
    "classify",
    "ImplementationStrategy",
    "StrategyDecision",
    "choose_strategy",
    "characterization_socs",
    "soc_1",
    "soc_2",
    "soc_3",
    "soc_4",
    "wami_parallelism_socs",
    "wami_soc_a",
    "wami_soc_b",
    "wami_soc_c",
    "wami_soc_d",
    "wami_deployment_socs",
    "wami_soc_x",
    "wami_soc_y",
    "wami_soc_z",
    "WAMI_TILE_ALLOCATION",
    "PrEspPlatform",
    "BuildResult",
]
