"""The Group/Class taxonomy of Sec. IV.

Designs are grouped by how the static part compares to the *average*
reconfigurable tile (κ vs α_av) and classified by how the *total*
reconfigurable area compares to the static part (γ vs 1):

* Group 1 (κ ≫ α_av): classes 1.1 (γ < 1), 1.2 (γ > 1), 1.3 (γ ≈ 1)
* Group 2 (κ ≈ α_av or κ ≪ α_av): classes 2.1 (γ > 1), 2.2 (γ ≈ 1,
  only possible with a single reconfigurable tile)

γ < 1 inside Group 2 is arithmetically impossible (if the static part
is no bigger than the average tile it cannot exceed the sum of tiles),
which is why Table I leaves those cells empty.

The paper does not publish numeric thresholds for "≫" and "≈". The
values below were chosen so that every one of the eight published
designs (SOC_1..4, SoC_A..D) lands in its published class; the
threshold-sensitivity bench sweeps them.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.core.metrics import DesignMetrics

#: κ/α_av at or above this ratio counts as "κ ≫ α_av" (Group 1).
KAPPA_DOMINANCE_RATIO = 2.5

#: γ within [low, high] counts as "γ ≈ 1".
GAMMA_BAND_LOW = 0.8
GAMMA_BAND_HIGH = 1.15


class DesignGroup(enum.Enum):
    """κ-vs-α_av grouping."""

    STATIC_DOMINANT = "group1"  # κ ≫ α_av
    RECONF_DOMINANT = "group2"  # κ ≈ α_av or κ ≪ α_av


class GammaBand(enum.Enum):
    """Where γ falls relative to 1."""

    BELOW = "gamma<1"
    NEAR = "gamma~1"
    ABOVE = "gamma>1"


class DesignClass(enum.Enum):
    """The five feasible classes of Sec. IV."""

    CLASS_1_1 = "1.1"  # group 1, γ < 1
    CLASS_1_2 = "1.2"  # group 1, γ > 1
    CLASS_1_3 = "1.3"  # group 1, γ ≈ 1
    CLASS_2_1 = "2.1"  # group 2, γ > 1
    CLASS_2_2 = "2.2"  # group 2, γ ≈ 1 (single reconfigurable tile)

    @property
    def group(self) -> DesignGroup:
        """Group this class belongs to."""
        if self in (DesignClass.CLASS_1_1, DesignClass.CLASS_1_2, DesignClass.CLASS_1_3):
            return DesignGroup.STATIC_DOMINANT
        return DesignGroup.RECONF_DOMINANT


@dataclass(frozen=True)
class Classification:
    """Full classification outcome with the intermediate judgements."""

    metrics: DesignMetrics
    group: DesignGroup
    gamma_band: GammaBand
    design_class: DesignClass


def gamma_band(
    gamma: float,
    low: float = GAMMA_BAND_LOW,
    high: float = GAMMA_BAND_HIGH,
) -> GammaBand:
    """Band of γ relative to 1 under the configured tolerance."""
    if gamma < low:
        return GammaBand.BELOW
    if gamma > high:
        return GammaBand.ABOVE
    return GammaBand.NEAR


def classify(
    metrics: DesignMetrics,
    dominance_ratio: float = KAPPA_DOMINANCE_RATIO,
    band_low: float = GAMMA_BAND_LOW,
    band_high: float = GAMMA_BAND_HIGH,
) -> Classification:
    """Classify a design per Sec. IV.

    Group-2 designs with γ < 1 cannot occur when the metrics are
    internally consistent; if threshold settings produce that corner it
    is resolved to class 2.1 (the conservative neighbour) so callers
    always receive a class.
    """
    group = (
        DesignGroup.STATIC_DOMINANT
        if metrics.kappa >= dominance_ratio * metrics.alpha_av
        else DesignGroup.RECONF_DOMINANT
    )
    band = gamma_band(metrics.gamma, band_low, band_high)

    if group is DesignGroup.STATIC_DOMINANT:
        table = {
            GammaBand.BELOW: DesignClass.CLASS_1_1,
            GammaBand.ABOVE: DesignClass.CLASS_1_2,
            GammaBand.NEAR: DesignClass.CLASS_1_3,
        }
        design_class = table[band]
    else:
        if band is GammaBand.NEAR and metrics.num_rps == 1:
            design_class = DesignClass.CLASS_2_2
        else:
            design_class = DesignClass.CLASS_2_1
    return Classification(
        metrics=metrics, group=group, gamma_band=band, design_class=design_class
    )
