"""The SoC designs of the paper's evaluation.

* ``soc_1`` .. ``soc_4`` — the four Vivado-characterization SoCs of
  Sec. IV (Table III).
* ``wami_soc_a`` .. ``wami_soc_d`` — the four WAMI SoCs of the flow
  evaluation (Tables IV and V).
* ``wami_soc_x/y/z`` — the three deployment SoCs of the runtime
  evaluation (Table VI, Fig. 4), including the published
  accelerator-to-tile allocation.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.soc.config import SocConfig
from repro.soc.esp_library import stock_accelerator
from repro.soc.tiles import ReconfigurableTile, Tile, TileKind
from repro.wami.accelerators import wami_ips


def _static_trio() -> List[Tile]:
    """The standard static part: one CPU, one MEM, one AUX tile."""
    return [
        Tile(kind=TileKind.CPU, name="cpu0"),
        Tile(kind=TileKind.MEM, name="mem0"),
        Tile(kind=TileKind.AUX, name="aux0"),
    ]


def _static_duo() -> List[Tile]:
    """Static part without the CPU (Class 2.1 designs host it in an RP)."""
    return [
        Tile(kind=TileKind.MEM, name="mem0"),
        Tile(kind=TileKind.AUX, name="aux0"),
    ]


# ----------------------------------------------------------------------
# Characterization SoCs (Sec. IV / Table III)
# ----------------------------------------------------------------------
def soc_1() -> SocConfig:
    """SOC_1 (Class 1.1): 4x5 grid with 16 reconfigurable MAC tiles."""
    mac = stock_accelerator("mac")
    tiles = _static_trio() + [
        ReconfigurableTile(name=f"rt{i}", modes=[mac]) for i in range(16)
    ]
    return SocConfig.assemble("soc_1", board="vc707", rows=4, cols=5, tiles=tiles)


def soc_2() -> SocConfig:
    """SOC_2 (Class 1.2): 3x3 grid with Conv2d, GEMM, FFT, Sort tiles."""
    tiles = _static_trio() + [
        ReconfigurableTile(name=f"rt_{name}", modes=[stock_accelerator(name)])
        for name in ("conv2d", "gemm", "fft", "sort")
    ]
    return SocConfig.assemble("soc_2", board="vc707", rows=3, cols=3, tiles=tiles)


def soc_3() -> SocConfig:
    """SOC_3 (Class 1.3): SOC_2 without the FFT tile."""
    tiles = _static_trio() + [
        ReconfigurableTile(name=f"rt_{name}", modes=[stock_accelerator(name)])
        for name in ("conv2d", "gemm", "sort")
    ]
    return SocConfig.assemble("soc_3", board="vc707", rows=3, cols=3, tiles=tiles)


def soc_4() -> SocConfig:
    """SOC_4 (Class 2.1): SOC_2 with the CPU moved into an RP.

    The goal is not a runtime-swappable CPU but a smaller static part
    (the paper's own framing).
    """
    tiles = _static_duo() + [
        ReconfigurableTile(name=f"rt_{name}", modes=[stock_accelerator(name)])
        for name in ("conv2d", "gemm", "fft", "sort")
    ]
    tiles.append(ReconfigurableTile(name="rt_cpu", modes=[], host_cpu=True))
    return SocConfig.assemble("soc_4", board="vc707", rows=3, cols=3, tiles=tiles)


def characterization_socs() -> Dict[str, SocConfig]:
    """Name -> config for SOC_1..SOC_4."""
    return {cfg.name: cfg for cfg in (soc_1(), soc_2(), soc_3(), soc_4())}


# ----------------------------------------------------------------------
# WAMI flow-evaluation SoCs (Tables IV and V)
# ----------------------------------------------------------------------

#: Fig. 3 accelerator indexes per SoC (second column of Table IV).
WAMI_FLOW_SOC_ACCS: Dict[str, Tuple[int, ...]] = {
    "soc_a": (4, 8, 10, 9),  # class 1.2
    "soc_b": (2, 3, 11, 1),  # class 1.1
    "soc_c": (7, 11, 8, 2),  # class 1.3
    "soc_d": (4, 5, 9, 2),  # class 2.1 (CPU hosted in an RP)
}


def _wami_flow_soc(name: str, host_cpu: bool) -> SocConfig:
    indexes = WAMI_FLOW_SOC_ACCS[name]
    statics = _static_duo() if host_cpu else _static_trio()
    tiles: List[Tile] = list(statics)
    for ip in wami_ips(indexes):
        tiles.append(ReconfigurableTile(name=f"rt_{ip.name}", modes=[ip]))
    if host_cpu:
        tiles.append(ReconfigurableTile(name="rt_cpu", modes=[], host_cpu=True))
    return SocConfig.assemble(name, board="vc707", rows=3, cols=3, tiles=tiles)


def wami_soc_a() -> SocConfig:
    """SoC_A: accelerators {4, 8, 10, 9} — Class 1.2."""
    return _wami_flow_soc("soc_a", host_cpu=False)


def wami_soc_b() -> SocConfig:
    """SoC_B: accelerators {2, 3, 11, 1} — Class 1.1."""
    return _wami_flow_soc("soc_b", host_cpu=False)


def wami_soc_c() -> SocConfig:
    """SoC_C: accelerators {7, 11, 8, 2} — Class 1.3."""
    return _wami_flow_soc("soc_c", host_cpu=False)


def wami_soc_d() -> SocConfig:
    """SoC_D: accelerators {4, 5, 9, 2} + CPU in an RP — Class 2.1."""
    return _wami_flow_soc("soc_d", host_cpu=True)


def wami_parallelism_socs() -> Dict[str, SocConfig]:
    """Name -> config for SoC_A..SoC_D."""
    return {
        cfg.name: cfg
        for cfg in (wami_soc_a(), wami_soc_b(), wami_soc_c(), wami_soc_d())
    }


# ----------------------------------------------------------------------
# WAMI deployment SoCs (Table VI / Fig. 4)
# ----------------------------------------------------------------------

#: Accelerator-to-tile allocation of Table VI (Fig. 3 indexes).
WAMI_TILE_ALLOCATION: Dict[str, Tuple[Tuple[int, ...], ...]] = {
    "soc_x": ((1, 4, 9, 10, 8), (2, 3, 6, 7, 11)),
    "soc_y": ((1, 3, 7, 12), (2, 6, 8), (4, 9, 10)),
    "soc_z": ((1, 6, 12), (2, 5, 11), (4, 10, 7), (3, 8, 9)),
}


def _wami_deployment_soc(name: str) -> SocConfig:
    allocation = WAMI_TILE_ALLOCATION[name]
    tiles: List[Tile] = _static_trio()
    for tile_index, indexes in enumerate(allocation, start=1):
        tiles.append(
            ReconfigurableTile(name=f"rt{tile_index}", modes=wami_ips(indexes))
        )
    return SocConfig.assemble(name, board="vc707", rows=3, cols=3, tiles=tiles)


def wami_soc_x() -> SocConfig:
    """SoC_X: two reconfigurable tiles (Table VI allocation)."""
    return _wami_deployment_soc("soc_x")


def wami_soc_y() -> SocConfig:
    """SoC_Y: three reconfigurable tiles (Table VI allocation)."""
    return _wami_deployment_soc("soc_y")


def wami_soc_z() -> SocConfig:
    """SoC_Z: four reconfigurable tiles (Table VI allocation)."""
    return _wami_deployment_soc("soc_z")


def wami_deployment_socs() -> Dict[str, SocConfig]:
    """Name -> config for SoC_X/Y/Z."""
    return {cfg.name: cfg for cfg in (wami_soc_x(), wami_soc_y(), wami_soc_z())}


def paper_designs() -> Dict[str, SocConfig]:
    """All named designs of the evaluation."""
    return {
        **characterization_socs(),
        **wami_parallelism_socs(),
        **wami_deployment_socs(),
    }


def resolve_config(spec: str) -> SocConfig:
    """A design name or an ``esp_config`` path.

    The shared resolver behind both the CLI's positional ``config``
    argument and the service daemon's job specs, so a job submitted
    over HTTP accepts exactly what ``repro build`` accepts.
    """
    import os

    from repro.errors import PrEspError
    from repro.soc.esp_parser import load_esp_config

    designs = paper_designs()
    if spec in designs:
        return designs[spec]
    if os.path.exists(spec):
        return load_esp_config(spec)
    raise PrEspError(
        f"{spec!r} is neither a known design ({', '.join(sorted(designs))}) "
        "nor an existing esp_config file"
    )
