"""The design-size metrics of Eq. 1.

For an SoC with N reconfigurable tiles on a device with LUT_tot LUTs:

    κ     = lut_static / LUT_tot
    α_av  = (Σ lut_i) / (N · LUT_tot)
    γ     = (Σ lut_i) / lut_static

κ and α_av are device-relative fractions; γ compares the total
reconfigurable area to the static area. These three numbers are the
entire input of the size-driven strategy choice.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.errors import ConfigurationError
from repro.soc.config import SocConfig


@dataclass(frozen=True)
class DesignMetrics:
    """κ, α_av, γ plus the raw sizes they were computed from."""

    static_luts: int
    rp_luts: tuple
    device_luts: int

    def __post_init__(self) -> None:
        if self.static_luts <= 0:
            raise ConfigurationError("static part must have positive size")
        if self.device_luts <= 0:
            raise ConfigurationError("device must have positive LUT capacity")
        if not self.rp_luts:
            raise ConfigurationError("metrics need at least one reconfigurable tile")
        if any(l <= 0 for l in self.rp_luts):
            raise ConfigurationError("reconfigurable tile sizes must be positive")

    @property
    def num_rps(self) -> int:
        """N — the number of reconfigurable tiles."""
        return len(self.rp_luts)

    @property
    def total_rp_luts(self) -> int:
        """Σ lut_i."""
        return sum(self.rp_luts)

    @property
    def kappa(self) -> float:
        """κ — static size as a fraction of the device."""
        return self.static_luts / self.device_luts

    @property
    def alpha_av(self) -> float:
        """α_av — average reconfigurable-tile size as a device fraction."""
        return self.total_rp_luts / (self.num_rps * self.device_luts)

    @property
    def gamma(self) -> float:
        """γ — total reconfigurable size over static size."""
        return self.total_rp_luts / self.static_luts

    def summary(self) -> str:
        """One-line report in the paper's (percent) convention."""
        return (
            f"kappa={self.kappa * 100:.1f}% alpha_av={self.alpha_av * 100:.1f}% "
            f"gamma={self.gamma:.2f} (N={self.num_rps})"
        )


def compute_metrics(config: SocConfig) -> DesignMetrics:
    """Metrics of an SoC configuration against its board's device."""
    rp_luts = config.reconfigurable_luts()
    if not rp_luts:
        raise ConfigurationError(
            f"SoC {config.name!r} has no reconfigurable tiles; the DPR "
            "metrics are undefined for monolithic designs"
        )
    return DesignMetrics(
        static_luts=config.static_luts(),
        rp_luts=tuple(rp_luts),
        device_luts=config.device().capacity().lut,
    )


def metrics_from_sizes(
    static_luts: int, rp_luts: Sequence[int], device_luts: int
) -> DesignMetrics:
    """Metrics directly from raw sizes (used by sweeps and tests)."""
    return DesignMetrics(
        static_luts=static_luts, rp_luts=tuple(rp_luts), device_luts=device_luts
    )
