"""The size-driven implementation-strategy choice (Table I).

Given a design's classification, the algorithm picks serial,
semi-parallel, or fully-parallel P&R:

================  =========  ============  =====================
                  γ < 1      γ ≈ 1         γ > 1
================  =========  ============  =====================
κ ≈ α_av          (imposs.)  serial        fully-parallel
κ ≫ α_av          serial     semi-parallel semi/fully-parallel
κ ≪ α_av          (imposs.)  serial        fully-parallel
================  =========  ============  =====================

The ``semi/fully-parallel`` cell (Class 1.2) is ambiguous in the table;
PR-ESP resolves it with the calibrated runtime model when one is
available (estimate both, take the faster) and defaults to
fully-parallel otherwise — which matches the published choices for
SOC_2 and SoC_A.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Callable, Optional

from repro.core.classes import (
    Classification,
    DesignClass,
    classify,
)
from repro.core.metrics import DesignMetrics


class ImplementationStrategy(enum.Enum):
    """The three P&R parallelism strategies of Sec. IV."""

    SERIAL = "serial"
    SEMI_PARALLEL = "semi-parallel"
    FULLY_PARALLEL = "fully-parallel"


#: Estimator signature: (metrics, strategy) -> estimated total P&R minutes.
RuntimeEstimator = Callable[[DesignMetrics, ImplementationStrategy], float]


@dataclass(frozen=True)
class StrategyDecision:
    """The chosen strategy with its justification."""

    classification: Classification
    strategy: ImplementationStrategy
    #: Parallelism degree τ: number of concurrent tool instances for the
    #: reconfigurable tiles (1 for serial, N for fully-parallel).
    tau: int
    #: Model estimates (minutes) when the estimator was consulted.
    estimated_semi_minutes: Optional[float] = None
    estimated_fully_minutes: Optional[float] = None

    @property
    def design_class(self) -> DesignClass:
        """Shortcut to the classified design class."""
        return self.classification.design_class


#: Default τ for the semi-parallel strategy. The paper sets τ = 2 for
#: every semi-parallel run of the evaluation.
SEMI_PARALLEL_TAU = 2


def choose_strategy(
    metrics: DesignMetrics,
    estimator: Optional[RuntimeEstimator] = None,
    semi_tau: int = SEMI_PARALLEL_TAU,
) -> StrategyDecision:
    """Pick the P&R strategy for a design per Table I.

    ``estimator`` (usually the calibrated Vivado runtime model) breaks
    the Class 1.2 tie; Class 2.2 designs (single reconfigurable tile)
    can only be implemented serially.
    """
    classification = classify(metrics)
    cls = classification.design_class

    if cls is DesignClass.CLASS_1_1:
        return StrategyDecision(classification, ImplementationStrategy.SERIAL, tau=1)
    if cls is DesignClass.CLASS_1_3:
        tau = min(semi_tau, metrics.num_rps)
        return StrategyDecision(
            classification, ImplementationStrategy.SEMI_PARALLEL, tau=tau
        )
    if cls is DesignClass.CLASS_2_2:
        return StrategyDecision(classification, ImplementationStrategy.SERIAL, tau=1)
    if cls is DesignClass.CLASS_2_1:
        return StrategyDecision(
            classification, ImplementationStrategy.FULLY_PARALLEL, tau=metrics.num_rps
        )

    # Class 1.2: semi- or fully-parallel, model-tie-broken.
    assert cls is DesignClass.CLASS_1_2
    if estimator is None:
        return StrategyDecision(
            classification, ImplementationStrategy.FULLY_PARALLEL, tau=metrics.num_rps
        )
    semi_estimate = estimator(metrics, ImplementationStrategy.SEMI_PARALLEL)
    fully_estimate = estimator(metrics, ImplementationStrategy.FULLY_PARALLEL)
    if semi_estimate < fully_estimate:
        return StrategyDecision(
            classification,
            ImplementationStrategy.SEMI_PARALLEL,
            tau=min(semi_tau, metrics.num_rps),
            estimated_semi_minutes=semi_estimate,
            estimated_fully_minutes=fully_estimate,
        )
    return StrategyDecision(
        classification,
        ImplementationStrategy.FULLY_PARALLEL,
        tau=metrics.num_rps,
        estimated_semi_minutes=semi_estimate,
        estimated_fully_minutes=fully_estimate,
    )
