"""Generator-based processes for the simulation kernel.

A process body is a generator that yields :class:`~repro.sim.kernel.Event`
objects; the process suspends until each yielded event is processed and
receives the event's value as the result of the ``yield`` expression.
Failures propagate into the generator as thrown exceptions, so ordinary
``try/except`` works. The process itself is an event that triggers with
the generator's return value, so processes can wait on each other.
"""

from __future__ import annotations

from typing import Any, Generator

from repro.errors import SimulationError
from repro.sim.kernel import Event, Simulator


class Process(Event):
    """A running coroutine inside a :class:`Simulator`."""

    __slots__ = ("_generator",)

    def __init__(self, sim: Simulator, generator: Generator[Event, Any, Any]) -> None:
        if not hasattr(generator, "send") or not hasattr(generator, "throw"):
            raise SimulationError(
                "Process needs a generator; did you call the function with ()?"
            )
        super().__init__(sim)
        self._generator = generator
        # Kick off the process at the current time via an immediate event.
        start = Event(sim)
        start.callbacks.append(self._resume)
        start.succeed()

    @property
    def is_alive(self) -> bool:
        """True while the generator has not finished."""
        return not self.triggered

    def _resume(self, event: Event) -> None:
        """Advance the generator with the outcome of ``event``."""
        if self.triggered:
            return
        try:
            if event.exception is not None:
                target = self._generator.throw(event.exception)
            else:
                target = self._generator.send(event.value)
        except StopIteration as stop:
            self.succeed(getattr(stop, "value", None))
            return
        except BaseException as exc:  # noqa: BLE001 - process bodies may raise anything
            self.fail(exc)
            return

        if not isinstance(target, Event):
            self.fail(
                SimulationError(
                    f"process yielded {type(target).__name__}, expected an Event"
                )
            )
            return
        if target.sim is not self.sim:
            self.fail(SimulationError("process yielded an event from another simulator"))
            return
        target.add_callback(self._resume)
