"""A small generator-based discrete-event simulation kernel.

The PR-ESP runtime evaluation needs a model of concurrent software
(multi-threaded Linux application, kernel workqueue, interrupt-driven
reconfiguration controller). SimPy is not available offline, so this
package provides the same core abstractions from scratch: a simulator
with an event heap, processes written as generators that ``yield``
events, timeouts, locks and FIFO stores.
"""

from repro.sim.kernel import Event, Simulator, Timeout
from repro.sim.process import Process
from repro.sim.resources import Lock, Store

__all__ = ["Simulator", "Event", "Timeout", "Process", "Lock", "Store"]
