"""Event heap and primitive events of the simulation kernel."""

from __future__ import annotations

import heapq
from typing import Any, Callable, List, Optional, Tuple

from repro.errors import SimulationError


class Event:
    """A one-shot occurrence processes can wait on.

    Lifecycle: *pending* → ``succeed()``/``fail()`` → *triggered* (queued
    on the heap) → *processed* (callbacks ran). Waiting on an already
    processed event resumes the waiter immediately at the current time.

    Events are the unit object of every simulated operation, so the
    whole hierarchy is ``__slots__``-flattened: no per-instance dict,
    fixed-offset attribute loads on the dispatch hot path.
    """

    __slots__ = (
        "sim",
        "callbacks",
        "_value",
        "_exception",
        "triggered",
        "processed",
        "cancelled",
    )

    def __init__(self, sim: "Simulator") -> None:
        self.sim = sim
        self.callbacks: List[Callable[["Event"], None]] = []
        self._value: Any = None
        self._exception: Optional[BaseException] = None
        self.triggered = False
        self.processed = False
        self.cancelled = False

    # ------------------------------------------------------------------
    @property
    def value(self) -> Any:
        """The success value (None until triggered)."""
        return self._value

    @property
    def exception(self) -> Optional[BaseException]:
        """The failure exception, if the event failed."""
        return self._exception

    @property
    def ok(self) -> bool:
        """True if the event succeeded."""
        return self.triggered and self._exception is None

    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event successfully with ``value``."""
        if self.triggered:
            raise SimulationError("event already triggered")
        self._value = value
        self.triggered = True
        self.sim._queue_event(self)
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Trigger the event with a failure; waiters see the exception."""
        if self.triggered:
            raise SimulationError("event already triggered")
        if not isinstance(exception, BaseException):
            raise TypeError("fail() needs an exception instance")
        self._exception = exception
        self.triggered = True
        self.sim._queue_event(self)
        return self

    def cancel(self) -> "Event":
        """Withdraw a not-yet-processed event from the kernel.

        A cancelled event's callbacks never run and — crucially for
        watchdog races — the kernel clock never advances to its fire
        time: a lost deadline timeout does not drag the simulation out
        to its original expiry. Cancelling an already processed event
        is a no-op (the loser of a race may have fired first).
        """
        if not self.processed:
            self.cancelled = True
        return self

    def add_callback(self, callback: Callable[["Event"], None]) -> None:
        """Run ``callback(event)`` when the event is processed."""
        if self.processed:
            # Late subscription: schedule an immediate wake-up so the
            # caller still runs at the current simulation time.
            immediate = Event(self.sim)
            immediate.callbacks.append(lambda _evt: callback(self))
            if self._exception is None:
                immediate.succeed(self._value)
            else:
                # Propagate the original failure to the late waiter too.
                immediate._value = self._value
                immediate._exception = self._exception
                immediate.triggered = True
                self.sim._queue_event(immediate)
        else:
            self.callbacks.append(callback)

    def _process(self) -> None:
        self.processed = True
        callbacks, self.callbacks = self.callbacks, []
        profiler = self.sim._profiler
        if profiler is None:
            for callback in callbacks:
                callback(self)
            return
        # Per-callback-site attribution: the frame name is the
        # callback's qualified name (``Process._resume``,
        # ``AllOf.__init__.<locals>.<lambda>``, ...), which is stable
        # run to run and names the layer the time belongs to.
        for callback in callbacks:
            profiler.begin(
                getattr(callback, "__qualname__", None) or type(callback).__name__
            )
            try:
                callback(self)
            finally:
                profiler.end()


class Timeout(Event):
    """An event that fires ``delay`` time units after creation."""

    __slots__ = ("delay",)

    def __init__(self, sim: "Simulator", delay: float, value: Any = None) -> None:
        if delay < 0:
            raise SimulationError(f"negative timeout delay: {delay}")
        super().__init__(sim)
        self.delay = delay
        self._value = value
        self.triggered = True
        sim._queue_event(self, delay=delay)


class AllOf(Event):
    """Fires when every child event has been processed successfully."""

    __slots__ = ("_pending", "_results")

    def __init__(self, sim: "Simulator", events: List[Event]) -> None:
        super().__init__(sim)
        self._pending = len(events)
        if self._pending == 0:
            self.succeed([])
            return
        self._results: List[Any] = [None] * len(events)
        for index, event in enumerate(events):
            event.add_callback(lambda evt, i=index: self._child_done(evt, i))

    def _child_done(self, event: Event, index: int) -> None:
        if self.triggered:
            return
        if event.exception is not None:
            self.fail(event.exception)
            return
        self._results[index] = event.value
        self._pending -= 1
        if self._pending == 0:
            self.succeed(list(self._results))


class AnyOf(Event):
    """Fires when the first child event is processed."""

    __slots__ = ()

    def __init__(self, sim: "Simulator", events: List[Event]) -> None:
        super().__init__(sim)
        if not events:
            raise SimulationError("AnyOf needs at least one event")
        for event in events:
            event.add_callback(self._child_done)

    def _child_done(self, event: Event) -> None:
        if self.triggered:
            return
        if event.exception is not None:
            self.fail(event.exception)
        else:
            self.succeed(event.value)


class Simulator:
    """The event loop: a time-ordered heap of triggered events."""

    def __init__(self) -> None:
        self.now: float = 0.0
        self._heap: List[Tuple[float, int, Event]] = []
        self._seq = 0
        # Optional observability hooks; None keeps the dispatch loop on
        # its uninstrumented fast path (a single attribute test).
        self._profiler = None
        self._tracer = None
        # dispatch:<Type> frame names, interned per event type so the
        # instrumented loop does not rebuild the string per event.
        self._dispatch_names: dict = {}

    def attach_observability(self, profiler=None, tracer=None) -> None:
        """Bind profiling/tracing hooks to the dispatch loop.

        Only live hooks are kept — null objects (``enabled`` False)
        collapse to None so the hot path stays a plain loop when
        observability is off. The profiler gets a ``dispatch:<Type>``
        frame per processed event (charged the clock advance as
        simulated time) and a frame per callback site; the tracer gets
        a zero-duration instant for every cancelled event withdrawn
        from the heap.
        """
        self._profiler = profiler if getattr(profiler, "enabled", False) else None
        self._tracer = tracer if getattr(tracer, "enabled", False) else None

    # ------------------------------------------------------------------
    # event construction helpers
    # ------------------------------------------------------------------
    def event(self) -> Event:
        """A fresh untriggered event."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """An event firing ``delay`` after now."""
        return Timeout(self, delay, value)

    def all_of(self, events: List[Event]) -> AllOf:
        """Barrier over ``events``."""
        return AllOf(self, events)

    def any_of(self, events: List[Event]) -> AnyOf:
        """First-of-``events`` selector."""
        return AnyOf(self, events)

    def process(self, generator) -> "Process":
        """Spawn a process from a generator (see :class:`Process`)."""
        from repro.sim.process import Process

        return Process(self, generator)

    # ------------------------------------------------------------------
    # scheduling and execution
    # ------------------------------------------------------------------
    def _queue_event(self, event: Event, delay: float = 0.0) -> None:
        heapq.heappush(self._heap, (self.now + delay, self._seq, event))
        self._seq += 1

    def _discard_cancelled(self, event: Event) -> None:
        """Account a withdrawn event popped off the heap.

        Cancelled events run no callbacks and never advance the clock;
        observability still sees them — as a ``cancelled:<Type>`` leaf
        in the profile and a zero-duration instant in the trace —
        instead of a dangling open span.
        """
        if self._profiler is not None:
            self._profiler.record_leaf(f"cancelled:{type(event).__name__}")
        if self._tracer is not None:
            self._tracer.instant(
                f"cancelled:{type(event).__name__}",
                category="kernel.cancelled",
                track="sim/kernel",
            )

    def step(self) -> None:
        """Process the single next event."""
        if not self._heap:
            raise SimulationError("no scheduled events")
        when, _seq, event = heapq.heappop(self._heap)
        if event.cancelled:
            # Withdrawn: no callbacks, no clock advance.
            self._discard_cancelled(event)
            return
        if when < self.now:
            raise SimulationError("time went backwards (kernel bug)")
        if self._profiler is None:
            self.now = when
            event._process()
            return
        # Dispatch frame per event type; the clock advance this event
        # causes is its simulated-time attribution, so the dispatch
        # nodes' sim_s sums to the final simulation time.
        advance = when - self.now
        self.now = when
        event_type = type(event)
        name = self._dispatch_names.get(event_type)
        if name is None:
            name = self._dispatch_names[event_type] = f"dispatch:{event_type.__name__}"
        self._profiler.begin(name)
        try:
            self._profiler.add_sim(advance)
            event._process()
        finally:
            self._profiler.end()

    def run(self, until: Optional[float] = None) -> float:
        """Run until the heap drains or simulated time reaches ``until``.

        Returns the final simulation time.
        """
        if until is not None and until < self.now:
            raise SimulationError(f"until={until} is in the past (now={self.now})")
        if self._profiler is None and self._tracer is None:
            return self._run_fast(until)
        while self._heap:
            if self._heap[0][2].cancelled:
                self._discard_cancelled(heapq.heappop(self._heap)[2])
                continue
            when = self._heap[0][0]
            if until is not None and when > until:
                self.now = until
                return self.now
            self.step()
        if until is not None:
            self.now = max(self.now, until)
        return self.now

    def _run_fast(self, until: Optional[float]) -> float:
        """The monomorphic uninstrumented dispatch loop.

        With no profiler and no tracer attached there is exactly one
        shape of work per event: peek, skip if withdrawn, advance the
        clock, run the callbacks. Hoisting the heap and heappop into
        locals and bypassing :meth:`step`'s per-call re-dispatch keeps
        this loop free of attribute lookups and branch soup — it is the
        innermost loop of every deployment.
        """
        heap = self._heap
        pop = heapq.heappop
        while heap:
            entry = heap[0]
            if entry[2].cancelled:
                # Lazy deletion: withdrawn entries pop without running
                # callbacks or advancing the clock.
                pop(heap)
                continue
            when = entry[0]
            if until is not None and when > until:
                self.now = until
                return until
            if when < self.now:
                raise SimulationError("time went backwards (kernel bug)")
            pop(heap)
            self.now = when
            entry[2]._process()
        if until is not None and until > self.now:
            self.now = until
        return self.now

    @property
    def pending_events(self) -> int:
        """Number of triggered-but-unprocessed events on the heap."""
        return sum(1 for _, _, event in self._heap if not event.cancelled)
