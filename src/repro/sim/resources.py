"""Synchronization resources: FIFO locks and stores.

These model the kernel-side primitives the PR-ESP runtime manager is
built on: per-device mutexes (``Lock``) and work queues (``Store``).
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, Optional

from repro.errors import SimulationError
from repro.sim.kernel import Event, Simulator


class Lock:
    """A FIFO mutex. ``acquire()`` returns an event to yield on."""

    def __init__(self, sim: Simulator) -> None:
        self.sim = sim
        self._locked = False
        self._waiters: Deque[Event] = deque()

    @property
    def locked(self) -> bool:
        """True while some process holds the lock."""
        return self._locked

    @property
    def queue_length(self) -> int:
        """Number of processes waiting to acquire."""
        return len(self._waiters)

    def acquire(self) -> Event:
        """Request the lock; the returned event fires once it is held."""
        event = self.sim.event()
        if not self._locked:
            self._locked = True
            event.succeed(self)
        else:
            self._waiters.append(event)
        return event

    def release(self) -> None:
        """Release the lock, handing it to the next FIFO waiter if any."""
        if not self._locked:
            raise SimulationError("release of an unheld lock")
        if self._waiters:
            self._waiters.popleft().succeed(self)
        else:
            self._locked = False


class Store:
    """An unbounded (or bounded) FIFO of items with blocking get/put."""

    def __init__(self, sim: Simulator, capacity: Optional[int] = None) -> None:
        if capacity is not None and capacity <= 0:
            raise SimulationError(f"store capacity must be positive, got {capacity}")
        self.sim = sim
        self.capacity = capacity
        self._items: Deque[Any] = deque()
        self._getters: Deque[Event] = deque()
        # (event, pending item) pairs; Event is __slots__-flattened, so
        # the pending item rides alongside instead of on the event.
        self._putters: Deque[tuple] = deque()

    def __len__(self) -> int:
        return len(self._items)

    @property
    def items(self) -> tuple:
        """Snapshot of queued items (oldest first)."""
        return tuple(self._items)

    def put(self, item: Any) -> Event:
        """Enqueue ``item``; blocks (pending event) when at capacity."""
        event = self.sim.event()
        if self.capacity is not None and len(self._items) >= self.capacity:
            self._putters.append((event, item))
            return event
        self._deliver(item)
        event.succeed(item)
        return event

    def get(self) -> Event:
        """Dequeue the oldest item; blocks when empty."""
        event = self.sim.event()
        if self._items:
            item = self._items.popleft()
            self._admit_waiting_putter()
            event.succeed(item)
        else:
            self._getters.append(event)
        return event

    # ------------------------------------------------------------------
    def _deliver(self, item: Any) -> None:
        if self._getters:
            self._getters.popleft().succeed(item)
        else:
            self._items.append(item)

    def _admit_waiting_putter(self) -> None:
        if self._putters and (
            self.capacity is None or len(self._items) < self.capacity
        ):
            putter, item = self._putters.popleft()
            self._deliver(item)
            putter.succeed(item)
